"""Markdown report generation from recorded benchmark rows.

``pytest benchmarks/`` appends one JSON row per result to
``benchmarks/out/rows.jsonl``; this module turns that file into the
paper-vs-measured markdown used by EXPERIMENTS.md, so the document can
be regenerated from a fresh run with one command
(``python -m repro report``).
"""

from __future__ import annotations

import json
from pathlib import Path

from ..runtime.atomic import atomic_write_text

_TABLE_TITLES = {"table1": "Table 1 — Ex", "table2": "Table 2 — Dct",
                 "table3": "Table 3 — Diffeq"}
_FLOW_TITLES = {"camad": "CAMAD", "approach1": "Approach 1",
                "approach2": "Approach 2", "ours": "Ours"}
_FLOW_ORDER = ["camad", "approach1", "approach2", "ours"]


def load_rows(path: str | Path) -> list[dict]:
    """Read a rows.jsonl file."""
    from ..errors import ReproError
    if not Path(path).is_file():
        raise ReproError(f"no recorded rows at {path}: run "
                         f"'pytest benchmarks/' first")
    rows = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def _sorted_cells(rows: list[dict], kind: str) -> list[dict]:
    cells = [r for r in rows if r.get("kind") == kind]
    return sorted(cells, key=lambda r: (_FLOW_ORDER.index(r["flow"]),
                                        r["bits"]))


def table_markdown(rows: list[dict], kind: str) -> str:
    """One paper table as paper-vs-measured markdown."""
    cells = _sorted_cells(rows, kind)
    if not cells:
        return f"*(no rows recorded for {kind})*"
    lines = [f"### {_TABLE_TITLES.get(kind, kind)}", "",
             "| Flow | #Bit | Coverage (paper → ours) | Cycles "
             "(paper → ours) | Area ours mm² |",
             "|------|-----:|------------------------:|"
             "----------------------:|--------------:|"]
    for cell in cells:
        paper_cov = cell.get("paper_coverage_pct", "—")
        paper_cyc = cell.get("paper_test_cycles", "—")
        lines.append(
            f"| {_FLOW_TITLES[cell['flow']]} | {cell['bits']} "
            f"| {paper_cov} → {cell['coverage_pct']} % "
            f"| {paper_cyc} → {cell['test_cycles']} "
            f"| {cell['area_mm2']} |")
    return "\n".join(lines)


def shape_checks(rows: list[dict], kind: str) -> list[tuple[str, bool]]:
    """The qualitative claims EXPERIMENTS.md asserts, evaluated."""
    cells = _sorted_cells(rows, kind)
    if not cells:
        return []
    by = {(c["flow"], c["bits"]): c for c in cells}
    bits_list = sorted({c["bits"] for c in cells})
    checks = []
    worst = all(
        by[("camad", b)]["coverage_pct"]
        <= min(by[(f, b)]["coverage_pct"] for f in _FLOW_ORDER if f != "camad")
        + 0.5
        for b in bits_list if ("camad", b) in by)
    checks.append(("CAMAD has the worst coverage at every width", worst))
    monotone = all(
        by[(f, bits_list[i])]["coverage_pct"]
        <= by[(f, bits_list[i + 1])]["coverage_pct"] + 1.0
        for f in _FLOW_ORDER
        for i in range(len(bits_list) - 1)
        if (f, bits_list[i]) in by and (f, bits_list[i + 1]) in by)
    checks.append(("coverage is (near-)monotone in bit width", monotone))
    if ("ours", 16) in by:
        best16 = by[("ours", 16)]["coverage_pct"] >= max(
            by[(f, 16)]["coverage_pct"] for f in _FLOW_ORDER
            if (f, 16) in by) - 1e-9
        checks.append(("ours has the best 16-bit coverage", best16))
        smallest = by[("ours", 16)]["area_mm2"] <= min(
            by[(f, 16)]["area_mm2"] for f in _FLOW_ORDER if (f, 16) in by)
        checks.append(("ours has the smallest 16-bit area", smallest))
    return checks


def render_report(rows: list[dict]) -> str:
    """The complete markdown report."""
    parts = ["# Benchmark report (generated)", ""]
    for kind in ("table1", "table2", "table3"):
        parts.append(table_markdown(rows, kind))
        checks = shape_checks(rows, kind)
        if checks:
            parts.append("")
            for claim, holds in checks:
                parts.append(f"- {'✔' if holds else '✗'} {claim}")
        parts.append("")
    extras = [r for r in rows if r.get("kind") == "extra"]
    if extras:
        parts.append("### Extra benchmarks (4-bit)")
        parts.append("")
        parts.append("| Benchmark | Flow | Coverage | Cycles | Area |")
        parts.append("|-----------|------|---------:|-------:|-----:|")
        for row in sorted(extras, key=lambda r: (r["benchmark"],
                                                 _FLOW_ORDER.index(r["flow"]))):
            parts.append(f"| {row['benchmark']} | {row['flow']} "
                         f"| {row['coverage_pct']} % | {row['test_cycles']} "
                         f"| {row['area_mm2']} |")
        parts.append("")
    return "\n".join(parts)


def write_report(rows_path: str | Path, output_path: str | Path) -> str:
    """Load rows, render, write atomically, and return the markdown."""
    text = render_report(load_rows(rows_path))
    atomic_write_text(output_path, text + "\n")
    return text
