"""Perf and effect baselines for the dataflow engine.

Each cell (benchmark × width) measures what the abstract-interpretation
tier buys and what it costs on one CPU:

* **analysis time** — wall time of one full fixpoint
  (:func:`~repro.analysis.dataflow.analyze_dataflow`).  The first
  in-process run is recorded as *cold* and the minimum over the
  remaining repeats as *warm*, per the repo's single-core timing
  protocol: one core means no co-runner noise, but the first run still
  pays allocator and bytecode warm-up that steady-state callers (the
  lint layer's memoised certificate, the experiment harness) never see.
* **certificate soundness** — :meth:`DataflowCertificate.check` under
  random concrete vectors, for the unconstrained certificate and the
  input-assumption one, in both design flows.
* **width narrowing** — the equivalence-gated area delta of
  :func:`~repro.cost.narrow_design` on the ``default`` and ``ours``
  design points.  Narrowing cells assume primary inputs occupy at most
  ``min(input_bits, bits)`` bits (recorded in the report): with inputs
  spanning the full word no high bit is provably dead, which is the
  honest answer but a vacuous benchmark.
* **fault pruning** — faults on the ``ours`` gate netlist that
  sequential ternary constant propagation
  (:func:`~repro.atpg.prune.constant_lines`) proves untestable, and
  the analysis time it took — the budget PODEM never has to spend.

The report is written atomically so an interrupted run never leaves a
truncated baseline file.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Optional

from ..analysis.dataflow import DataflowCertificate, analyze_dataflow
from ..atpg.faults import full_fault_list
from ..atpg.prune import constant_lines, prune_untestable
from ..bench import load, names
from ..cost import CostModel, narrow_design
from ..etpn.from_dfg import default_design
from ..gates import expand_to_gates
from ..rtl import generate_rtl
from ..runtime.atomic import atomic_write_text
from ..synth import run_ours

#: Report schema tag, bumped when the cell layout changes.
SCHEMA = "repro.bench_dataflow/v1"

#: Design flows whose narrowing effect each cell records.
FLOWS = ("default", "ours")


def _assumptions(dfg, bits: int, input_bits: int) -> dict[str,
                                                          tuple[int, int]]:
    hi = (1 << min(input_bits, bits)) - 1
    return {v.name: (0, hi) for v in dfg.inputs()}


def _timed_analysis(dfg, bits: int, repeats: int,
                    assumptions=None) -> tuple[DataflowCertificate,
                                               float, float]:
    """(certificate, cold seconds, warm seconds) for one fixpoint."""
    cert = analyze_dataflow(dfg, bits, assumptions=assumptions)
    cold = cert.elapsed_seconds
    warm = cold
    for _ in range(max(0, repeats - 1)):
        again = analyze_dataflow(dfg, bits, assumptions=assumptions)
        warm = min(warm, again.elapsed_seconds)
    return cert, cold, warm


def time_cell(benchmark: str, bits: int, repeats: int, vectors: int,
              input_bits: int) -> dict:
    """One cell: analysis timing, cert checks, narrowing, pruning."""
    dfg = load(benchmark)
    plain, cold, warm = _timed_analysis(dfg, bits, repeats)
    plain_problems = plain.check(dfg, vectors=vectors)

    assumptions = _assumptions(dfg, bits, input_bits)
    assumed, _, _ = _timed_analysis(dfg, bits, 1, assumptions=assumptions)
    assumed_problems = assumed.check(dfg, vectors=vectors)

    flows = {}
    ours_design = None
    for flow in FLOWS:
        if flow == "default":
            design = default_design(dfg)
        else:
            design = run_ours(dfg, cost_model=CostModel(bits=bits)).design
            ours_design = design
        report = narrow_design(design, bits, assumptions=assumptions,
                               cert=assumed)
        flows[flow] = {
            "cert_check_ok": not report.certificate.check(dfg,
                                                          vectors=vectors)
            if report.certificate is not None else False,
            **report.to_dict(),
        }

    assert ours_design is not None  # FLOWS always contains "ours"
    netlist = expand_to_gates(generate_rtl(ours_design, bits))
    faults = full_fault_list(netlist)
    t0 = time.perf_counter()
    constants = constant_lines(netlist)
    prune_seconds = time.perf_counter() - t0
    _kept, pruned = prune_untestable(faults, constants)

    return {
        "benchmark": benchmark,
        "bits": bits,
        "ops": len(dfg.operations),
        "loop": bool(plain.feedback),
        "loop_iterations": plain.loop_iterations,
        "widened": plain.widened,
        "analysis_cold_seconds": round(cold, 6),
        "analysis_warm_seconds": round(warm, 6),
        "constant_ops": len(plain.constant_ops()),
        "known_bits": plain.known_bit_total(),
        "max_required_width": plain.max_required_width(),
        "check_vectors": vectors,
        "check_ok": not plain_problems and not assumed_problems,
        "check_problems": plain_problems + assumed_problems,
        "flows": flows,
        "prune": {
            "gates": len(netlist),
            "dffs": len(netlist.dffs()),
            "total_faults": len(faults),
            "pruned": len(pruned),
            "constant_lines": len(constants),
            "prune_seconds": round(prune_seconds, 6),
        },
    }


def run_bench_dataflow(bits: Optional[list[int]] = None, repeats: int = 3,
                       vectors: int = 64, input_bits: int = 8,
                       output: str = "BENCH_dataflow.json",
                       progress: Optional[Callable[[str], None]] = None
                       ) -> dict:
    """Run every benchmark × width cell and write the baseline file.

    Returns the report dict (also written to ``output`` atomically).
    """
    widths = bits if bits is not None else [4, 8, 16]
    cells = []
    for benchmark in names():
        for width in widths:
            cell = time_cell(benchmark, width, repeats, vectors, input_bits)
            cells.append(cell)
            if progress is not None:
                deltas = ", ".join(
                    f"{flow} {cell['flows'][flow]['area_delta_pct']:+.1f}%"
                    for flow in FLOWS)
                progress(f"{benchmark}/{width}-bit: analysis "
                         f"{cell['analysis_warm_seconds'] * 1e3:.2f}ms, "
                         f"{cell['prune']['pruned']} faults pruned, "
                         f"area {deltas}")

    with_pruned = {c["benchmark"] for c in cells
                   if c["prune"]["pruned"] > 0}
    with_delta = {c["benchmark"] for c in cells
                  if any(c["flows"][f]["applied"]
                         and c["flows"][f]["area_delta_mm2"] > 0
                         for f in FLOWS)}
    report = {
        "schema": SCHEMA,
        "input_assumption": f"primary inputs occupy at most "
                            f"min({input_bits}, bits) bits in the "
                            f"narrowing cells",
        "repeats": repeats,
        "vectors": vectors,
        "cells": cells,
        "cells_total": len(cells),
        "all_certs_ok": all(
            c["check_ok"] and all(c["flows"][f]["cert_check_ok"]
                                  for f in FLOWS) for c in cells),
        "benchmarks_with_pruned": len(with_pruned),
        "benchmarks_with_area_delta": len(with_delta),
        "all_narrowing_equivalence_valid": all(
            c["flows"][f]["equivalence_valid"]
            for c in cells for f in FLOWS),
    }
    atomic_write_text(output, json.dumps(report, indent=2) + "\n")
    return report
