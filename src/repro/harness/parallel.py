"""Work-stealing parallel executor for experiment grids.

The benchmark × flow × bit-width grid behind one paper table is
embarrassingly parallel: every cell is an independent synthesis + ATPG
+ costing pipeline.  :func:`run_parallel_grid` shards pending cells
across a :class:`~concurrent.futures.ProcessPoolExecutor` (workers pull
cells as they finish — work stealing for free) and composes with the
PR-4 checkpoint machinery:

* **Journal ownership protocol** — workers never touch the journal.
  They return one serialised cell record (the exact
  :func:`~repro.runtime.checkpoint.cell_record` shape) and the *parent*
  is the sole journal writer, appending each record as its future
  completes.  ``--resume`` therefore composes with any worker count: a
  resumed run replays journaled cells and shards only the remainder.
* **Determinism** — a cell's deterministic fields depend only on its
  inputs, never on scheduling, and results are reassembled in grid
  order, so ``workers=1`` and ``workers=N`` render byte-identical
  table rows (wall-clock seconds are the one nondeterministic column;
  :func:`~repro.runtime.checkpoint.scrubbed_records` masks them when
  comparing).
* **Degradation** — a worker that raises (including a simulated
  process death injected at the ``harness.worker`` chaos seam, or a
  broken pool) costs exactly its own cell: the parent records a
  :class:`SkippedCell` with the failure reason and the grid completes
  partially, mirroring Algorithm 1's skipped-candidate contract.
  Per-cell wall-clock ceilings (``cell_wall_seconds``) are enforced
  *inside* the worker by a fresh :class:`~repro.runtime.budget.Budget`,
  so a slow cell degrades to a valid partial row instead of hanging
  the pool.
* **Caching** — workers share the content-hash result cache's disk
  tier (:mod:`repro.harness.cache`); repeated cells and
  bit-width-independent baseline synthesis become lookups.

``workers=1`` runs every cell inline in the parent process (no pool,
no pickling), which is also the path that honours a shared
:class:`Budget` and a parent-activated chaos injector.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Optional

from ..runtime.budget import Budget
from ..runtime.chaos import ChaosCrash, Injection, chaos_point, clear_injector
from ..runtime.checkpoint import CellKey, Journal, cell_record, restore_cell
from .cache import CacheStats, ResultCache, run_cell_cached


@dataclass(frozen=True)
class SkippedCell:
    """A grid cell lost to a worker failure (crash, broken pool)."""

    benchmark: str
    flow: str
    bits: int
    reason: str

    @property
    def key(self) -> CellKey:
        return (self.benchmark, self.flow, self.bits)


@dataclass
class GridOutcome:
    """Everything one (possibly parallel, possibly resumed) grid run
    produced."""

    #: Completed cells in grid order (live ``CellResult`` or restored
    #: ``JournaledCell`` — they render identically).  Skipped cells are
    #: absent, making the grid explicitly partial.
    cells: list[Any] = field(default_factory=list)
    skipped: list[SkippedCell] = field(default_factory=list)
    workers: int = 1
    elapsed_seconds: float = 0.0
    #: Cells replayed from the journal (resume) / computed this run.
    replayed: int = 0
    computed: int = 0
    #: Aggregated cache counters across the parent and every worker.
    cache_stats: CacheStats = field(default_factory=CacheStats)
    #: True when Ctrl-C cut the run short.  Completed cells were
    #: already journaled (one fsynced append each), so a ``--resume``
    #: picks up exactly where the interrupt landed; the unfinished
    #: cells appear in ``skipped`` with reason ``"interrupted"``.
    interrupted: bool = False

    def ok(self) -> bool:
        """True when no cell was lost."""
        return not self.skipped


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-process cache instances, keyed by disk-tier path ("" = none).
#: A pool worker serves many cells; keeping one ResultCache per
#: cache-dir gives it a warm in-memory tier across those cells.
_PROCESS_CACHES: dict[str, ResultCache] = {}


def _process_cache(cache_dir: Optional[str]) -> Optional[ResultCache]:
    if cache_dir is None:
        return None
    cache = _PROCESS_CACHES.get(cache_dir)
    if cache is None:
        cache = ResultCache(cache_dir=Path(cache_dir))
        _PROCESS_CACHES[cache_dir] = cache
    return cache


def _worker_init() -> None:
    """Pool initializer: forget any chaos injector inherited via fork.

    Worker chaos is always explicit (per-cell plans in the task), never
    an accidental replay of the parent's active injector.
    """
    clear_injector()


def _evaluate_cell(benchmark: str, flow: str, bits: int, config: Any,
                   cache: Optional[ResultCache],
                   budget: Optional[Budget]) -> dict:
    """Evaluate one grid cell; plain-data payload, cheap to pickle.

    Returns ``{"record": <journal cell record>, "cache": <stats>}``.
    The ``harness.worker`` seam at the top is where chaos plans kill a
    cell deterministically.
    """
    chaos_point("harness.worker", (benchmark, flow, bits))
    cell, provenance = run_cell_cached(benchmark, flow, config,
                                       cache=cache, budget=budget)
    if provenance.get("cell_cache") == "hit":
        record = cell_record(cell)  # re-serialise the restored cell
    else:
        extra = {k: v for k, v in provenance.items() if k == "cache_key"}
        reasons = tuple(getattr(cell, "degradation", ()))
        if reasons:  # keep the why, not just the row's degraded bit
            extra["degradation"] = list(reasons)
        record = cell_record(cell, provenance=extra)
    return {"record": record,
            "cache": provenance.get("cache_stats",
                                    CacheStats().to_dict())}


def _worker_cell(benchmark: str, flow: str, bits: int, config: Any,
                 cache_dir: Optional[str],
                 cell_wall_seconds: Optional[float],
                 injections: tuple[Injection, ...] = ()) -> dict:
    """Pool-side cell evaluation: per-process cache, per-cell budget.

    Raises on injected chaos (a simulated worker death), which the
    parent degrades to a :class:`SkippedCell`.
    """
    from ..runtime.chaos import ChaosInjector

    cache = _process_cache(cache_dir)
    budget = (Budget(wall_seconds=cell_wall_seconds)
              if cell_wall_seconds is not None else None)
    if injections:
        with ChaosInjector(*injections):
            return _evaluate_cell(benchmark, flow, bits, config, cache,
                                  budget)
    return _evaluate_cell(benchmark, flow, bits, config, cache, budget)


def _run_cell_inline(benchmark: str, flow: str, bits: int, config: Any,
                     cache: Optional[ResultCache],
                     budget: Optional[Budget],
                     injections: tuple[Injection, ...]) -> dict:
    """The ``workers=1`` twin of :func:`_worker_cell`.

    Runs in the parent process, honours a *shared* budget across cells
    and any already-active chaos injector (per-cell ``injections`` are
    still applied when given and no injector is live, matching the
    worker path without nesting)."""
    from ..runtime.chaos import ChaosInjector, active_injector

    if injections and active_injector() is None:
        with ChaosInjector(*injections):
            return _evaluate_cell(benchmark, flow, bits, config, cache,
                                  budget)
    return _evaluate_cell(benchmark, flow, bits, config, cache, budget)


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
def run_parallel_grid(benchmark: str,
                      grid: Iterable[tuple[str, int]],
                      config_for: Callable[[int], Any],
                      *,
                      workers: Optional[int] = None,
                      journal: Optional[Journal] = None,
                      resume: bool = False,
                      cache: Optional[ResultCache] = None,
                      budget: Optional[Budget] = None,
                      cell_wall_seconds: Optional[float] = None,
                      worker_chaos: Optional[
                          dict[CellKey, tuple[Injection, ...]]] = None,
                      progress: Optional[Callable[[str], None]] = None
                      ) -> GridOutcome:
    """Run (or resume) a grid of table cells, sharded across processes.

    Args:
        benchmark: the benchmark every cell runs.
        grid: (flow, bits) pairs in table order.
        config_for: bits -> ExperimentConfig for that column.
        workers: process count; None = ``os.cpu_count()``, 1 = inline.
        journal: completed-cell ledger; written only by this (parent)
            process, one fsynced append per completed cell.
        resume: replay cells already in ``journal``.
        cache: content-hash result cache.  Workers share its disk tier;
            a memory-only cache still serves the inline path and each
            worker's own repeats.
        budget: a shared Budget for the whole grid — inline only (a
            Budget is process-local), so ``workers`` is forced to 1
            when one is given.
        cell_wall_seconds: per-cell wall-clock ceiling enforced inside
            each worker by a fresh Budget; an overrunning cell degrades
            to a valid partial row instead of hanging the pool.
        worker_chaos: per-cell chaos plans (cell key -> injections),
            activated inside the owning worker — the deterministic way
            to kill worker N of a parallel run.
        progress: optional per-cell status callback.

    Returns:
        A :class:`GridOutcome`; ``outcome.cells`` is in grid order and
        explicitly partial when workers failed (``outcome.skipped``).
    """
    import os

    started = time.perf_counter()
    grid = list(grid)
    workers = workers or os.cpu_count() or 1
    if budget is not None:
        workers = 1  # a shared Budget cannot cross process boundaries
    worker_chaos = worker_chaos or {}

    outcome = GridOutcome(workers=workers)
    done = (journal.completed_cells()
            if journal is not None and resume else {})
    results: dict[CellKey, Any] = {}
    pending: list[CellKey] = []
    for flow, bits in grid:
        key: CellKey = (benchmark, flow, bits)
        if key in done:
            if key not in results:
                if progress:
                    progress(f"resuming {benchmark}/{flow}/{bits}-bit "
                             f"from journal")
                results[key] = restore_cell(done[key])
                outcome.replayed += 1
        elif key not in pending:
            pending.append(key)

    if workers == 1:
        _run_inline(pending, config_for, cache, budget, worker_chaos,
                    journal, results, outcome, progress)
    else:
        _run_pool(pending, config_for, cache, workers, cell_wall_seconds,
                  worker_chaos, journal, results, outcome, progress)

    emitted: set[CellKey] = set()
    for flow, bits in grid:
        key = (benchmark, flow, bits)
        cell = results.get(key)
        if cell is not None and key not in emitted:
            emitted.add(key)
            outcome.cells.append(cell)
    outcome.elapsed_seconds = time.perf_counter() - started
    return outcome


def _journal_commit(journal: Optional[Journal], record: dict) -> None:
    """Parent-side journal append (the sole writer in any mode)."""
    if journal is not None:
        journal.append(record)


def _absorb(outcome: GridOutcome, results: dict[CellKey, Any],
            key: CellKey, payload: dict,
            journal: Optional[Journal],
            progress: Optional[Callable[[str], None]]) -> None:
    record = payload["record"]
    _journal_commit(journal, record)
    results[key] = restore_cell(record)
    outcome.computed += 1
    stats = payload.get("cache", {})
    outcome.cache_stats.add(CacheStats(
        memory_hits=int(stats.get("memory_hits", 0)),
        disk_hits=int(stats.get("disk_hits", 0)),
        misses=int(stats.get("misses", 0)),
        stores=int(stats.get("stores", 0))))
    if progress:
        hit = "cache hit" if (stats.get("memory_hits", 0)
                              + stats.get("disk_hits", 0)) and not \
            stats.get("misses", 0) else "computed"
        progress(f"finished {key[0]}/{key[1]}/{key[2]}-bit ({hit})")


def _run_inline(pending: list[CellKey],
                config_for: Callable[[int], Any],
                cache: Optional[ResultCache],
                budget: Optional[Budget],
                worker_chaos: dict[CellKey, tuple[Injection, ...]],
                journal: Optional[Journal],
                results: dict[CellKey, Any],
                outcome: GridOutcome,
                progress: Optional[Callable[[str], None]]) -> None:
    for index, key in enumerate(pending):
        benchmark, flow, bits = key
        if progress:
            progress(f"running {benchmark}/{flow}/{bits}-bit ...")
        try:
            payload = _run_cell_inline(benchmark, flow, bits,
                                       config_for(bits), cache, budget,
                                       worker_chaos.get(key, ()))
        except ChaosCrash:
            raise  # simulated death of *this* process must not be absorbed
        except KeyboardInterrupt:
            outcome.interrupted = True
            for later in pending[index:]:
                outcome.skipped.append(
                    SkippedCell(*later, reason="interrupted"))
            if progress:
                progress("interrupted; returning partial grid "
                         "(journaled cells are safe, --resume continues)")
            return
        except Exception as exc:  # noqa: BLE001 - degradation barrier
            outcome.skipped.append(SkippedCell(
                benchmark, flow, bits, f"{type(exc).__name__}: {exc}"))
            if progress:
                progress(f"skipped {benchmark}/{flow}/{bits}-bit: "
                         f"{type(exc).__name__}: {exc}")
            continue
        _absorb(outcome, results, key, payload, journal, progress)


def _run_pool(pending: list[CellKey],
              config_for: Callable[[int], Any],
              cache: Optional[ResultCache],
              workers: int,
              cell_wall_seconds: Optional[float],
              worker_chaos: dict[CellKey, tuple[Injection, ...]],
              journal: Optional[Journal],
              results: dict[CellKey, Any],
              outcome: GridOutcome,
              progress: Optional[Callable[[str], None]]) -> None:
    if not pending:
        return
    cache_dir = (str(cache.cache_dir)
                 if cache is not None and cache.cache_dir is not None
                 else None)
    workers = min(workers, len(pending))
    with ProcessPoolExecutor(max_workers=workers,
                             initializer=_worker_init) as pool:
        futures = {}
        for key in pending:
            benchmark, flow, bits = key
            if progress:
                progress(f"dispatching {benchmark}/{flow}/{bits}-bit ...")
            futures[pool.submit(
                _worker_cell, benchmark, flow, bits, config_for(bits),
                cache_dir, cell_wall_seconds,
                worker_chaos.get(key, ()))] = key
        not_done = set(futures)
        try:
            while not_done:
                finished, not_done = wait(not_done,
                                          return_when=FIRST_COMPLETED)
                for future in finished:
                    key = futures[future]
                    try:
                        payload = future.result()
                    except Exception as exc:  # noqa: BLE001 - worker died
                        outcome.skipped.append(SkippedCell(
                            *key, reason=f"{type(exc).__name__}: {exc}"))
                        if progress:
                            progress(f"worker lost {key[0]}/{key[1]}/"
                                     f"{key[2]}-bit: {type(exc).__name__}: "
                                     f"{exc}")
                        continue
                    _absorb(outcome, results, key, payload, journal,
                            progress)
        except KeyboardInterrupt:
            # Ctrl-C: give back what completed.  Journal appends happen
            # as futures finish, so every absorbed cell is already
            # fsynced; pending futures are cancelled and charged as
            # skipped.  (A real SIGINT also reaches the workers — same
            # process group — so the context manager's final wait is
            # brief.)
            outcome.interrupted = True
            for future in not_done:
                future.cancel()
            pool.shutdown(wait=False, cancel_futures=True)
            for future in not_done:
                key = futures[future]
                if key not in results:
                    outcome.skipped.append(
                        SkippedCell(*key, reason="interrupted"))
            if progress:
                progress("interrupted; returning partial grid "
                         "(journaled cells are safe, --resume continues)")


# ----------------------------------------------------------------------
# Parallel parameter exploration
# ----------------------------------------------------------------------
def _worker_explore_point(benchmark: str, bits: int, k: int, alpha: float,
                          beta: float, cache_dir: Optional[str]) -> dict:
    """Synthesise one explore grid point in a worker; plain-data result."""
    from ..bench import load
    from ..cost import CostModel
    from ..io import design_to_dict
    from ..synth import SynthesisParams
    from ..testability import analyze
    from .cache import synthesis_key

    dfg = load(benchmark)
    cost_model = CostModel(bits=bits)
    params = SynthesisParams(k=k, alpha=alpha, beta=beta)
    cache = _process_cache(cache_dir)
    result = None
    if cache is not None:
        key = synthesis_key(dfg, "ours", params, bits)
        result = cache.get_synthesis(key)
    if result is None:
        from ..synth import run_ours
        result = run_ours(dfg, params, cost_model)
        if cache is not None:
            cache.put_synthesis(key, result)
    design = result.design
    signature = [sorted(design.steps.items()),
                 sorted(design.binding.module_of.items()),
                 sorted(design.binding.register_of.items())]
    return {
        "params": [k, alpha, beta],
        "signature": signature,
        "execution_time": design.execution_time,
        "hardware_mm2": cost_model.hardware_total(design.datapath),
        "quality": analyze(design.datapath).design_quality(),
        "design": design_to_dict(design),
    }


def explore_grid(benchmark: str, bits: int,
                 grid: Optional[list[tuple[int, float, float]]] = None,
                 *,
                 workers: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 progress: Optional[Callable[[str], None]] = None
                 ) -> "list[Any]":
    """The parallel twin of :func:`repro.synth.explore.explore`.

    Shards the (k, α, β) sweep across workers, then deduplicates by
    design signature *in grid order* so the returned points match the
    sequential sweep exactly regardless of completion order.
    """
    import os

    from ..bench import load
    from ..cost import CostModel
    from ..io import design_from_dict
    from ..synth.explore import DEFAULT_GRID, DesignPoint, explore

    grid = list(grid or DEFAULT_GRID)
    workers = workers or os.cpu_count() or 1
    if workers == 1:
        return explore(load(benchmark), CostModel(bits=bits), grid,
                       cache=cache)

    cache_dir = (str(cache.cache_dir)
                 if cache is not None and cache.cache_dir is not None
                 else None)
    by_point: dict[tuple[int, float, float], dict] = {}
    with ProcessPoolExecutor(max_workers=min(workers, len(grid)),
                             initializer=_worker_init) as pool:
        futures = {pool.submit(_worker_explore_point, benchmark, bits,
                               k, alpha, beta, cache_dir): (k, alpha, beta)
                   for k, alpha, beta in grid}
        for future in futures:
            point = futures[future]
            by_point[point] = future.result()
            if progress:
                progress(f"explored (k={point[0]}, a={point[1]:g}, "
                         f"b={point[2]:g})")

    points: list[DesignPoint] = []
    seen: set[str] = set()
    import json
    for point in grid:
        payload = by_point[point]
        signature = json.dumps(payload["signature"])
        if signature in seen:
            continue
        seen.add(signature)
        points.append(DesignPoint(
            params=point,
            execution_time=int(payload["execution_time"]),
            hardware_mm2=float(payload["hardware_mm2"]),
            quality=float(payload["quality"]),
            design=design_from_dict(payload["design"])))
    return points
