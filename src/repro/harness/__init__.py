"""Experiment harness: table/figure regeneration for the paper's §5.

Grids run through :func:`~repro.harness.parallel.run_parallel_grid`
(process-pool sharding + checkpoint journal + content-hash cache);
:mod:`~repro.harness.cache` provides the cache and
:mod:`~repro.harness.bench_tables` the end-to-end perf baseline.
"""

from .cache import (CacheStats, ResultCache, cell_key, run_cell_cached,
                    synthesis_key)
from .experiment import (CellResult, ExperimentConfig, FLOW_ORDER,
                         PAPER_PARAMS, run_benchmark_table, run_cell,
                         synthesize_flow, synthesize_flow_result)
from .figures import render_lifetimes, render_schedule, render_sharing
from .parallel import (GridOutcome, SkippedCell, explore_grid,
                       run_parallel_grid)
from .report import load_rows, render_report, shape_checks, write_report
from .tables import format_allocation, render_summary, render_table

__all__ = [
    "FLOW_ORDER",
    "PAPER_PARAMS",
    "CacheStats",
    "CellResult",
    "ExperimentConfig",
    "GridOutcome",
    "ResultCache",
    "SkippedCell",
    "cell_key",
    "explore_grid",
    "format_allocation",
    "load_rows",
    "render_lifetimes",
    "render_schedule",
    "render_sharing",
    "render_summary",
    "render_report",
    "render_table",
    "run_benchmark_table",
    "run_cell",
    "run_cell_cached",
    "run_parallel_grid",
    "shape_checks",
    "synthesis_key",
    "synthesize_flow",
    "synthesize_flow_result",
    "write_report",
]
