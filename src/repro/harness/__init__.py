"""Experiment harness: table/figure regeneration for the paper's §5."""

from .experiment import (CellResult, ExperimentConfig, FLOW_ORDER,
                         PAPER_PARAMS, run_benchmark_table, run_cell,
                         synthesize_flow, synthesize_flow_result)
from .figures import render_lifetimes, render_schedule, render_sharing
from .report import load_rows, render_report, shape_checks, write_report
from .tables import format_allocation, render_summary, render_table

__all__ = [
    "FLOW_ORDER",
    "PAPER_PARAMS",
    "CellResult",
    "ExperimentConfig",
    "format_allocation",
    "load_rows",
    "render_lifetimes",
    "render_schedule",
    "render_sharing",
    "render_summary",
    "render_report",
    "render_table",
    "shape_checks",
    "write_report",
    "run_benchmark_table",
    "run_cell",
    "synthesize_flow",
    "synthesize_flow_result",
]
