"""Perf baselines for the two-tier analysis: BFS vs structural.

The structural tier exists because reachability enumeration explodes on
*concurrent* control parts, while invariant computation stays
polynomial.  The benchmark suite's own control nets are chains (one
place per control step), whose state spaces are trivially small — a
chain is the one shape where BFS cannot lose.  So each timing cell
measures the two engines on the benchmark's **fork-join stress net**:
the ``ours``-flow schedule replicated into :func:`pick_branches`
parallel branches between one fork and one join.  That is exactly the
shape the
ETPN model permits (and the shape an exhausted budget abandons first):
the state space is ``O(L^B)`` markings for ``B`` branches of length
``L``, while the structural certificate grows only with places ×
transitions.

Each cell records the min-over-repeats wall time of a full
:class:`~repro.analysis.reach_graph.ReachabilityGraph` build against a
full :func:`~repro.analysis.structural.structural_certificate`
computation, plus the marking/edge counts (via the graph's own
counters) and a verdict-agreement check between the tiers.  The report
is written atomically (:func:`~repro.runtime.atomic.atomic_write_text`)
so an interrupted run never leaves a truncated baseline file.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Optional

from ..analysis.reach_graph import ReachabilityGraph
from ..analysis.structural import Verdict, structural_certificate
from ..analysis.tiers import stuck_markings
from ..bench import names
from ..petri.net import PetriNet
from ..runtime.atomic import atomic_write_text
from .experiment import synthesize_flow

#: Widest fork considered for a stress net.
MAX_BRANCHES = 6

#: Target ceiling on the stress net's state space (``L^B`` markings):
#: big enough that BFS cost dominates Python overheads, small enough
#: that the whole 18-cell sweep stays interactive.
MAX_STRESS_MARKINGS = 20_000

#: Report schema tag, bumped when the cell layout changes.
SCHEMA = "repro.bench_analysis/v1"


def pick_branches(length: int) -> int:
    """Widest fork (>= 2) keeping ``length ** branches`` under the cap.

    Short schedules get wide forks, long ones narrow forks, so every
    cell lands in a comparable (and tractable) state-space regime.
    """
    branches = 2
    while branches < MAX_BRANCHES and \
            length ** (branches + 1) <= MAX_STRESS_MARKINGS:
        branches += 1
    return branches


def stress_net(name: str, length: int,
               branches: Optional[int] = None) -> PetriNet:
    """Fork-join net: ``branches`` parallel chains of ``length`` places.

    The concurrency-stressed twin of a ``length``-step schedule: one
    fork transition marks the first place of every branch, one join
    consumes the last place of every branch into the final place.
    """
    if branches is None:
        branches = pick_branches(length)
    net = PetriNet(f"{name}-fork{branches}")
    net.add_place("S0")
    net.add_place("Pfinal", delay=0)
    for branch in range(branches):
        for i in range(length):
            net.add_place(f"B{branch}_{i}")
    net.add_transition("fork", ["S0"],
                       [f"B{b}_0" for b in range(branches)])
    for branch in range(branches):
        for i in range(length - 1):
            net.add_transition(f"t{branch}_{i}", [f"B{branch}_{i}"],
                               [f"B{branch}_{i + 1}"])
    net.add_transition("join",
                       [f"B{b}_{length - 1}" for b in range(branches)],
                       ["Pfinal"])
    net.set_initial("S0")
    net.set_final("Pfinal")
    net.validate()
    return net


def time_cell(benchmark: str, bits: int, repeats: int) -> dict:
    """One timing cell: BFS vs structural on the stress net."""
    design = synthesize_flow(benchmark, "ours", bits)
    length = max(1, len(design.control_net.places) - 1)
    net = stress_net(benchmark, length)

    graph = ReachabilityGraph(net)
    bfs_seconds = graph.elapsed_seconds
    for _ in range(repeats - 1):
        bfs_seconds = min(bfs_seconds,
                          ReachabilityGraph(net).elapsed_seconds)

    cert = structural_certificate(net)
    structural_seconds = cert.elapsed_seconds
    for _ in range(repeats - 1):
        t0 = time.perf_counter()
        structural_certificate(net)
        structural_seconds = min(structural_seconds,
                                 time.perf_counter() - t0)

    enum_safe = graph.is_safe()
    enum_live = not stuck_markings(net, graph)
    return {
        "benchmark": benchmark,
        "bits": bits,
        "flow": "ours",
        "net": net.name,
        "branches": pick_branches(length),
        "schedule_steps": length,
        "places": len(net.places),
        "transitions": len(net.transitions),
        "markings": graph.marking_count,
        "edges": graph.edge_count,
        "bfs_seconds": round(bfs_seconds, 6),
        "structural_seconds": round(structural_seconds, 6),
        "speedup": round(bfs_seconds / structural_seconds, 2)
        if structural_seconds else None,
        "structural_faster": structural_seconds < bfs_seconds,
        "safe_agrees": (cert.safe is Verdict.PROVED) == enum_safe
        if cert.safe.decided else True,
        "deadlock_agrees": (cert.deadlock_free is Verdict.PROVED)
        == enum_live if cert.deadlock_free.decided else True,
    }


def run_bench_analysis(bits: Optional[list[int]] = None, repeats: int = 3,
                       output: str = "BENCH_analysis.json",
                       progress: Optional[Callable[[str], None]] = None
                       ) -> dict:
    """Time every benchmark × width cell and write the baseline file.

    Returns the report dict (also written to ``output`` atomically).
    """
    widths = bits if bits is not None else [4, 8]
    cells = []
    for benchmark in names():
        for width in widths:
            cell = time_cell(benchmark, width, repeats)
            cells.append(cell)
            if progress is not None:
                progress(f"{benchmark}/{width}-bit: "
                         f"{cell['markings']} markings, "
                         f"bfs {cell['bfs_seconds'] * 1e3:.2f}ms vs "
                         f"structural "
                         f"{cell['structural_seconds'] * 1e3:.2f}ms")
    report = {
        "schema": SCHEMA,
        "branch_policy": f"widest fork in [2, {MAX_BRANCHES}] with "
                         f"steps**branches <= {MAX_STRESS_MARKINGS}",
        "repeats": repeats,
        "cells": cells,
        "cells_total": len(cells),
        "structural_faster": sum(c["structural_faster"] for c in cells),
        "verdicts_agree": all(c["safe_agrees"] and c["deadlock_agrees"]
                              for c in cells),
    }
    atomic_write_text(output, json.dumps(report, indent=2) + "\n")
    return report
