"""Experiment runner: benchmark × flow × bit-width → table cells.

One :func:`run_cell` reproduces one row-group cell of the paper's
Tables 1-3: synthesise with the chosen flow, generate RTL and the FSM
controller, expand to gates at the requested bit width, run the shared
ATPG engine, and price the data path with the floorplan-aware cost
model.  Every flow goes through the identical downstream pipeline, so
the comparison isolates the synthesis decisions — the paper's
experimental setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from ..atpg import ATPGConfig, ATPGResult, RandomPhaseConfig, run_atpg
from ..bench import load
from ..cost import CostModel
from ..dfg import unit_class, UnitClass
from ..etpn.design import Design
from ..gates import expand_to_gates, expand_with_controller
from ..rtl import build_control_table, generate_rtl
from ..runtime.budget import Budget
from ..synth import SynthesisParams, SynthesisResult, run_flow
from ..testability import analyze, sequential_depth_metric

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cache import ResultCache

#: The flow order the paper's tables use.
FLOW_ORDER = ("camad", "approach1", "approach2", "ours")

#: The (k, α, β) the paper reports per bit width (§5).
PAPER_PARAMS = {4: (3, 2.0, 1.0), 8: (3, 10.0, 1.0), 16: (3, 1.0, 10.0)}


@dataclass(frozen=True)
class ExperimentConfig:
    """Budgets of one experiment run.

    The full-size 16-bit netlists are too big to fault-simulate
    exhaustively on a laptop, so fault sampling keeps runs tractable;
    fractions of 1.0 reproduce the complete universe.
    """

    bits: int = 8
    embedded_controller: bool = True
    fault_fraction: float = 1.0
    random: RandomPhaseConfig = field(default_factory=lambda:
                                      RandomPhaseConfig(max_sequences=24,
                                                        saturation=5))
    max_backtracks: int = 64
    seed: int = 2026
    #: Price the data path at the widths the dataflow certificate
    #: proves sufficient (equivalence-gated; a refused narrowing keeps
    #: the declared-width area).  Part of the cache key: narrowed and
    #: plain cells never collide.
    narrow_widths: bool = False
    #: Narrowing input assumption: primary inputs occupy at most
    #: ``min(narrow_input_bits, bits)`` bits (None = the full width).
    narrow_input_bits: int | None = None

    @staticmethod
    def quick(bits: int) -> "ExperimentConfig":
        """Budgets scaled so a full table regenerates in minutes."""
        fraction = {4: 1.0, 8: 0.30, 16: 0.06}.get(bits, 1.0)
        sequences = {4: 24, 8: 16, 16: 10}.get(bits, 16)
        return ExperimentConfig(
            bits=bits, fault_fraction=fraction,
            random=RandomPhaseConfig(max_sequences=sequences, saturation=4))


@dataclass
class CellResult:
    """One flow's numbers at one bit width."""

    benchmark: str
    flow: str
    bits: int
    design: Design
    atpg: ATPGResult
    area_mm2: float
    mux_count: int
    module_groups: dict[str, list[str]]
    register_groups: dict[str, list[str]]
    seq_depth: float
    testability_quality: float
    #: True when any stage ran out of budget or degraded; the numbers
    #: then describe a valid partial run, not the converged result.
    degraded: bool = False
    #: Why (synthesis degradation reasons + ATPG budget provenance).
    degradation: tuple[str, ...] = ()
    #: True when ``area_mm2`` is the certificate-narrowed pricing
    #: (requested via :attr:`ExperimentConfig.narrow_widths` *and* the
    #: equivalence certifier validated the design point).
    narrowed: bool = False

    def row(self) -> dict[str, object]:
        """Flat dict for table rendering and EXPERIMENTS.md."""
        return {
            "benchmark": self.benchmark,
            "flow": self.flow,
            "bits": self.bits,
            "steps": self.design.num_steps,
            "modules": self.design.binding.module_count(),
            "registers": self.design.binding.register_count(),
            "muxes": self.mux_count,
            "coverage_pct": round(self.atpg.fault_coverage, 2),
            "tg_effort_k": round(self.atpg.tg_effort / 1000.0, 1),
            "tg_seconds": round(self.atpg.tg_seconds, 2),
            "test_cycles": self.atpg.test_cycles,
            "area_mm2": round(self.area_mm2, 3),
            "seq_depth": round(self.seq_depth, 1),
            "degraded": self.degraded,
            "narrowed": self.narrowed,
        }


def synthesize_flow_result(benchmark: str, flow: str, bits: int,
                           budget: Budget | None = None,
                           cache: "ResultCache | None" = None
                           ) -> SynthesisResult:
    """Run one of the four flows, keeping the full result (history,
    skipped candidates, degradation provenance).

    With a ``cache``, the run is keyed on the canonical DFG + flow +
    parameters and served from the cache when already known; the three
    baseline flows share one entry across bit widths because their
    synthesis never consults the cost model.  Degraded (budget-starved)
    results are never cached.
    """
    dfg = load(benchmark)
    cost_model = CostModel(bits=bits)
    params = None
    if flow == "ours":
        k, alpha, beta = PAPER_PARAMS.get(bits, (3, 2.0, 1.0))
        params = SynthesisParams(k=k, alpha=alpha, beta=beta)
    if cache is not None:
        from .cache import synthesis_key
        key = synthesis_key(dfg, flow, params, bits)
        hit = cache.get_synthesis(key)
        if hit is not None:
            return hit
    result = run_flow(flow, dfg, cost_model=cost_model, params=params,
                      budget=budget)
    if cache is not None:
        cache.put_synthesis(key, result)
    return result


def synthesize_flow(benchmark: str, flow: str, bits: int,
                    budget: Budget | None = None) -> Design:
    """Run one of the four flows on a named benchmark."""
    return synthesize_flow_result(benchmark, flow, bits, budget).design


def run_cell(benchmark: str, flow: str,
             config: ExperimentConfig,
             budget: Budget | None = None,
             cache: "ResultCache | None" = None) -> CellResult:
    """Produce one table cell (synthesis + ATPG + cost).

    A shared ``budget`` bounds both the synthesis loop and the ATPG
    run; an exhausted budget yields a valid, ``degraded``-flagged cell
    instead of a crash or a hang.  A ``cache`` memoises the synthesis
    stage (see :func:`synthesize_flow_result`); whole-cell caching
    lives one level up in :func:`repro.harness.cache.run_cell_cached`.
    """
    synthesis = synthesize_flow_result(benchmark, flow, config.bits,
                                       budget=budget, cache=cache)
    design = synthesis.design
    rtl = generate_rtl(design, config.bits)
    if config.embedded_controller:
        table = build_control_table(design, rtl)
        netlist = expand_with_controller(rtl, table)
        max_frames = 2 * table.phase_count + 1
    else:
        netlist = expand_to_gates(rtl)
        max_frames = design.num_steps + 2
    sequence_length = 4 * (design.num_steps + 1)
    atpg_config = ATPGConfig(
        seed=config.seed,
        random=replace(config.random, sequence_length=sequence_length),
        max_frames=max_frames,
        max_backtracks=config.max_backtracks,
        fault_fraction=config.fault_fraction)
    atpg = run_atpg(netlist, atpg_config, budget=budget)

    degradation = list(synthesis.degradation_reasons)
    if atpg.budget_exhausted:
        degradation.append(f"atpg budget_exhausted:{atpg.budget_reason}")
    cost_model = CostModel(bits=config.bits)
    area = cost_model.hardware_total(design.datapath)
    narrowed = False
    if config.narrow_widths:
        area, narrowed = _narrowed_area(design, config, area)
    analysis = analyze(design.datapath)
    return CellResult(
        benchmark=benchmark, flow=flow, bits=config.bits, design=design,
        atpg=atpg, area_mm2=area, mux_count=design.datapath.mux_count(),
        module_groups=design.binding.modules(),
        register_groups=design.binding.registers(),
        seq_depth=sequential_depth_metric(design.datapath),
        testability_quality=analysis.design_quality(),
        degraded=bool(degradation), degradation=tuple(degradation),
        narrowed=narrowed)


def _narrowed_area(design: Design, config: ExperimentConfig,
                   baseline: float) -> tuple[float, bool]:
    """Certificate-narrowed area, or the baseline when narrowing is
    refused (the equivalence certifier could not validate the point)."""
    from ..cost import narrow_design
    assumptions = None
    if config.narrow_input_bits is not None:
        hi = (1 << min(config.narrow_input_bits, config.bits)) - 1
        assumptions = {v.name: (0, hi) for v in design.dfg.inputs()}
    report = narrow_design(design, config.bits, assumptions=assumptions)
    if not report.applied:
        return baseline, False
    return report.narrowed.total_mm2, True


def run_benchmark_table(benchmark: str, bits_list: tuple[int, ...] = (4, 8, 16),
                        flows: tuple[str, ...] = FLOW_ORDER,
                        quick: bool = True) -> list[CellResult]:
    """All cells of one paper table (every flow × bit width)."""
    cells = []
    for flow in flows:
        for bits in bits_list:
            config = (ExperimentConfig.quick(bits) if quick
                      else ExperimentConfig(bits=bits))
            cells.append(run_cell(benchmark, flow, config))
    return cells


def module_symbol(design: Design, module: str) -> str:
    """The paper's module-kind symbol: (*) multiplier, (+-) ALU..."""
    ops = design.binding.ops_on(module)
    kinds = {design.dfg.operation(o).kind for o in ops}
    classes = {unit_class(k) for k in kinds}
    if UnitClass.MULTIPLIER in classes:
        return "*"
    symbols = sorted(str(k) for k in kinds)
    return "".join(symbols)[:2] or "?"
