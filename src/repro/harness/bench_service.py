"""Benchmark the synthesis service: drain throughput and fault cost.

``repro-hlts bench-service`` measures three supervised drains of the
same job set and writes ``BENCH_service.json``:

* **cold** — fresh spool, fresh result cache: every job evaluates.
* **warm** — fresh spool, the cold run's cache: every job should be a
  content-hash cache hit, so this round measures pure service overhead
  (WAL appends, spool I/O, supervision) and the cold/warm ratio is the
  cache's honest speedup.
* **faults** — fresh spool, warm cache, plus one poison job (unknown
  benchmark) and an injected transient failure at ``service.dispatch``:
  measures what retry/backoff and the quarantine circuit breaker cost
  while the real jobs still drain.

Protocol notes for this repo's 1-CPU container: every round runs the
inline single-worker supervisor (process isolation would only add fork
overhead with nothing to parallelise), rounds run back to back in one
process so the warm round also benefits from a warm interpreter, and
the cold round is first so it can never borrow the warm cache.  The
cold and warm rounds must produce byte-identical scrubbed results —
the benchmark fails (exit 1) if they do not.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Optional

from ..runtime.atomic import atomic_write_text
from ..runtime.checkpoint import scrubbed_records

#: Report format tag.
BENCH_FORMAT = "repro-bench-service-v1"

#: Quick per-job knobs: small fault sample and random-phase budgets so
#: one job is ~a second on the container, matching the chaos scenarios.
QUICK_JOB_KNOBS = {"fault_fraction": 0.3, "max_sequences": 4,
                   "saturation": 2, "sequence_length": 6,
                   "max_backtracks": 50}


def _submit_jobs(spool: Any, benchmarks: list[str],
                 bits: int) -> list[str]:
    from ..service import JobRequest
    job_ids = []
    for benchmark in benchmarks:
        jid, _ = spool.submit(JobRequest(benchmark=benchmark, flow="ours",
                                         bits=bits, **QUICK_JOB_KNOBS))
        job_ids.append(jid)
    return job_ids


def _drain(spool: Any, cache_dir: Path, *,
           max_attempts: int = 3) -> tuple[Any, float]:
    from ..harness.cache import ResultCache
    from ..service import RetryPolicy, Supervisor
    supervisor = Supervisor(
        spool, retry=RetryPolicy(max_attempts=max_attempts,
                                 backoff_base=0.0),
        cache=ResultCache(cache_dir=cache_dir))
    started = time.perf_counter()
    outcome = supervisor.run()
    return outcome, time.perf_counter() - started


def _round_report(spool: Any, job_ids: list[str], outcome: Any,
                  elapsed: float) -> dict[str, Any]:
    from ..service import service_stats
    stats = service_stats(spool)
    return {
        "elapsed_seconds": round(elapsed, 4),
        "jobs_done": outcome.done,
        "retries": outcome.retried,
        "quarantined": outcome.quarantined,
        "throughput_done_per_second": (round(outcome.done / elapsed, 4)
                                       if elapsed > 0 else None),
        "attempts": stats["attempts"],
        "all_real_jobs_done": all(
            spool.states()[jid].state == "done" for jid in job_ids),
    }


def _scrubbed_results(spool: Any, job_ids: list[str]) -> str:
    records = [spool.read_result(jid) for jid in job_ids]
    return scrubbed_records([r for r in records if r is not None])


def run_bench_service(*, benchmarks: Optional[list[str]] = None,
                      bits: int = 4,
                      output: str = "BENCH_service.json",
                      workdir: Optional[str] = None,
                      progress: Optional[Callable[[str], None]] = None
                      ) -> dict[str, Any]:
    """Run the three service rounds and write the report.

    Returns the report dict (also written to ``output`` atomically).
    """
    from ..runtime.chaos import ChaosInjector, Injection
    from ..service import JobRequest, Spool

    benchmarks = list(benchmarks or ["ex", "paulin", "tseng"])
    root = Path(workdir) if workdir else Path(tempfile.mkdtemp(
        prefix="repro-bench-service-"))
    root.mkdir(parents=True, exist_ok=True)
    cache_dir = root / "cache"

    def say(message: str) -> None:
        if progress:
            progress(message)

    # --- cold: fresh spool, fresh cache -------------------------------
    say(f"cold drain: {len(benchmarks)} jobs, empty cache ...")
    cold_spool = Spool(root / "spool-cold")
    cold_jobs = _submit_jobs(cold_spool, benchmarks, bits)
    cold_outcome, cold_elapsed = _drain(cold_spool, cache_dir)
    cold = _round_report(cold_spool, cold_jobs, cold_outcome, cold_elapsed)

    # --- warm: fresh spool, the cold run's cache ----------------------
    say("warm drain: same jobs, warm content-hash cache ...")
    warm_spool = Spool(root / "spool-warm")
    warm_jobs = _submit_jobs(warm_spool, benchmarks, bits)
    warm_outcome, warm_elapsed = _drain(warm_spool, cache_dir)
    warm = _round_report(warm_spool, warm_jobs, warm_outcome, warm_elapsed)

    results_identical = (_scrubbed_results(cold_spool, cold_jobs)
                         == _scrubbed_results(warm_spool, warm_jobs))

    # --- faults: transient dispatch failure + one poison job ----------
    say("fault drain: injected transient failure + poison job ...")
    fault_spool = Spool(root / "spool-faults")
    fault_jobs = _submit_jobs(fault_spool, benchmarks, bits)
    fault_spool.submit(JobRequest(benchmark="bench-service-poison",
                                  bits=bits))
    with ChaosInjector(Injection(seam="service.dispatch",
                                 action="raise", at_visit=1)):
        fault_outcome, fault_elapsed = _drain(fault_spool, cache_dir,
                                              max_attempts=2)
    fault = _round_report(fault_spool, fault_jobs, fault_outcome,
                          fault_elapsed)

    warm_speedup = (round(cold_elapsed / warm_elapsed, 2)
                    if warm_elapsed > 0 else None)
    report: dict[str, Any] = {
        "format": BENCH_FORMAT,
        "benchmarks": benchmarks,
        "bits": bits,
        "jobs": len(benchmarks),
        "cpu_count": os.cpu_count(),
        "workers": 1,
        "protocol": (
            "three inline single-worker drains in one process on a "
            "single-CPU container; cold runs first (fresh cache), warm "
            "reuses the cold cache, the fault round injects one "
            "transient service.dispatch failure and one poison job "
            "(unknown benchmark) with max_attempts=2; cold-vs-warm "
            "scrubbed results must be byte-identical"),
        "cold": cold,
        "warm": warm,
        "fault_round": fault,
        "warm_speedup": warm_speedup,
        "results_identical": results_identical,
    }
    atomic_write_text(Path(output), json.dumps(report, indent=2,
                                               sort_keys=True) + "\n")
    return report
