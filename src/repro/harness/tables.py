"""Paper-style table rendering.

Produces the same row structure as Tables 1-3 of the paper: one
row-group per synthesis flow showing the module and register
allocations, #Mux, and per-bit-width fault coverage, test-generation
time (effort units and seconds), test-application cycles and area.
"""

from __future__ import annotations

from .experiment import CellResult, FLOW_ORDER, module_symbol

_FLOW_TITLE = {"camad": "CAMAD", "approach1": "Approach 1",
               "approach2": "Approach 2", "ours": "Ours"}


def format_allocation(cell: CellResult) -> list[str]:
    """Module/register allocation lines, paper style.

    Cells restored from a journal (:class:`~repro.runtime.checkpoint.
    JournaledCell`) carry their lines pre-rendered; live cells render
    from the design.
    """
    stored = getattr(cell, "alloc_lines", None)
    if stored is not None:
        return list(stored)
    lines = []
    for module, ops in cell.module_groups.items():
        symbol = module_symbol(cell.design, module)
        lines.append(f"({symbol}): " + ", ".join(ops))
    for variables in cell.register_groups.values():
        lines.append("R: " + ", ".join(variables))
    return lines


def render_table(benchmark: str, cells: list[CellResult],
                 show_area: bool = True) -> str:
    """Render one benchmark's full comparison table as text."""
    by_flow: dict[str, list[CellResult]] = {}
    for cell in cells:
        by_flow.setdefault(cell.flow, []).append(cell)

    header = (f"{'Flow':<11} {'#Mux':>4} {'#Bit':>4} {'Coverage':>9} "
              f"{'TG effort(k)':>13} {'TG sec':>7} {'Cycles':>7}")
    if show_area:
        header += f" {'Area mm2':>9}"
    rule = "-" * len(header)
    lines = [f"=== {benchmark} (area-optimised) ===", header, rule]
    for flow in FLOW_ORDER:
        if flow not in by_flow:
            continue
        flow_cells = sorted(by_flow[flow], key=lambda c: c.bits)
        first = flow_cells[0]
        for alloc_line in format_allocation(first):
            lines.append(f"    {alloc_line}")
        for cell in flow_cells:
            row = cell.row()
            line = (f"{_FLOW_TITLE[flow]:<11} {row['muxes']:>4} "
                    f"{row['bits']:>4} {row['coverage_pct']:>8.2f}% "
                    f"{row['tg_effort_k']:>13.1f} {row['tg_seconds']:>7.2f} "
                    f"{row['test_cycles']:>7}")
            if show_area:
                line += f" {row['area_mm2']:>9.3f}"
            lines.append(line)
        lines.append(rule)
    return "\n".join(lines)


def render_summary(cells: list[CellResult]) -> str:
    """A compact cross-flow summary (one line per cell)."""
    lines = [f"{'bench':<8} {'flow':<10} {'bits':>4} {'steps':>5} "
             f"{'mods':>4} {'regs':>4} {'mux':>3} {'cov%':>7} "
             f"{'effort(k)':>9} {'cycles':>6} {'area':>7}"]
    for cell in cells:
        row = cell.row()
        lines.append(
            f"{row['benchmark']:<8} {row['flow']:<10} {row['bits']:>4} "
            f"{row['steps']:>5} {row['modules']:>4} {row['registers']:>4} "
            f"{row['muxes']:>3} {row['coverage_pct']:>7.2f} "
            f"{row['tg_effort_k']:>9.1f} {row['test_cycles']:>6} "
            f"{row['area_mm2']:>7.3f}")
    return "\n".join(lines)
