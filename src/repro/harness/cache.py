"""Content-hash result cache for synthesis runs and experiment cells.

The benchmark × flow × bit-width grids behind Tables 1-3 (and the
``explore`` parameter sweeps) re-evaluate the same work constantly: a
warm re-run repeats every cell verbatim, and the three baseline flows
synthesise the *identical* design at 4, 8 and 16 bits because none of
them consults the bit-width-dependent cost model.  This module makes
every such repeat a lookup instead of a re-run.

Keys are stable SHA-256 digests of the canonicalised inputs — the
:func:`repro.io.dfg_to_dict` serialisation of the DFG plus the flow
name and every parameter that can change the output
(:class:`~repro.synth.algorithm.SynthesisParams` and the cost-model
bit width for ``ours``; the full
:class:`~repro.harness.experiment.ExperimentConfig` for a cell) — so a
hit is exact by construction, never heuristic.  Two result kinds are
cached:

* **synthesis** — one flow's :class:`~repro.synth.result.
  SynthesisResult`, serialised through :func:`repro.io.design_to_dict`
  plus the merger history.  Baseline flows (``camad``, ``approach1``,
  ``approach2``) ignore the cost model entirely, so their key excludes
  the bit width and one 4-bit synthesis serves the 8- and 16-bit cells.
* **cell** — one full table cell, stored as the same record the
  checkpoint :class:`~repro.runtime.checkpoint.Journal` uses and
  restored as a :class:`~repro.runtime.checkpoint.JournaledCell`, so a
  cache hit renders byte-identically to the cold run it memoises.

The cache has an in-memory tier (per process) and an optional on-disk
tier (``cache_dir``) shared by the parallel executor's workers: entries
are content-addressed and written atomically
(:func:`~repro.runtime.atomic.atomic_write_text`), so concurrent
writers of the same key produce the same bytes and readers never see a
torn entry.  Degraded results (budget-exhausted partial runs) are
never stored — a starved run must not poison future unstarved ones.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Optional, TYPE_CHECKING

from ..runtime.atomic import atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dfg import DFG
    from ..synth import SynthesisParams, SynthesisResult

#: Key-material epoch; bump when cached semantics change so stale
#: on-disk entries miss instead of resurrecting old behaviour.
#: v2: cells gained the width-narrowing knobs (``narrow_widths``,
#: ``narrow_input_bits``) — a narrowed cell's area must never be served
#: for a plain one, and v1 entries predate the fields entirely.
CACHE_EPOCH = "repro-cache-v2"

#: On-disk entry format tag.
ENTRY_FORMAT = "repro-cache-entry-v1"

#: Flows whose synthesis ignores the cost model (and hence the bit
#: width): their synthesis key is shared across 4/8/16-bit cells.
BIT_INDEPENDENT_FLOWS = frozenset({"camad", "approach1", "approach2"})


def _digest(material: dict) -> str:
    """Stable SHA-256 over canonical JSON (sorted keys, tight commas)."""
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def synthesis_key(dfg: "DFG", flow: str,
                  params: "SynthesisParams | None" = None,
                  bits: int = 8) -> str:
    """Cache key of one synthesis run.

    For ``ours`` the key covers every :class:`SynthesisParams` field
    plus the cost-model bit width (ΔH depends on it); for the baseline
    flows neither matters — see :data:`BIT_INDEPENDENT_FLOWS`.
    """
    from ..io import dfg_to_dict
    material: dict[str, Any] = {
        "epoch": CACHE_EPOCH,
        "kind": "synthesis",
        "dfg": dfg_to_dict(dfg),
        "flow": flow,
    }
    if flow not in BIT_INDEPENDENT_FLOWS:
        from ..synth import SynthesisParams
        material["params"] = asdict(params or SynthesisParams())
        material["bits"] = bits
    return _digest(material)


def cell_key(dfg: "DFG", flow: str, bits: int, config: Any) -> str:
    """Cache key of one full experiment cell (synthesis + ATPG + cost).

    Covers the canonical DFG, the flow, the bit width and the complete
    :class:`~repro.harness.experiment.ExperimentConfig` (budgets, fault
    sampling, ATPG seed — and the dataflow narrowing knobs, so a
    narrowed cell and a plain one never share a key), plus the
    per-width paper parameters ``ours`` derives from the bit width —
    everything that can change a row.
    """
    from ..io import dfg_to_dict
    material: dict[str, Any] = {
        "epoch": CACHE_EPOCH,
        "kind": "cell",
        "dfg": dfg_to_dict(dfg),
        "flow": flow,
        "bits": bits,
        "config": asdict(config),
    }
    if flow == "ours":
        from .experiment import PAPER_PARAMS
        material["paper_params"] = list(PAPER_PARAMS.get(bits, (3, 2.0, 1.0)))
    return _digest(material)


# ----------------------------------------------------------------------
# Stats
# ----------------------------------------------------------------------
@dataclass
class CacheStats:
    """Hit/miss/store counters, split by tier."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Fraction of lookups served from either tier (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.memory_hits, self.disk_hits,
                          self.misses, self.stores)

    def delta(self, before: "CacheStats") -> "CacheStats":
        """Counter change since ``before`` (a prior :meth:`snapshot`)."""
        return CacheStats(self.memory_hits - before.memory_hits,
                          self.disk_hits - before.disk_hits,
                          self.misses - before.misses,
                          self.stores - before.stores)

    def add(self, other: "CacheStats") -> None:
        self.memory_hits += other.memory_hits
        self.disk_hits += other.disk_hits
        self.misses += other.misses
        self.stores += other.stores

    def to_dict(self) -> dict[str, Any]:
        return {"memory_hits": self.memory_hits, "disk_hits": self.disk_hits,
                "hits": self.hits, "misses": self.misses,
                "stores": self.stores,
                "hit_rate": round(self.hit_rate(), 4)}


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------
#: Default in-memory tier cap (entries).  A synthesis payload for a
#: large benchmark is tens of kilobytes, so an unbounded dict in a
#: long-lived service daemon is a slow leak; 1024 entries covers every
#: grid the harness runs while bounding the tier to a few dozen MB.
DEFAULT_MEMORY_CAP = 1024


@dataclass
class ResultCache:
    """Two-tier content-addressed result cache.

    The in-memory tier is an LRU-capped dict private to this process
    (``memory_cap`` entries; 0 or negative = unbounded); the optional
    disk tier (``cache_dir``) is shared between processes and across
    runs and is never evicted — an entry pushed out of memory is still
    a disk hit.  Disk entries are one JSON file per key under a
    two-character fan-out directory, written atomically; unreadable or
    mismatched entries are treated as misses, never as errors — a
    corrupt cache can only cost time, not correctness.
    """

    cache_dir: Optional[Path] = None
    stats: CacheStats = field(default_factory=CacheStats)
    memory_cap: int = DEFAULT_MEMORY_CAP
    evictions: int = 0
    _memory: dict[str, dict] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.cache_dir is not None:
            self.cache_dir = Path(self.cache_dir)

    # ------------------------------------------------------------------
    def _disk_path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / key[:2] / f"{key}.json"

    def _remember(self, key: str, payload: dict) -> None:
        """Insert into the memory tier as most-recently-used, evicting
        the least-recently-used entries past ``memory_cap`` (dicts are
        insertion-ordered, so re-inserting on every touch makes the
        iteration head the LRU end)."""
        self._memory.pop(key, None)
        self._memory[key] = payload
        if self.memory_cap > 0:
            while len(self._memory) > self.memory_cap:
                self._memory.pop(next(iter(self._memory)))
                self.evictions += 1

    def get(self, key: str) -> Optional[dict]:
        """The payload stored under ``key``, or None on a miss."""
        payload = self._memory.get(key)
        if payload is not None:
            self._remember(key, payload)  # refresh recency
            self.stats.memory_hits += 1
            return payload
        if self.cache_dir is not None:
            try:
                entry = json.loads(self._disk_path(key).read_text())
            except (OSError, ValueError):
                entry = None
            if (isinstance(entry, dict)
                    and entry.get("format") == ENTRY_FORMAT
                    and entry.get("key") == key
                    and isinstance(entry.get("payload"), dict)):
                payload = entry["payload"]
                self._remember(key, payload)
                self.stats.disk_hits += 1
                return payload
        self.stats.misses += 1
        return None

    def put(self, key: str, payload: dict) -> None:
        """Store ``payload`` in every configured tier."""
        self._remember(key, payload)
        self.stats.stores += 1
        if self.cache_dir is not None:
            path = self._disk_path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(path, json.dumps(
                {"format": ENTRY_FORMAT, "key": key, "payload": payload},
                sort_keys=True) + "\n")

    def __len__(self) -> int:
        return len(self._memory)

    # ------------------------------------------------------------------
    # Synthesis results
    # ------------------------------------------------------------------
    def get_synthesis(self, key: str) -> "SynthesisResult | None":
        """A cached synthesis result, rebuilt and re-validated."""
        payload = self.get(key)
        if payload is None:
            return None
        try:
            return _restore_synthesis(payload)
        except Exception:  # noqa: BLE001 - corrupt entry == miss
            self._memory.pop(key, None)
            return None

    def put_synthesis(self, key: str, result: "SynthesisResult") -> None:
        """Store a *complete* synthesis result (degraded runs are not
        cached — a budget-starved design must not shadow the converged
        one)."""
        if result.degraded:
            return
        self.put(key, _synthesis_payload(result))

    # ------------------------------------------------------------------
    # Experiment cells
    # ------------------------------------------------------------------
    def get_cell(self, key: str) -> Optional[dict]:
        """A cached cell's journal-style record, or None."""
        payload = self.get(key)
        if payload is not None and payload.get("kind") == "cell":
            return payload
        return None

    def put_cell(self, key: str, record: dict) -> None:
        """Store one completed cell's journal-style record."""
        if record.get("row", {}).get("degraded"):
            return
        self.put(key, record)


def _synthesis_payload(result: "SynthesisResult") -> dict:
    from ..io import design_to_dict
    return {
        "kind": "synthesis",
        "design": design_to_dict(result.design),
        "params": dict(result.params),
        "history": [dict(asdict(r), order=list(r.order))
                    for r in result.history],
        "skipped": [asdict(s) for s in result.skipped],
    }


def _restore_synthesis(payload: dict) -> "SynthesisResult":
    from ..io import design_from_dict
    from ..synth.result import (MergeRecord, SkippedCandidate,
                                SynthesisResult)
    design = design_from_dict(payload["design"])
    history = [MergeRecord(**dict(r, order=tuple(r["order"])))
               for r in payload["history"]]
    skipped = [SkippedCandidate(**s) for s in payload["skipped"]]
    return SynthesisResult(design, history, params=dict(payload["params"]),
                           skipped=skipped)


# ----------------------------------------------------------------------
# Cache-aware cell runner
# ----------------------------------------------------------------------
def run_cell_cached(benchmark: str, flow: str, config: Any,
                    cache: Optional[ResultCache] = None,
                    budget: Any = None) -> tuple[Any, dict]:
    """Run (or restore) one table cell through the cache.

    Returns ``(cell, provenance)``: the cell is a live
    :class:`~repro.harness.experiment.CellResult` on a miss and a
    :class:`~repro.runtime.checkpoint.JournaledCell` on a hit — the two
    render identically.  The provenance dict records the cell-tier
    verdict and the per-cell cache counter deltas.
    """
    from ..bench import load
    from ..runtime.checkpoint import cell_record, restore_cell
    from .experiment import run_cell

    if cache is None:
        return run_cell(benchmark, flow, config, budget=budget), {
            "cell_cache": "off"}

    key = cell_key(load(benchmark), flow, config.bits, config)
    before = cache.stats.snapshot()
    record = cache.get_cell(key)
    if record is not None:
        return restore_cell(record), {
            "cell_cache": "hit", "cache_key": key,
            "cache_stats": cache.stats.delta(before).to_dict()}
    cell = run_cell(benchmark, flow, config, budget=budget, cache=cache)
    if not cell.degraded:
        cache.put_cell(key, cell_record(cell, provenance={"cache_key": key}))
    return cell, {"cell_cache": "miss", "cache_key": key,
                  "cache_stats": cache.stats.delta(before).to_dict()}
