"""Schedule figures (paper Figures 1-3) as text renderings.

Figure 2 and Figure 3 of the paper show the schedules the algorithm
produces for Ex, Dct and Diffeq, annotated with the operations per
control step; :func:`render_schedule` reproduces that view, and
:func:`render_sharing` lists which operation groups share modules and
which variable groups share registers, as the figure captions do.
"""

from __future__ import annotations

from ..etpn.design import Design
from ..sched import ops_by_step
from .experiment import module_symbol


def render_schedule(design: Design) -> str:
    """The step-by-step schedule of a design, one line per step."""
    grouped = ops_by_step(design.steps)
    lines = [f"Schedule of {design.dfg.name} ({design.label}), "
             f"{design.num_steps} control steps:"]
    module_of = design.binding.module_of
    for step in range(design.num_steps):
        ops = grouped.get(step, [])
        cells = [f"{op}@{module_of[op]}" for op in ops]
        lines.append(f"  step {step}: " + (" | ".join(cells) or "(idle)"))
    if design.dfg.loop_condition is not None:
        lines.append(f"  loop while {design.dfg.loop_condition}")
    return "\n".join(lines)


def render_sharing(design: Design) -> str:
    """Module and register sharing groups, as in the figure captions."""
    lines = [f"Sharing in {design.dfg.name} ({design.label}):"]
    for module, ops in design.binding.modules().items():
        if len(ops) > 1:
            symbol = module_symbol(design, module)
            lines.append(f"  ops ({', '.join(ops)}) share {module} "
                         f"({symbol})")
    for register, variables in design.binding.registers().items():
        if len(variables) > 1:
            lines.append(f"  vars ({', '.join(variables)}) share "
                         f"{register}")
    return "\n".join(lines)


def render_lifetimes(design: Design) -> str:
    """An ASCII lifetime chart (birth..death bars per variable)."""
    lifetimes = design.lifetimes
    steps = design.num_steps
    lines = [f"Variable lifetimes of {design.dfg.name} "
             f"({design.label}):",
             "  " + "var".ljust(8)
             + "".join(f"{s:>3}" for s in range(-1, steps + 1))]
    for name in sorted(lifetimes):
        lt = lifetimes[name]
        row = []
        for step in range(-1, steps + 1):
            occupied = lt.birth < step <= lt.death
            row.append("  #" if occupied else "  .")
        lines.append("  " + name.ljust(8) + "".join(row))
    return "\n".join(lines)
