"""Perf baseline for incremental static timing analysis.

The :class:`~repro.analysis.timing.ConeCache` exists for one workload:
re-timing a netlist after a synthesis step.  Algorithm 1 changes one
module binding per iteration; re-expanding the design renumbers every
gate, but almost every cone is structurally unchanged — the cache,
keyed on hash-consed structural node ids, must turn that into real
wall-clock savings or it is dead weight.

Each cell measures exactly that transition on one benchmark: netlist A
is the unmerged default design, netlist B the design after **one**
merger (``SynthesisParams(max_iterations=1)``).  *Cold* times
``analyze_timing`` on B with a fresh cache; *warm* primes a cache on A
once, then times B starting from a clone of the primed state — the
measured work is the incremental delta (the cones the merger touched),
which is the cost a synthesis-loop caller actually pays.  Every repeat
re-clones the primed state, so warm repeats never degenerate into
hot whole-report hits; the minimum over repeats is recorded (the
honest protocol on a single-CPU container, where the first run eats
scheduler noise).  The cell also asserts the warm report equals the
cold one on every timing quantity (arrivals, slacks, levels, paths) —
cache-statistics fields (``cached``, ``cone_size``, ``pruned``,
hit/miss counters) legitimately differ, since ``cone_size`` counts
structures *evaluated*, and are scrubbed before comparison.

The report is written atomically
(:func:`~repro.runtime.atomic.atomic_write_text`) so an interrupted
run never leaves a truncated baseline file.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Optional

from ..analysis.timing import ConeCache, analyze_timing
from ..bench import load, names
from ..etpn.from_dfg import default_design
from ..gates.expand import expand_to_gates
from ..rtl.generate import generate_rtl
from ..runtime.atomic import atomic_write_text
from ..synth.algorithm import SynthesisParams, synthesize

#: Report schema tag, bumped when the cell layout changes.
SCHEMA = "repro.bench_timing/v1"

#: One-line statement of the measurement discipline, recorded in the
#: report so the committed numbers explain themselves.
PROTOCOL = ("cold: fresh ConeCache per repeat on the post-merger "
            "netlist; warm: cache primed once on the pre-merger "
            "netlist, re-cloned per repeat; min over repeats; warm "
            "report must equal cold modulo cache-statistics fields")

#: Acceptance floor on the suite-total cold/warm ratio.
TARGET_SPEEDUP = 5.0


def scrub_cache_stats(report_dict: dict) -> dict:
    """A report dict with every cache-dependent field removed.

    What remains is pure timing truth — equality between the cold and
    warm variants proves the cache changes *cost*, never *answers*.
    """
    scrubbed = {k: v for k, v in report_dict.items()
                if k not in ("cone_hits", "cone_misses", "pruned_total")}
    scrubbed["endpoints"] = [
        {k: v for k, v in endpoint.items()
         if k not in ("cached", "cone_size", "pruned")}
        for endpoint in report_dict["endpoints"]]
    return scrubbed


def time_cell(benchmark: str, bits: int, repeats: int) -> dict:
    """One cell: cold vs incremental re-analysis after one merger."""
    dfg = load(benchmark)
    net_a = expand_to_gates(generate_rtl(default_design(dfg), bits))
    merged = synthesize(dfg, SynthesisParams(max_iterations=1))
    net_b = expand_to_gates(generate_rtl(merged.design, bits))

    primed = ConeCache()
    analyze_timing(net_a, bits=bits, cache=primed, k_paths=0)

    def best_of(make_cache: Callable[[], ConeCache]) -> tuple[float, dict]:
        best, report = float("inf"), None
        for _ in range(repeats):
            cache = make_cache()
            t0 = time.perf_counter()
            result = analyze_timing(net_b, bits=bits, cache=cache,
                                    k_paths=0)
            elapsed = time.perf_counter() - t0
            if elapsed < best:
                best, report = elapsed, result.to_dict()
        return best, report

    cold_seconds, cold_report = best_of(ConeCache)
    warm_seconds, warm_report = best_of(primed.clone)
    return {
        "benchmark": benchmark,
        "bits": bits,
        "mergers_applied": merged.iterations,
        "gates_pre": len(net_a.gates),
        "gates_post": len(net_b.gates),
        "endpoints": len(cold_report["endpoints"]),
        "cone_hits_warm": warm_report["cone_hits"],
        "cones_total": warm_report["cones_total"],
        "ok": cold_report["ok"],
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "speedup": round(cold_seconds / warm_seconds, 2)
        if warm_seconds else None,
        "reports_match": scrub_cache_stats(cold_report)
        == scrub_cache_stats(warm_report),
    }


def run_bench_timing(bits: int = 8, repeats: int = 5,
                     output: str = "BENCH_timing.json",
                     progress: Optional[Callable[[str], None]] = None
                     ) -> dict:
    """Time every benchmark's one-merger re-analysis and write the
    baseline file.  Returns the report dict (also written to ``output``
    atomically)."""
    cells = []
    for benchmark in names():
        cell = time_cell(benchmark, bits, repeats)
        cells.append(cell)
        if progress is not None:
            progress(f"{benchmark}/{bits}-bit: "
                     f"cold {cell['cold_seconds'] * 1e3:.2f}ms vs "
                     f"warm {cell['warm_seconds'] * 1e3:.2f}ms "
                     f"(x{cell['speedup']}, "
                     f"{cell['cone_hits_warm']}/{cell['cones_total']} "
                     f"cones served whole)")
    cold_total = sum(c["cold_seconds"] for c in cells)
    warm_total = sum(c["warm_seconds"] for c in cells)
    report = {
        "schema": SCHEMA,
        "protocol": PROTOCOL,
        "bits": bits,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "cells": cells,
        "cells_total": len(cells),
        "cold_seconds_total": round(cold_total, 6),
        "warm_seconds_total": round(warm_total, 6),
        "speedup_total": round(cold_total / warm_total, 2)
        if warm_total else None,
        "target_speedup": TARGET_SPEEDUP,
        "meets_target": warm_total > 0.0
        and cold_total / warm_total >= TARGET_SPEEDUP,
        "reports_match": all(c["reports_match"] for c in cells),
        "timing_ok": all(c["ok"] for c in cells),
    }
    atomic_write_text(output, json.dumps(report, indent=2) + "\n")
    return report
