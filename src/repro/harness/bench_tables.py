"""End-to-end perf baseline for the parallel harness + result cache.

``repro-hlts bench-tables`` times the same table grid three ways and
writes ``BENCH_tables.json``:

A. **sequential cold** — ``workers=1``, no cache: the pre-PR-6
   baseline every speedup is measured against.
B. **parallel cold** — ``workers=N`` against a *fresh* cache
   directory: what process-pool sharding alone buys.  On a
   single-core container this is ≈ 1× (and slightly below 1× once
   pool/pickling overhead is paid) — the report records
   ``cpu_count`` so the number can be judged honestly.
C. **parallel warm** — ``workers=N`` against the cache run B just
   filled: the production steady state (re-rendering a table after a
   config tweak elsewhere, resuming a sweep, CI re-runs), where every
   cell is a content-hash lookup.

The headline ``speedup`` is A vs C — sequential-cold against the
full production configuration (sharding + warm cache); ``speedup_cold``
(A vs B) isolates parallelism and ``speedup_warm`` is an alias of the
headline.  Every run's rendered rows must be byte-identical modulo the
wall-clock column (:func:`~repro.runtime.checkpoint.scrubbed_records`),
and the report says so explicitly (``rows_identical``) — a speedup
that changes the numbers is a bug, not a win.

The report is written atomically
(:func:`~repro.runtime.atomic.atomic_write_text`) so an interrupted
run never leaves a truncated baseline file.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import Callable, Optional

from ..runtime.atomic import atomic_write_text
from ..runtime.checkpoint import cell_record, scrubbed_records
from .cache import ResultCache
from .experiment import ExperimentConfig, FLOW_ORDER
from .parallel import run_parallel_grid

#: Report schema tag, bumped when the layout changes.
SCHEMA = "repro.bench_tables/v1"

#: What the three timed runs measure (recorded verbatim in the report).
PROTOCOL = (
    "A: workers=1, no cache (sequential-cold baseline); "
    "B: workers=N, fresh cache dir (parallel-cold: sharding alone); "
    "C: workers=N, warm cache from B (production steady state). "
    "speedup_cold = A/B, speedup_warm = A/C; the headline speedup is "
    "speedup_warm. All three runs must render byte-identical rows "
    "modulo the tg_seconds wall-clock column.")


def _timed_run(benchmark: str, grid: list[tuple[str, int]], workers: int,
               cache: Optional[ResultCache], label: str,
               progress: Optional[Callable[[str], None]]
               ) -> tuple[dict, list[dict]]:
    """One protocol run: summary dict + journal-shaped cell records."""
    if progress is not None:
        progress(f"run {label}: workers={workers}, "
                 f"cache={'on' if cache is not None else 'off'} ...")
    outcome = run_parallel_grid(benchmark, grid, ExperimentConfig.quick,
                                workers=workers, cache=cache,
                                progress=progress)
    if outcome.skipped:
        lost = ", ".join(f"{s.flow}/{s.bits}" for s in outcome.skipped)
        raise RuntimeError(f"bench-tables run {label} lost cells: {lost}")
    records = [cell_record(cell) for cell in outcome.cells]
    summary = {
        "label": label,
        "workers": outcome.workers,
        "seconds": round(outcome.elapsed_seconds, 3),
        "cells": len(outcome.cells),
        "cache": outcome.cache_stats.to_dict(),
        "cache_hit_rate": round(outcome.cache_stats.hit_rate(), 4),
    }
    if progress is not None:
        progress(f"run {label}: {summary['seconds']}s, "
                 f"hit rate {summary['cache_hit_rate']}")
    return summary, records


def _ratio(numerator: float, denominator: float) -> Optional[float]:
    return round(numerator / denominator, 2) if denominator else None


def run_bench_tables(benchmark: str = "ex",
                     bits: Optional[list[int]] = None,
                     workers: int = 4,
                     output: str = "BENCH_tables.json",
                     cache_dir: Optional[str] = None,
                     progress: Optional[Callable[[str], None]] = None
                     ) -> dict:
    """Time the three-run protocol and write the baseline file.

    ``cache_dir`` defaults to a throwaway temp directory (deleted
    afterwards); pass a path to keep the warm cache for later runs.
    Returns the report dict (also written to ``output`` atomically).
    """
    widths = bits if bits is not None else [4, 8, 16]
    grid = [(flow, width) for flow in FLOW_ORDER for width in widths]
    workers = max(2, workers)

    owned_dir = cache_dir is None
    cache_path = Path(cache_dir) if cache_dir else Path(
        tempfile.mkdtemp(prefix="repro-bench-tables-"))
    try:
        sequential, rows_a = _timed_run(
            benchmark, grid, 1, None, "sequential-cold", progress)
        parallel_cold, rows_b = _timed_run(
            benchmark, grid, workers, ResultCache(cache_dir=cache_path),
            "parallel-cold", progress)
        parallel_warm, rows_c = _timed_run(
            benchmark, grid, workers, ResultCache(cache_dir=cache_path),
            "parallel-warm", progress)
    finally:
        if owned_dir:
            shutil.rmtree(cache_path, ignore_errors=True)

    scrubbed = scrubbed_records(rows_a)
    rows_identical = (scrubbed == scrubbed_records(rows_b)
                      == scrubbed_records(rows_c))
    report = {
        "schema": SCHEMA,
        "protocol": PROTOCOL,
        "benchmark": benchmark,
        "bits": widths,
        "cpu_count": os.cpu_count(),
        "runs": [sequential, parallel_cold, parallel_warm],
        "cells": [record["row"] for record in rows_a],
        "rows_identical": rows_identical,
        "speedup_cold": _ratio(sequential["seconds"],
                               parallel_cold["seconds"]),
        "speedup_warm": _ratio(sequential["seconds"],
                               parallel_warm["seconds"]),
        "speedup": _ratio(sequential["seconds"],
                          parallel_warm["seconds"]),
        "warm_hit_rate": parallel_warm["cache_hit_rate"],
    }
    atomic_write_text(output, json.dumps(report, indent=2) + "\n")
    return report
