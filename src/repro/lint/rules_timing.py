"""Timing-layer design rules (codes ``TIM001``-``TIM006``).

The timing layer audits the gate netlist with the static timing
analyser of :mod:`repro.analysis.timing`: arrival times propagated
through every combinational cone, slack against the clock period, and
false paths pruned by ternary constant propagation.  Where the ``GAT``
rules check the netlist's *shape*, these rules check whether it can
actually run at the clock the cost model prices — the gate-level
counterpart of the library's whole-step delay model.

The report is computed once per
:class:`~repro.lint.registry.LintContext` and memoised in ``ctx.cache``
under :data:`REPORT_KEY`, so one shared context serves all six rules
with a single analysis.  ``ctx.period`` selects the clock; None audits
the library-derived default period, at which a healthy expansion closes
timing by construction — findings then mean the netlist (or the delay
table) drifted from the model the allocator priced.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.timing import analyze_timing
from ..analysis.timing.report import TimingReport
from .diagnostic import Severity
from .registry import Emit, LintContext, rule

#: ``ctx.cache`` key holding the memoised timing report.
REPORT_KEY = "timing.report"

#: At most this many findings per multi-witness rule, to keep a broken
#: netlist's report readable.
MAX_FINDINGS = 8


def cached_timing(ctx: LintContext) -> Optional[TimingReport]:
    """The context's memoised timing report (None when the context has
    no netlist or the netlist is empty)."""
    if REPORT_KEY not in ctx.cache:
        result: Optional[TimingReport] = None
        if ctx.netlist is not None and ctx.netlist.gates:
            try:
                result = analyze_timing(ctx.netlist, bits=ctx.bits,
                                        period=ctx.period, k_paths=0)
            except Exception:  # degenerate netlists are GAT00x findings
                result = None
        ctx.cache[REPORT_KEY] = result
    return ctx.cache[REPORT_KEY]


@rule("TIM001", layer="timing", severity=Severity.ERROR,
      title="clock period violated")
def check_violations(ctx: LintContext, emit: Emit) -> None:
    """An endpoint's data arrives after its required time: the netlist
    cannot run at the analysed clock period."""
    rep = cached_timing(ctx)
    if rep is None:
        return
    for e in rep.violations()[:MAX_FINDINGS]:
        emit(f"{rep.name}: {e.kind} endpoint {e.name!r} misses the "
             f"period {rep.period:g} by {-e.slack:.2f} "
             f"(arrival {e.arrival:.2f}, required {e.required:.2f}, "
             f"{e.levels} levels)",
             location=e.name,
             hint="slow the clock, or synthesise with check_timing=True "
                  "so the merger loop rejects period-breaking candidates")


@rule("TIM002", layer="timing", severity=Severity.WARNING,
      title="unconstrained endpoint")
def check_unconstrained(ctx: LintContext, emit: Emit) -> None:
    """No timed launch reaches the endpoint: its cone reduces to a
    constant, so it carries no transition to time (dead logic, or a
    register the reset analysis proves stuck)."""
    rep = cached_timing(ctx)
    if rep is None:
        return
    for e in rep.unconstrained()[:MAX_FINDINGS]:
        emit(f"{rep.name}: {e.kind} endpoint {e.name!r} is unconstrained "
             f"— every path to it is false "
             f"({e.pruned} cone gate(s) proved constant)",
             location=e.name,
             hint="constant-fed logic is dead; check the cone's wiring")


@rule("TIM003", layer="timing", severity=Severity.ERROR,
      title="analysis blocked by combinational cycle")
def check_cycle(ctx: LintContext, emit: Emit) -> None:
    """A combinational cycle makes levelization impossible: no arrival
    time on the loop is defined (``GAT002`` locates the loop; this rule
    records that timing could not be audited at all)."""
    rep = cached_timing(ctx)
    if rep is None or not rep.cycle:
        return
    emit(f"{rep.name}: static timing analysis blocked by a combinational "
         f"cycle through {len(rep.cycle) - 1} gate(s) "
         f"(e.g. gid {rep.cycle[0]})",
         location=f"gid {rep.cycle[0]}",
         hint="break the loop with a register; no endpoint was timed")


@rule("TIM004", layer="timing", severity=Severity.ERROR,
      title="delay table inconsistent")
def check_table(ctx: LintContext, emit: Emit) -> None:
    """The delay table fails its own sanity checks (non-positive or
    non-monotone delays): every arrival derived from it is meaningless,
    so the analysis refuses to propagate."""
    rep = cached_timing(ctx)
    if rep is None:
        return
    for problem in rep.table_problems[:MAX_FINDINGS]:
        emit(f"{rep.name}: delay table rejected: {problem}",
             hint="fix the DelayTable; no arrival was computed")


@rule("TIM005", layer="timing", severity=Severity.ERROR,
      title="delay table disagrees with module library")
def check_library(ctx: LintContext, emit: Emit) -> None:
    """A unit class measures deeper than the control steps the module
    library declares for it: every schedule priced with that library is
    optimistic, so Tables 1-3 style results are suspect."""
    rep = cached_timing(ctx)
    if rep is None:
        return
    for problem in rep.library_problems[:MAX_FINDINGS]:
        emit(f"{rep.name}: library disagreement: {problem}",
             hint="raise the period or the library's delay_steps until "
                  "the measured netlist fits the step model")


@rule("TIM006", layer="timing", severity=Severity.WARNING,
      title="arrival beyond the chain allowance")
def check_chain_allowance(ctx: LintContext, emit: Emit) -> None:
    """An endpoint's arrival exceeds the worst single-step depth the
    library prices: a generous user-chosen period hides chaining the
    step-based cost model never accounted for."""
    rep = cached_timing(ctx)
    if rep is None or rep.chain_allowance <= 0.0:
        return
    deep = [e for e in rep.endpoints
            if e.arrival is not None and e.arrival > rep.chain_allowance]
    deep.sort(key=lambda e: (-e.arrival, e.name))  # type: ignore[operator]
    for e in deep[:MAX_FINDINGS]:
        emit(f"{rep.name}: {e.kind} endpoint {e.name!r} arrives at "
             f"{e.arrival:.2f}, beyond the {rep.chain_allowance:.2f} gate "
             f"units one control step accommodates",
             location=e.name,
             hint="the period masks operation chaining the library's "
                  "step model does not price; check delay_steps")
