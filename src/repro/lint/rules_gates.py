"""Gate-netlist-layer design rules (codes ``GAT001``-``GAT008``).

The netlist construction API (:class:`repro.gates.netlist.GateNetlist`)
enforces most of these at build time; the rules re-check the final data
structure so that netlists assembled or transformed by other means
(pruning, scan insertion, external readers) get the same audit.
:meth:`GateNetlist.check_complete` delegates to
:func:`floating_dffs` so the raise-style API and rule GAT001 share one
implementation.
"""

from __future__ import annotations

from ..gates.netlist import (GateType, SOURCE_TYPES, UNARY_TYPES,
                             combinational_cycle)
from .diagnostic import Severity
from .registry import Emit, LintContext, rule

__all__ = ["combinational_cycle", "floating_dffs"]


def floating_dffs(netlist) -> list:
    """DFF gates whose D input was never connected (shared with
    :meth:`GateNetlist.check_complete`)."""
    return [g for g in netlist.gates
            if g.gtype is GateType.DFF and not g.fanins]


def _fanout_counts(netlist) -> list[int]:
    """Fanout per gate, tolerant of dangling references (GAT003 reports
    those; :meth:`GateNetlist.fanout_counts` would raise on them)."""
    n = len(netlist.gates)
    counts = [0] * n
    for gate in netlist.gates:
        for fin in gate.fanins:
            if 0 <= fin < n:
                counts[fin] += 1
    for gid in netlist.outputs.values():
        if 0 <= gid < n:
            counts[gid] += 1
    return counts


@rule("GAT001", layer="gates", severity=Severity.ERROR,
      title="floating DFF input")
def check_dffs_connected(ctx: LintContext, emit: Emit) -> None:
    """Every state bit needs a D driver."""
    netlist = ctx.netlist
    for gate in floating_dffs(netlist):
        emit(f"{netlist.name}: DFF {gate.gid} ({gate.name!r}) has no "
             f"D input", location=f"gate {gate.gid}",
             hint="connect_dff() closes the feedback")


@rule("GAT002", layer="gates", severity=Severity.ERROR,
      title="combinational loop")
def check_no_combinational_loops(ctx: LintContext, emit: Emit) -> None:
    """A cycle not broken by a register never settles."""
    cycle = combinational_cycle(ctx.netlist)
    if cycle:
        chain = " -> ".join(str(g) for g in cycle)
        emit(f"{ctx.netlist.name}: combinational loop {chain}",
             location=f"gate {cycle[0]}",
             hint="insert a register or cut the feedback path")


@rule("GAT003", layer="gates", severity=Severity.ERROR,
      title="dangling fanin reference")
def check_fanin_references(ctx: LintContext, emit: Emit) -> None:
    """Fanins must reference existing gates."""
    netlist = ctx.netlist
    n = len(netlist.gates)
    for gate in netlist.gates:
        for fin in gate.fanins:
            if not (0 <= fin < n):
                emit(f"{netlist.name}: gate {gate.gid} reads nonexistent "
                     f"gate {fin}", location=f"gate {gate.gid}")


@rule("GAT004", layer="gates", severity=Severity.WARNING,
      title="dead gate")
def check_dead_gates(ctx: LintContext, emit: Emit) -> None:
    """A non-input gate nothing reads and no output observes is dead
    logic (the word-level expansion leaves unused carry bits behind;
    the prune pass removes them)."""
    netlist = ctx.netlist
    fanout = _fanout_counts(netlist)
    for gate in netlist.gates:
        if gate.gtype is GateType.INPUT:
            continue  # GAT006 covers unused inputs
        if fanout[gate.gid] == 0:
            emit(f"{netlist.name}: gate {gate.gid} "
                 f"({gate.gtype.value}{f' {gate.name!r}' if gate.name else ''})"
                 f" drives nothing", location=f"gate {gate.gid}",
                 hint="prune_unobservable() removes dead logic")


@rule("GAT005", layer="gates", severity=Severity.ERROR,
      title="multiply-driven DFF")
def check_single_driver(ctx: LintContext, emit: Emit) -> None:
    """A state bit with more than one D driver is a multiply-driven net."""
    netlist = ctx.netlist
    for gate in netlist.gates:
        if gate.gtype is GateType.DFF and len(gate.fanins) > 1:
            emit(f"{netlist.name}: DFF {gate.gid} ({gate.name!r}) has "
                 f"{len(gate.fanins)} D drivers", location=f"gate {gate.gid}",
                 hint="a net must have exactly one driver")


@rule("GAT006", layer="gates", severity=Severity.WARNING,
      title="unused primary input")
def check_inputs_used(ctx: LintContext, emit: Emit) -> None:
    """A primary input no gate reads is a dangling port."""
    netlist = ctx.netlist
    fanout = _fanout_counts(netlist)
    for name, gid in sorted(netlist.inputs.items()):
        if fanout[gid] == 0:
            emit(f"{netlist.name}: input {name!r} is never read",
                 location=f"gate {gid}")


@rule("GAT007", layer="gates", severity=Severity.ERROR,
      title="wrong fanin count")
def check_fanin_counts(ctx: LintContext, emit: Emit) -> None:
    """Sources take no fanins, unary gates exactly one, other gates at
    least two (floating DFFs are GAT001's finding, not ours)."""
    netlist = ctx.netlist
    for gate in netlist.gates:
        count = len(gate.fanins)
        if gate.gtype in SOURCE_TYPES and count:
            emit(f"{netlist.name}: {gate.gtype.value} gate {gate.gid} "
                 f"takes no fanins but has {count}",
                 location=f"gate {gate.gid}")
        elif gate.gtype is GateType.DFF:
            continue  # 0 fanins -> GAT001, >1 -> GAT005
        elif gate.gtype in UNARY_TYPES and count != 1:
            emit(f"{netlist.name}: {gate.gtype.value} gate {gate.gid} "
                 f"takes one fanin but has {count}",
                 location=f"gate {gate.gid}")
        elif (gate.gtype not in SOURCE_TYPES
              and gate.gtype not in UNARY_TYPES and count < 2):
            emit(f"{netlist.name}: {gate.gtype.value} gate {gate.gid} "
                 f"needs two fanins but has {count}",
                 location=f"gate {gate.gid}")


@rule("GAT008", layer="gates", severity=Severity.ERROR,
      title="output driven by unknown gate")
def check_output_drivers(ctx: LintContext, emit: Emit) -> None:
    """Primary outputs must be driven by existing gates."""
    netlist = ctx.netlist
    n = len(netlist.gates)
    for name, gid in sorted(netlist.outputs.items()):
        if not (0 <= gid < n):
            emit(f"{netlist.name}: output {name!r} driven by nonexistent "
                 f"gate {gid}", location=name)
