"""Petri-net-layer design rules (codes ``NET001``-``NET007``).

Reachability here is *structural*: starting from the initial marking, a
transition is considered fireable once all of its input places have
been produced, and firing produces its outputs.  For the safe,
conflict-light control nets this library builds, the closure is exact;
for general nets it over-approximates (a place the closure cannot reach
is certainly unreachable, so the warnings are sound).
"""

from __future__ import annotations

from .diagnostic import Severity
from .registry import Emit, LintContext, rule


def structural_closure(net) -> tuple[set[str], set[str]]:
    """(reachable places, fireable transitions) under the structural
    over-approximation described in the module docstring."""
    reachable = set(net.initial_marking)
    fireable: set[str] = set()
    changed = True
    while changed:
        changed = False
        for transition in net.transitions.values():
            if transition.trans_id in fireable or not transition.inputs:
                continue
            if all(p in reachable for p in transition.inputs):
                fireable.add(transition.trans_id)
                fresh = set(transition.outputs) - reachable
                if fresh:
                    reachable |= fresh
                changed = True
    return reachable, fireable


@rule("NET001", layer="petri", severity=Severity.ERROR, title="no places")
def check_has_places(ctx: LintContext, emit: Emit) -> None:
    """A control part needs at least one place."""
    if not ctx.net.places:
        emit(f"{ctx.net.name}: no places")


@rule("NET002", layer="petri", severity=Severity.ERROR,
      title="no initial marking")
def check_has_marking(ctx: LintContext, emit: Emit) -> None:
    """Execution starts from the initial marking; it must be non-empty."""
    if ctx.net.places and not ctx.net.initial_marking:
        emit(f"{ctx.net.name}: no initial marking")


@rule("NET003", layer="petri", severity=Severity.WARNING,
      title="unreachable place")
def check_reachable_places(ctx: LintContext, emit: Emit) -> None:
    """A place no token can ever reach is dead control structure."""
    net = ctx.net
    if not net.initial_marking:
        return  # NET002 already fired; everything would be unreachable
    reachable, _ = structural_closure(net)
    for place_id in sorted(set(net.places) - reachable):
        emit(f"{net.name}: place {place_id!r} is unreachable from the "
             f"initial marking", location=place_id,
             hint="remove it or connect a transition that produces it")


@rule("NET004", layer="petri", severity=Severity.WARNING,
      title="dead transition")
def check_fireable_transitions(ctx: LintContext, emit: Emit) -> None:
    """A transition that can never fire is dead control structure."""
    net = ctx.net
    if not net.initial_marking:
        return
    _, fireable = structural_closure(net)
    for trans_id in sorted(net.transitions):
        if trans_id not in fireable and net.transitions[trans_id].inputs:
            emit(f"{net.name}: transition {trans_id!r} can never fire",
                 location=trans_id,
                 hint="one of its input places is unreachable")


@rule("NET005", layer="petri", severity=Severity.WARNING,
      title="unreachable final place")
def check_final_reachable(ctx: LintContext, emit: Emit) -> None:
    """The computation must be able to terminate: some designated final
    place has to be reachable."""
    net = ctx.net
    if not net.final_places or not net.initial_marking:
        return
    reachable, _ = structural_closure(net)
    if not (net.final_places & reachable):
        emit(f"{net.name}: no final place is reachable",
             location=",".join(sorted(net.final_places)),
             hint="the control part can never signal completion")


@rule("NET006", layer="petri", severity=Severity.ERROR,
      title="sourceless transition")
def check_transition_inputs(ctx: LintContext, emit: Emit) -> None:
    """Every transition must consume at least one token (a sourceless
    transition would fire forever and break safeness)."""
    for trans_id in sorted(ctx.net.transitions):
        if not ctx.net.transitions[trans_id].inputs:
            emit(f"{ctx.net.name}: transition {trans_id!r} has no input "
                 f"places", location=trans_id)


#: Reachability bound for the NET007 safeness audit: control nets this
#: library builds stay far below it, and genuinely huge nets should not
#: stall an interactive lint run.
SAFENESS_MAX_MARKINGS = 20_000


@rule("NET007", layer="petri", severity=Severity.WARNING,
      title="unsafe firing")
def check_safe(ctx: LintContext, emit: Emit) -> None:
    """ETPN control parts must be *safe*: no reachable firing may put a
    second token into a place.  A warning (not an error) because the
    raise-style validators run this lint layer — an error would make an
    unsafe net unconstructible and hence unreportable.

    Two-tier: when the structural certificate (shared with the
    ``STR00x`` rules through ``ctx.cache``) already *proves* safety,
    the reachability BFS is skipped entirely — a proved-safe net has no
    unsafe firing to report, so the tiers can never disagree here."""
    from ..analysis.reach_graph import ReachabilityGraph
    from ..analysis.structural import Verdict
    from ..errors import PetriNetError
    from .rules_structural import cached_structural
    net = ctx.net
    if not net.initial_marking:
        return  # NET002 already fired
    cert = cached_structural(ctx)
    if cert is not None and cert.safe is Verdict.PROVED:
        return  # structural tier decided; no enumeration needed
    try:
        graph = ReachabilityGraph(net, max_markings=SAFENESS_MAX_MARKINGS)
    except PetriNetError:
        return  # state space too large to audit; not a finding
    for firing in graph.unsafe_firings:
        emit(f"{net.name}: firing {firing.trans_id!r} in marking "
             f"{sorted(firing.marking)} would double-mark "
             f"{list(firing.places)}", location=firing.trans_id,
             hint="the net is not safe; serialise the conflicting branches")
