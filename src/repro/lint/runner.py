"""Collect-all checkers: run a layer's rules over one representation.

Entry points by granularity:

* :func:`lint_dfg`, :func:`lint_schedule`, :func:`lint_binding`,
  :func:`lint_petri`, :func:`lint_structural`, :func:`lint_netlist`,
  :func:`lint_timing`, :func:`lint_datapath` — audit one intermediate
  representation;
* :func:`lint_design` — audit a bound, scheduled ETPN design point
  (schedule + binding + control net + testability smells);
* :func:`lint_pipeline` — audit everything derivable from a DFG:
  the graph itself, the default design built from it, and the expanded
  gate-level netlist.  This is what ``repro-hlts lint`` runs.

If deriving a downstream view blows up (a broken DFG cannot be
scheduled, an inconsistent binding crashes the data-path builder), the
failure is reported as diagnostic ``LNT001`` instead of propagating, so
one lint run always yields a complete report.
"""

from __future__ import annotations

from .diagnostic import Diagnostic, LintReport, Severity
from .registry import LintContext, run_layer

#: Code used when a pipeline stage cannot even be constructed.
PIPELINE_FAILURE_CODE = "LNT001"


def _pipeline_failure(name: str, stage: str, reason: object) -> Diagnostic:
    return Diagnostic(code=PIPELINE_FAILURE_CODE, severity=Severity.ERROR,
                      layer="pipeline", location=stage,
                      message=f"{name}: cannot build the {stage}: {reason}",
                      hint="fix the upstream errors first")


# ----------------------------------------------------------------------
# Single-representation checkers
# ----------------------------------------------------------------------
def lint_dfg(dfg) -> LintReport:
    """Run every DFG-layer rule over ``dfg``."""
    return run_layer("dfg", LintContext(name=dfg.name, dfg=dfg))


def lint_dataflow(dfg, bits: int = 8) -> LintReport:
    """Run every dataflow-layer rule (``DFA00x``) over ``dfg``.

    The context is fresh, so the abstract-interpretation certificate is
    computed (and memoised) for this run alone; :func:`lint_design`
    instead shares one context — and one certificate — across layers.
    """
    return run_layer("dataflow", LintContext(name=dfg.name, dfg=dfg,
                                             bits=bits))


def lint_schedule(dfg, steps: dict[str, int]) -> LintReport:
    """Run every schedule-layer rule over ``steps``."""
    return run_layer("sched", LintContext(name=dfg.name, dfg=dfg,
                                          steps=steps))


def lint_binding(dfg, steps: dict[str, int], binding) -> LintReport:
    """Run every binding-layer rule over ``binding``."""
    return run_layer("binding", LintContext(name=dfg.name, dfg=dfg,
                                            steps=steps, binding=binding))


def lint_petri(net) -> LintReport:
    """Run every Petri-net-layer rule over ``net``.

    The context is fresh, so ``NET007`` computes (and caches) the
    structural certificate itself before deciding whether a
    reachability audit is needed.
    """
    return run_layer("petri", LintContext(name=net.name, net=net))


def lint_structural(net) -> LintReport:
    """Run every structural-layer rule (``STR00x``) over ``net``."""
    return run_layer("structural", LintContext(name=net.name, net=net))


def lint_netlist(netlist) -> LintReport:
    """Run every gate-layer rule over ``netlist``."""
    return run_layer("gates", LintContext(name=netlist.name,
                                          netlist=netlist))


def lint_timing(netlist, bits: int = 8,
                period: float | None = None) -> LintReport:
    """Run every timing-layer rule (``TIM00x``) over ``netlist``.

    ``period=None`` audits at the library-derived default period; the
    context is fresh, so the timing report is computed for this run
    alone — :func:`lint_pipeline` instead shares one context (and one
    report) between the gates and timing layers.
    """
    return run_layer("timing", LintContext(name=netlist.name,
                                           netlist=netlist, bits=bits,
                                           period=period))


def lint_datapath(datapath, depth_limit: float = 8.0) -> LintReport:
    """Run every testability-layer rule over ``datapath``."""
    return run_layer("testability",
                     LintContext(name=datapath.dfg.name, datapath=datapath,
                                 depth_limit=depth_limit))


def lint_analysis(dfg, steps: dict[str, int], binding, net=None,
                  placement=None, max_markings=None) -> LintReport:
    """Run the analysis-layer rules (RAC/EQV) over one design point.

    Args:
        dfg: the data-flow graph.
        steps: the schedule, op_id -> control step.
        binding: the module/register allocation.
        net: the control Petri net; derived from the schedule when None.
        placement: op_id -> control place for hand-built nets; derived
            from ``steps`` (``S<step>``) when None.
        max_markings: bound on the reachability exploration.

    When an analysis cannot even be constructed (incomplete schedule,
    unexplorable net) the skip is reported as ``LNT001``.
    """
    ctx = LintContext(name=dfg.name, dfg=dfg, steps=steps, binding=binding,
                      net=net, placement=placement)
    if max_markings is not None:
        ctx.cache["analysis.max_markings"] = max_markings
    return run_analysis_layer(ctx)


def run_analysis_layer(ctx: LintContext) -> LintReport:
    """Run the analysis layer on a prepared context, reporting skips.

    Shared with :func:`repro.analysis.verify.analyze_design`, which
    inspects the same context afterwards to recover the memoised
    analysis objects.
    """
    report = run_layer("analysis", ctx)
    for stage, key in (("concurrency analysis", "analysis.concurrency"),
                       ("equivalence certificate", "analysis.certificate")):
        reason = ctx.cache.get(f"{key}_error")
        if ctx.cache.get(key) is None and reason:
            report.add(_pipeline_failure(ctx.name, stage, reason))
    return report


# ----------------------------------------------------------------------
# Aggregate checkers
# ----------------------------------------------------------------------
def lint_design(design, depth_limit: float = 8.0,
                bits: int = 8) -> LintReport:
    """Audit one ETPN design point across every derivable layer.

    Checks the schedule, the binding, the value-flow facts, the control
    Petri net, the MHP/equivalence analyses and the testability smells
    of the data path.  Derivation failures become ``LNT001``
    diagnostics.
    """
    dfg = design.dfg
    report = lint_schedule(dfg, design.steps)
    report.extend(lint_binding(dfg, design.steps, design.binding))
    # One shared context for the whole-design layers: the structural
    # certificate is computed once (NET007 reuses it to skip its
    # reachability BFS on provably-safe nets) and the dataflow
    # certificate likewise serves every DFA rule in one analysis.
    shared = LintContext(name=dfg.name, dfg=dfg, bits=bits,
                         steps=design.steps, binding=design.binding,
                         net=design.control_net)
    try:
        report.extend(run_layer("dataflow", shared))
    except Exception as exc:
        report.add(_pipeline_failure(dfg.name, "dataflow analysis", exc))
    try:
        report.extend(run_layer("petri", shared))
    except Exception as exc:
        report.add(_pipeline_failure(dfg.name, "control net", exc))
    try:
        report.extend(run_layer("structural", shared))
    except Exception as exc:
        report.add(_pipeline_failure(dfg.name, "structural analysis", exc))
    try:
        report.extend(run_analysis_layer(shared))
    except Exception as exc:
        report.add(_pipeline_failure(dfg.name, "concurrency analysis", exc))
    try:
        report.extend(lint_datapath(design.datapath, depth_limit))
    except Exception as exc:
        report.add(_pipeline_failure(dfg.name, "data path", exc))
    return report


def lint_pipeline(dfg, bits: int = 8, gates: bool = True,
                  depth_limit: float = 8.0) -> LintReport:
    """Audit the full synthesis pipeline seeded from ``dfg``.

    Lints the DFG; when it is error-free, builds the default design
    (ASAP schedule, one-to-one allocation) and lints it, then expands
    the design to RTL and gates and lints the netlist.

    Args:
        dfg: the behavioural data-flow graph.
        bits: data-path width used for the gate-level expansion.
        gates: set False to skip the (comparatively slow) gate layer.
        depth_limit: threshold for the TST002 deep-path rule.
    """
    report = lint_dfg(dfg)
    if report.has_errors:
        return report  # downstream views are not constructible

    from ..etpn.from_dfg import default_design
    try:
        design = default_design(dfg)
    except Exception as exc:
        report.add(_pipeline_failure(dfg.name, "default design", exc))
        return report
    report.extend(lint_design(design, depth_limit, bits=bits))

    if gates and not report.has_errors:
        from ..gates.expand import expand_to_gates
        from ..rtl.generate import generate_rtl
        try:
            netlist = expand_to_gates(generate_rtl(design, bits))
        except Exception as exc:
            report.add(_pipeline_failure(dfg.name, "gate netlist", exc))
            return report
        # Gates and timing share one context: both walk the same
        # netlist, and the memoised timing report serves all TIM rules.
        gate_ctx = LintContext(name=netlist.name, netlist=netlist,
                               bits=bits)
        report.extend(run_layer("gates", gate_ctx))
        try:
            report.extend(run_layer("timing", gate_ctx))
        except Exception as exc:
            report.add(_pipeline_failure(dfg.name, "timing analysis", exc))
    return report
