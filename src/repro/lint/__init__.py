"""repro.lint — unified design-rule checking across every IR layer.

A Verilator-style lint pass for the synthesis pipeline: instead of the
raise-on-first-violation validators scattered through the library, the
rules here audit a whole representation in one pass and report *every*
finding as a :class:`Diagnostic` with a stable code, a severity and a
fix hint.  The legacy validators (``validate_dfg``,
``validate_binding``, ``PetriNet.validate``,
``GateNetlist.check_complete``) now delegate to these rules, so the two
APIs can never disagree.

Layers and code prefixes::

    DFG  data-flow graph          SCH  schedule       BND  binding
    NET  control Petri net        GAT  gate netlist   TST  testability
    STR  structural invariants    RAC  concurrency races
    EQV  value-flow equivalence   LNT  pipeline-stage failure
    DFA  abstract-interpretation value facts
    TIM  static timing analysis

See ``repro-hlts lint --list-rules`` or DESIGN.md for the full table.
"""

from .diagnostic import Diagnostic, LintReport, Severity
from .registry import (LAYERS, LintContext, Rule, all_rules, get_rule, rule,
                       rules_for_layer, run_layer)
from .runner import (PIPELINE_FAILURE_CODE, lint_analysis, lint_binding,
                     lint_dataflow, lint_datapath, lint_design, lint_dfg,
                     lint_netlist, lint_petri, lint_pipeline, lint_schedule,
                     lint_structural, lint_timing, run_analysis_layer)

__all__ = [
    "Diagnostic", "LintReport", "Severity",
    "LAYERS", "LintContext", "Rule", "all_rules", "get_rule", "rule",
    "rules_for_layer", "run_layer",
    "PIPELINE_FAILURE_CODE", "lint_analysis", "lint_binding",
    "lint_dataflow", "lint_datapath", "lint_design", "lint_dfg",
    "lint_netlist", "lint_petri", "lint_pipeline", "lint_schedule",
    "lint_structural", "lint_timing", "run_analysis_layer",
]
