"""Dataflow-layer design rules (codes ``DFA001``-``DFA006``).

These rules consume the abstract-interpretation facts of
:mod:`repro.analysis.dataflow`: value intervals and known bits per
operation, operand position and variable.  Where the ``DFG`` rules
check graph shape, these check *value* properties — overflow that must
happen, results that cannot vary, comparison outcomes that are already
decided, and word widths the behaviour provably never fills.

The certificate is computed once per
:class:`~repro.lint.registry.LintContext` (at the context's ``bits``)
and memoised in ``ctx.cache`` under :data:`CERTIFICATE_KEY`, mirroring
the structural layer; ``DFA006`` re-verifies the same certificate by
random concrete simulation, so an engine bug surfaces as an ERROR
finding instead of silently skewing the other rules.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.dataflow import DataflowCertificate, analyze_dataflow
from ..dfg.ops import OpKind, is_comparison
from ..rtl.semantics import mask
from .diagnostic import Severity
from .registry import Emit, LintContext, rule

#: ``ctx.cache`` key holding the memoised dataflow certificate.
CERTIFICATE_KEY = "dataflow.certificate"

#: At most this many findings per multi-witness rule.
MAX_FINDINGS = 8

#: Vectors DFA006 simulates; small because lint runs interactively and
#: the CLI/bench paths re-check with the full 64+ elsewhere.
CHECK_VECTORS = 16


def cached_dataflow(ctx: LintContext) -> Optional[DataflowCertificate]:
    """The context's memoised dataflow certificate (None when the
    context has no DFG or the analysis fails)."""
    if CERTIFICATE_KEY not in ctx.cache:
        result: Optional[DataflowCertificate] = None
        if ctx.dfg is not None and len(ctx.dfg):
            try:
                result = analyze_dataflow(ctx.dfg, ctx.bits)
            except Exception:  # malformed DFGs are DFG-layer findings
                result = None
        ctx.cache[CERTIFICATE_KEY] = result
    return ctx.cache[CERTIFICATE_KEY]


@rule("DFA001", layer="dataflow", severity=Severity.WARNING,
      title="provable overflow")
def check_overflow(ctx: LintContext, emit: Emit) -> None:
    """An arithmetic operation wraps (or truncates) on *every* input
    the analysis admits — the declared width cannot hold any result."""
    cert = cached_dataflow(ctx)
    if cert is None:
        return
    m = mask(cert.bits)
    findings = 0
    for op_id in ctx.dfg.op_order:
        op = ctx.dfg.operation(op_id)
        operands = cert.op_operands.get(op_id, ())
        if len(operands) < 2:
            continue
        a, b = operands[0], operands[1]
        reason = ""
        if op.kind is OpKind.ADD and a.lo + b.lo > m:
            reason = f"minimum sum {a.lo + b.lo} exceeds {m}"
        elif op.kind is OpKind.SUB and a.hi < b.lo:
            reason = f"maximum minuend {a.hi} is below subtrahend {b.lo}"
        elif op.kind is OpKind.MUL and a.lo * b.lo > m:
            reason = f"minimum product {a.lo * b.lo} exceeds {m}"
        elif op.kind is OpKind.SHL and b.is_const \
                and a.lo << (b.const_value % cert.bits) > m:
            reason = f"minimum shifted value exceeds {m}"
        if reason:
            findings += 1
            if findings > MAX_FINDINGS:
                break
            emit(f"{ctx.name}: {op_id} ({op.kind}) always wraps at "
                 f"{cert.bits} bits: {reason}",
                 location=op_id,
                 hint="widen the datapath or rescale the inputs; the "
                      "wrapped result is almost certainly unintended")


@rule("DFA002", layer="dataflow", severity=Severity.WARNING,
      title="always-constant operation result")
def check_constant_ops(ctx: LintContext, emit: Emit) -> None:
    """A non-trivial operation's result is proved constant although its
    operands are not all literals — the hardware computes a wire."""
    cert = cached_dataflow(ctx)
    if cert is None:
        return
    findings = 0
    for op_id, value in cert.constant_ops().items():
        op = ctx.dfg.operation(op_id)
        if op.kind is OpKind.MOVE or is_comparison(op.kind):
            continue  # MOVE is a wire by design; DFA003 owns comparisons
        operands = cert.op_operands.get(op_id, ())
        if all(f.is_const for f in operands):
            continue  # a constant-folding (DFG-layer) concern instead
        findings += 1
        if findings > MAX_FINDINGS:
            break
        emit(f"{ctx.name}: {op_id} ({op.kind}) always computes "
             f"{value} for every admitted input",
             location=op_id,
             hint="replace the operation with the constant and free "
                  "its module binding")


@rule("DFA003", layer="dataflow", severity=Severity.WARNING,
      title="comparison outcome decided statically")
def check_decided_comparisons(ctx: LintContext, emit: Emit) -> None:
    """A comparison is proved always-true or always-false: one branch
    of the control part is unreachable."""
    cert = cached_dataflow(ctx)
    if cert is None:
        return
    findings = 0
    for op_id, value in cert.constant_ops().items():
        op = ctx.dfg.operation(op_id)
        if not is_comparison(op.kind):
            continue
        findings += 1
        if findings > MAX_FINDINGS:
            break
        outcome = "true" if value else "false"
        if op.dst is not None and op.dst == ctx.dfg.loop_condition:
            detail = ("the loop never terminates" if value
                      else "the loop body runs at most once")
            hint = "a loop guard that cannot flip is a behavioural bug"
        else:
            detail = "the guarded control branch is unreachable"
            hint = "remove the comparison or fix the operand ranges"
        emit(f"{ctx.name}: {op_id} ({op.kind}) is always {outcome}; "
             f"{detail}", location=op_id, hint=hint)


@rule("DFA004", layer="dataflow", severity=Severity.INFO,
      title="dead bits feed an output")
def check_dead_output_bits(ctx: LintContext, emit: Emit) -> None:
    """Bit positions of a primary output are proved constant: the
    consumer receives bits that carry no information."""
    cert = cached_dataflow(ctx)
    if cert is None:
        return
    findings = 0
    for var in ctx.dfg.outputs():
        fact = cert.var_facts.get(var.name)
        if fact is None or fact.known_mask == 0 or fact.is_const:
            continue  # fully-constant outputs are DFA002 territory
        findings += 1
        if findings > MAX_FINDINGS:
            break
        emit(f"{ctx.name}: output {var.name!r} has "
             f"{fact.known_bit_count()} of {cert.bits} bits proved "
             f"constant (mask {fact.known_mask:#x})",
             location=var.name,
             hint="the constant bits need no routing; width narrowing "
                  "exploits this automatically")


@rule("DFA005", layer="dataflow", severity=Severity.INFO,
      title="datapath width over-provisioned")
def check_over_provisioned(ctx: LintContext, emit: Emit) -> None:
    """No signal in the whole design ever fills the declared word
    width — every module and register is wider than required."""
    cert = cached_dataflow(ctx)
    if cert is None:
        return
    required = cert.max_required_width()
    if required >= cert.bits:
        return
    emit(f"{ctx.name}: datapath declared at {cert.bits} bits but the "
         f"analysis proves {required} bits suffice everywhere",
         hint="run width narrowing (repro-hlts dataflow) for the "
              "area saving")


@rule("DFA006", layer="dataflow", severity=Severity.ERROR,
      title="certificate self-check failure")
def check_certificate(ctx: LintContext, emit: Emit) -> None:
    """The certificate's facts fail independent re-simulation — an
    engine bug, never a property of the design."""
    cert = cached_dataflow(ctx)
    if cert is None or ctx.dfg is None:
        return
    for problem in cert.check(ctx.dfg, vectors=CHECK_VECTORS)[:MAX_FINDINGS]:
        emit(f"{ctx.name}: dataflow certificate is unsound: {problem}",
             hint="report this; a transfer function admitted too "
                  "little — the concrete value escaped its abstraction")
