"""Diagnostics: the unit of output of every design-rule check.

A :class:`Diagnostic` is one finding — a stable rule code (``DFG003``,
``NET002``, ...), a severity, the offending location inside the design
and a human-readable message with an optional fix hint.  Checkers never
raise on a finding; they collect :class:`Diagnostic` objects into a
:class:`LintReport` so a single run surfaces *every* violation, the way
Verilator or ruff report source problems.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings make the design illegal (the raise-on-violation
    validators reject it); ``WARNING`` findings are legal but suspect
    (dead logic, testability smells); ``INFO`` findings are stylistic.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Sort key: errors first."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One design-rule finding.

    Attributes:
        code: stable rule identifier, e.g. ``"DFG003"``.
        severity: how bad the finding is.
        layer: which intermediate representation it was found in
            (``dfg``, ``sched``, ``binding``, ``petri``, ``gates``,
            ``testability`` or ``pipeline``).
        location: the offending element (an op id, place id, module id,
            gate id ...), empty for whole-design findings.
        message: human-readable description of the violation.
        hint: optional suggestion for fixing it.
    """

    code: str
    severity: Severity
    layer: str
    location: str
    message: str
    hint: str = ""

    def format(self) -> str:
        """One text line, ruff-style: severity, code, location, message."""
        where = f" at {self.location}" if self.location else ""
        hint = f" (hint: {self.hint})" if self.hint else ""
        return (f"{self.severity.value:<7} {self.code} [{self.layer}]"
                f"{where}: {self.message}{hint}")

    def to_dict(self) -> dict[str, str]:
        """JSON-serialisable form (used by ``repro-hlts lint --format json``)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "layer": self.layer,
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass
class LintReport:
    """A deduplicated, deterministically-ordered collection of findings.

    Identical diagnostics (all fields equal) are recorded once, no
    matter how many runs fold into the report, and :meth:`sorted` uses a
    total key — so rendering a report (text or JSON) is byte-stable.
    """

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._seen: set[Diagnostic] = set(self.diagnostics)

    # ------------------------------------------------------------------
    def add(self, diagnostic: Diagnostic) -> None:
        """Record one finding (exact duplicates are dropped)."""
        if diagnostic in self._seen:
            return
        self._seen.add(diagnostic)
        self.diagnostics.append(diagnostic)

    def extend(self, other: "LintReport") -> "LintReport":
        """Fold another report's findings into this one."""
        for diagnostic in other.diagnostics:
            self.add(diagnostic)
        return self

    # ------------------------------------------------------------------
    def errors(self) -> list[Diagnostic]:
        """Only the error-severity findings."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self) -> list[Diagnostic]:
        """Only the warning-severity findings."""
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def infos(self) -> list[Diagnostic]:
        """Only the info-severity findings."""
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def has_errors(self) -> bool:
        """True when any finding is an error."""
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def ok(self, strict: bool = False) -> bool:
        """True when the design passes: no errors (strict: no warnings)."""
        if strict:
            return not self.diagnostics or all(
                d.severity is Severity.INFO for d in self.diagnostics)
        return not self.has_errors

    def codes(self) -> list[str]:
        """Sorted distinct rule codes present in the report."""
        return sorted({d.code for d in self.diagnostics})

    def by_layer(self) -> dict[str, list[Diagnostic]]:
        """Group findings by IR layer."""
        grouping: dict[str, list[Diagnostic]] = {}
        for diag in self.sorted():
            grouping.setdefault(diag.layer, []).append(diag)
        return grouping

    def sorted(self) -> list[Diagnostic]:
        """Findings under a total order: severity, layer, code, location.

        Message and hint break any remaining ties, so two runs over the
        same design always render in exactly the same order.
        """
        return sorted(self.diagnostics,
                      key=lambda d: (d.severity.rank, d.layer, d.code,
                                     d.location, d.message, d.hint))

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Headline counts, e.g. ``"2 errors, 1 warning"``."""
        parts = []
        for label, found in (("error", self.errors()),
                             ("warning", self.warnings()),
                             ("info", self.infos())):
            if found:
                plural = "s" if len(found) != 1 else ""
                parts.append(f"{len(found)} {label}{plural}")
        return ", ".join(parts) if parts else "no problems"

    def format_text(self) -> str:
        """Multi-line text rendering of every finding plus the summary."""
        lines = [d.format() for d in self.sorted()]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serialisable form of the whole report."""
        return {
            "diagnostics": [d.to_dict() for d in self.sorted()],
            "summary": self.summary(),
            "ok": self.ok(),
        }

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"LintReport({self.summary()})"
