"""The design-rule registry.

Rules self-register through the :func:`rule` decorator, grouped by the
intermediate representation (*layer*) they inspect.  A rule is a
function ``check(ctx, emit)``: it reads whatever slice of the design it
needs from the :class:`LintContext` and reports findings through
``emit`` — it never raises.  The runner (:mod:`repro.lint.runner`)
builds the context for each layer and collects every emission into a
:class:`~repro.lint.diagnostic.LintReport`.

Codes are stable and unique: ``DFG``/``DFA``/``SCH``/``BND``/``NET``/
``STR``/``GAT``/``TIM``/``TST`` prefixes map to the dfg, dataflow,
schedule, binding, Petri-net, structural-invariant, gate, timing and
testability layers (see DESIGN.md for the full table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .diagnostic import Diagnostic, LintReport, Severity

#: The checkable layers, in pipeline order.
LAYERS = ("dfg", "dataflow", "sched", "binding", "petri", "structural",
          "analysis", "gates", "timing", "testability")


@dataclass
class LintContext:
    """Everything a rule may inspect; runners fill the relevant slots.

    Attributes:
        name: name of the design under inspection (used in messages).
        dfg: the data-flow graph (dfg/dataflow/sched/binding/analysis
            layers).
        bits: word width the dataflow layer analyses values at.
        steps: the schedule, op_id -> control step (sched/binding).
        binding: the allocation (binding/analysis layers).
        net: the control Petri net (petri/analysis layers).
        netlist: the gate-level netlist (gates/timing layers).
        datapath: the structural data path (testability layer).
        depth_limit: sequential C/O depth above which TST002 fires.
        period: clock period the timing layer audits against; None
            derives the library default (at which findings mean the
            netlist drifted from the model the allocator priced).
        placement: op_id -> control place, for analysis rules checking a
            hand-built control part; derived from ``steps`` when None.
        cache: scratch space shared by the rules of one run, used to
            memoise expensive whole-design analyses.
    """

    name: str = ""
    dfg: Any = None
    bits: int = 8
    steps: Optional[dict[str, int]] = None
    binding: Any = None
    net: Any = None
    netlist: Any = None
    datapath: Any = None
    depth_limit: float = 8.0
    period: Optional[float] = None
    placement: Optional[dict[str, str]] = None
    cache: dict[str, Any] = field(default_factory=dict)


#: Signature of a rule body: inspect ``ctx``, report through ``emit``.
Emit = Callable[..., None]
CheckFunc = Callable[[LintContext, Emit], None]


@dataclass(frozen=True)
class Rule:
    """One registered design rule."""

    code: str
    layer: str
    severity: Severity
    title: str
    func: CheckFunc = field(repr=False)

    @property
    def doc(self) -> str:
        """First line of the rule body's docstring."""
        text = (self.func.__doc__ or "").strip()
        return text.splitlines()[0] if text else self.title


_RULES: dict[str, Rule] = {}


def rule(code: str, *, layer: str, severity: Severity,
         title: str) -> Callable[[CheckFunc], CheckFunc]:
    """Register a design rule under a stable ``code``.

    Args:
        code: unique identifier, e.g. ``"DFG003"``.
        layer: one of :data:`LAYERS`.
        severity: default severity of the rule's findings.
        title: short human-readable name shown in rule listings.

    Raises:
        ValueError: duplicate code or unknown layer (programming errors
            caught at import time).
    """
    if layer not in LAYERS:
        raise ValueError(f"rule {code}: unknown layer {layer!r}")

    def decorate(func: CheckFunc) -> CheckFunc:
        if code in _RULES:
            raise ValueError(f"duplicate rule code {code!r}")
        _RULES[code] = Rule(code, layer, severity, title, func)
        return func

    return decorate


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by code."""
    _load_builtin_rules()
    return [_RULES[c] for c in sorted(_RULES)]


def rules_for_layer(layer: str) -> list[Rule]:
    """The registered rules of one layer, sorted by code."""
    _load_builtin_rules()
    return [r for r in all_rules() if r.layer == layer]


def get_rule(code: str) -> Rule:
    """Look up a rule by code.

    Raises:
        KeyError: unknown code.
    """
    _load_builtin_rules()
    return _RULES[code]


def run_layer(layer: str, ctx: LintContext) -> LintReport:
    """Run every rule of ``layer`` against ``ctx`` and collect findings."""
    report = LintReport()
    for rule_ in rules_for_layer(layer):
        rule_.func(ctx, _emitter(rule_, report))
    return report


def _emitter(rule_: Rule, report: LintReport) -> Emit:
    """Bind a rule's code/severity/layer into a tidy ``emit`` callable."""

    def emit(message: str, location: str = "", hint: str = "",
             severity: Severity | None = None) -> None:
        report.add(Diagnostic(code=rule_.code,
                              severity=severity or rule_.severity,
                              layer=rule_.layer, location=location,
                              message=message, hint=hint))

    return emit


_LOADED = False


def _load_builtin_rules() -> None:
    """Import the built-in rule modules exactly once (self-registration)."""
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    from . import rules_analysis  # noqa: F401
    from . import rules_binding  # noqa: F401
    from . import rules_dataflow  # noqa: F401
    from . import rules_dfg  # noqa: F401
    from . import rules_gates  # noqa: F401
    from . import rules_petri  # noqa: F401
    from . import rules_sched  # noqa: F401
    from . import rules_structural  # noqa: F401
    from . import rules_testability  # noqa: F401
    from . import rules_timing  # noqa: F401
