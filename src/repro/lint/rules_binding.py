"""Binding-layer design rules (codes ``BND001``-``BND007``).

These subsume the raise-on-first-violation checks of
:func:`repro.alloc.binding.validate_binding` (which now delegates here)
and add stale-entry and wasted-register warnings the old validator
could not express.
"""

from __future__ import annotations

from ..dfg.lifetime import variable_lifetimes
from ..dfg.ops import unit_class
from .diagnostic import Severity
from .registry import Emit, LintContext, rule


@rule("BND001", layer="binding", severity=Severity.ERROR,
      title="unbound operation")
def check_ops_bound(ctx: LintContext, emit: Emit) -> None:
    """Every operation must be bound to a functional module."""
    for op_id in sorted(set(ctx.dfg.operations) - set(ctx.binding.module_of)):
        emit(f"unbound operation {op_id}", location=op_id)


@rule("BND002", layer="binding", severity=Severity.ERROR,
      title="unbound variable")
def check_variables_bound(ctx: LintContext, emit: Emit) -> None:
    """Every register-needing variable must be bound to a register."""
    needed = {n for n, v in ctx.dfg.variables.items() if v.needs_register()}
    for name in sorted(needed - set(ctx.binding.register_of)):
        emit(f"unbound variable {name!r}", location=name)


@rule("BND003", layer="binding", severity=Severity.ERROR,
      title="module mixes unit classes")
def check_module_classes(ctx: LintContext, emit: Emit) -> None:
    """All operations sharing a module must run on one unit class."""
    dfg = ctx.dfg
    for module, ops in ctx.binding.modules().items():
        classes = {unit_class(dfg.operations[o].kind)
                   for o in ops if o in dfg.operations}
        if len(classes) > 1:
            emit(f"module {module!r} mixes unit classes {classes}",
                 location=module,
                 hint="only compatible operations may share a module")


@rule("BND004", layer="binding", severity=Severity.ERROR,
      title="module step conflict")
def check_module_steps(ctx: LintContext, emit: Emit) -> None:
    """Operations sharing a module must occupy distinct control steps."""
    steps = ctx.steps or {}
    for module, ops in ctx.binding.modules().items():
        seen: dict[int, str] = {}
        for op_id in ops:
            if op_id not in steps:
                continue  # SCH001 reports missing steps
            step = steps[op_id]
            if step in seen:
                emit(f"module {module!r}: {seen[step]} and {op_id} both "
                     f"scheduled in step {step}", location=module,
                     hint="reschedule one of the operations")
            else:
                seen[step] = op_id


@rule("BND005", layer="binding", severity=Severity.ERROR,
      title="register lifetime overlap")
def check_register_lifetimes(ctx: LintContext, emit: Emit) -> None:
    """Variables sharing a register must have disjoint lifetimes."""
    dfg, steps = ctx.dfg, ctx.steps or {}
    if set(dfg.operations) - set(steps):
        return  # lifetimes undefined until the schedule is complete
    lifetimes = variable_lifetimes(dfg, steps)
    for register, variables in ctx.binding.registers().items():
        present = [lifetimes[v] for v in variables if v in lifetimes]
        for i, a in enumerate(present):
            for b in present[i + 1:]:
                if a.overlaps(b):
                    emit(f"register {register!r}: lifetimes of "
                         f"{a.variable} {a} and {b.variable} {b} overlap",
                         location=register,
                         hint="reschedule or unmerge the registers")


@rule("BND006", layer="binding", severity=Severity.WARNING,
      title="register for a register-free variable")
def check_condition_registers(ctx: LintContext, emit: Emit) -> None:
    """Condition variables feed the controller combinationally and do
    not need a register."""
    for name in sorted(ctx.binding.register_of):
        variable = ctx.dfg.variables.get(name)
        if variable is not None and not variable.needs_register():
            emit(f"variable {name!r} is a condition but is bound to "
                 f"register {ctx.binding.register_of[name]!r}",
                 location=name, hint="conditions are controller inputs")


@rule("BND007", layer="binding", severity=Severity.WARNING,
      title="stale binding entry")
def check_stale_entries(ctx: LintContext, emit: Emit) -> None:
    """Binding entries for operations or variables the DFG does not
    contain are left-overs from a transformed design."""
    for op_id in sorted(set(ctx.binding.module_of) - set(ctx.dfg.operations)):
        emit(f"binding names unknown operation {op_id}", location=op_id)
    for name in sorted(set(ctx.binding.register_of) - set(ctx.dfg.variables)):
        emit(f"binding names unknown variable {name!r}", location=name)
