"""DFG-layer design rules (codes ``DFG001``-``DFG012``).

The error rules reproduce, collect-all style, exactly the invariants the
raise-on-first-violation validator (:func:`repro.dfg.validate.validate_dfg`)
used to enforce — that validator now delegates here.  The warning rules
flag legal-but-suspect structure the old validator could not express:
dead operations, write-only variables and unused primary inputs.
"""

from __future__ import annotations

from ..dfg.ops import arity, is_comparison
from .diagnostic import Severity
from .registry import Emit, LintContext, rule


@rule("DFG001", layer="dfg", severity=Severity.ERROR, title="empty DFG")
def check_non_empty(ctx: LintContext, emit: Emit) -> None:
    """The graph must contain at least one operation."""
    if not ctx.dfg.operations:
        emit(f"{ctx.dfg.name}: empty DFG",
             hint="a behaviour needs at least one operation")


@rule("DFG002", layer="dfg", severity=Severity.ERROR,
      title="no primary inputs")
def check_has_inputs(ctx: LintContext, emit: Emit) -> None:
    """At least one variable must carry a primary-input value."""
    dfg = ctx.dfg
    if dfg.operations and not any(v.is_input for v in dfg.variables.values()):
        emit(f"{dfg.name}: no primary inputs",
             hint="every data path is driven from input ports")


@rule("DFG003", layer="dfg", severity=Severity.ERROR,
      title="unknown source variable")
def check_sources_exist(ctx: LintContext, emit: Emit) -> None:
    """Every operand variable must exist in the variable table."""
    dfg = ctx.dfg
    for op in dfg.operations.values():
        for src in op.src_variables():
            if src not in dfg.variables:
                emit(f"{dfg.name}: {op.op_id} reads unknown variable {src!r}",
                     location=op.op_id)


@rule("DFG004", layer="dfg", severity=Severity.ERROR,
      title="condition variable read as data")
def check_conditions_not_data(ctx: LintContext, emit: Emit) -> None:
    """Condition variables feed the controller, never arithmetic."""
    dfg = ctx.dfg
    for op in dfg.operations.values():
        for src in op.src_variables():
            variable = dfg.variables.get(src)
            if variable is not None and variable.is_condition:
                emit(f"{dfg.name}: {op.op_id} reads condition variable "
                     f"{src!r} as data", location=op.op_id)


@rule("DFG005", layer="dfg", severity=Severity.ERROR,
      title="unknown destination variable")
def check_destinations_exist(ctx: LintContext, emit: Emit) -> None:
    """Every destination must exist in the variable table."""
    dfg = ctx.dfg
    for op in dfg.operations.values():
        if op.dst is not None and op.dst not in dfg.variables:
            emit(f"{dfg.name}: {op.op_id} writes unknown variable "
                 f"{op.dst!r}", location=op.op_id)


@rule("DFG006", layer="dfg", severity=Severity.ERROR,
      title="non-comparison writes a condition")
def check_condition_writers(ctx: LintContext, emit: Emit) -> None:
    """Only comparisons may define condition variables."""
    dfg = ctx.dfg
    for op in dfg.operations.values():
        if op.dst is None:
            continue
        variable = dfg.variables.get(op.dst)
        if (variable is not None and variable.is_condition
                and not is_comparison(op.kind)):
            emit(f"{dfg.name}: {op.op_id} writes condition variable "
                 f"{op.dst!r} but is not a comparison", location=op.op_id)


@rule("DFG007", layer="dfg", severity=Severity.ERROR,
      title="bad loop condition")
def check_loop_condition(ctx: LintContext, emit: Emit) -> None:
    """A declared loop condition must name a condition variable."""
    dfg = ctx.dfg
    if dfg.loop_condition is None:
        return
    if dfg.loop_condition not in dfg.variables:
        emit(f"{dfg.name}: unknown loop condition {dfg.loop_condition!r}")
    elif not dfg.variables[dfg.loop_condition].is_condition:
        emit(f"{dfg.name}: loop condition {dfg.loop_condition!r} is not "
             f"a condition")


@rule("DFG008", layer="dfg", severity=Severity.ERROR,
      title="dependence cycle")
def check_acyclic(ctx: LintContext, emit: Emit) -> None:
    """The flow-dependence relation must be acyclic (loop back-edges
    live in the control part, not in the data-flow graph)."""
    for node in find_cycle_nodes(ctx.dfg):
        emit(f"{ctx.dfg.name}: dependence cycle through {node}",
             location=node)


@rule("DFG009", layer="dfg", severity=Severity.ERROR,
      title="malformed operation")
def check_operation_shape(ctx: LintContext, emit: Emit) -> None:
    """Operand counts must match the operation's arity, and only
    comparisons may omit a destination."""
    for op in ctx.dfg.operations.values():
        expected = arity(op.kind)
        if len(op.srcs) != expected:
            emit(f"operation {op.op_id}: {op.kind} expects {expected} "
                 f"operands, got {len(op.srcs)}", location=op.op_id)
        if op.dst is None and not is_comparison(op.kind):
            emit(f"operation {op.op_id}: only comparisons may omit dst",
                 location=op.op_id)


@rule("DFG010", layer="dfg", severity=Severity.WARNING,
      title="dead operation")
def check_dead_operations(ctx: LintContext, emit: Emit) -> None:
    """An operation whose result is never read (and is not the final
    definition of a primary output) is dead hardware."""
    dfg = ctx.dfg
    for op in dfg.operations.values():
        if op.dst is None:
            continue
        variable = dfg.variables.get(op.dst)
        if variable is None or variable.is_condition:
            continue
        if any(e.kind == "flow" for e in dfg.successors(op.op_id)):
            continue
        defs = dfg.defs_of(op.dst)
        if variable.is_output and defs and defs[-1] == op.op_id:
            continue
        emit(f"{dfg.name}: {op.op_id} computes {op.dst!r} but the value "
             f"is never used", location=op.op_id,
             hint="remove the operation or declare the variable an output")


@rule("DFG011", layer="dfg", severity=Severity.WARNING,
      title="write-only variable")
def check_write_only_variables(ctx: LintContext, emit: Emit) -> None:
    """A non-output variable that is defined but never read wastes a
    register."""
    dfg = ctx.dfg
    for name in sorted(dfg.variables):
        variable = dfg.variables[name]
        if variable.is_output or variable.is_condition or variable.is_input:
            continue
        if dfg.defs_of(name) and not dfg.uses_of(name):
            emit(f"{dfg.name}: variable {name!r} is written but never read",
                 location=name,
                 hint="dead-code elimination would remove it")


@rule("DFG012", layer="dfg", severity=Severity.WARNING,
      title="unused primary input")
def check_unused_inputs(ctx: LintContext, emit: Emit) -> None:
    """A primary input no operation reads is a dangling port."""
    dfg = ctx.dfg
    for name in sorted(dfg.variables):
        variable = dfg.variables[name]
        if variable.is_input and not dfg.uses_of(name):
            emit(f"{dfg.name}: input {name!r} is never read", location=name,
                 hint="drop the port or wire it into the behaviour")


def find_cycle_nodes(dfg) -> list[str]:
    """Nodes through which a dependence cycle was detected (colouring DFS).

    Shared implementation: the DFG validator's acyclicity check and rule
    DFG008 both use it.  Returns one witness node per cycle found.
    """
    white, grey, black = 0, 1, 2
    colour = {op_id: white for op_id in dfg.operations}
    witnesses: list[str] = []
    for root in dfg.operations:
        if colour[root] != white:
            continue
        stack: list[tuple[str, int]] = [(root, 0)]
        colour[root] = grey
        while stack:
            node, idx = stack[-1]
            succs = dfg.successors(node)
            if idx < len(succs):
                stack[-1] = (node, idx + 1)
                child = succs[idx].dst
                if colour[child] == grey:
                    if child not in witnesses:
                        witnesses.append(child)
                elif colour[child] == white:
                    colour[child] = grey
                    stack.append((child, 0))
            else:
                colour[node] = black
                stack.pop()
    return witnesses
