"""Schedule-layer design rules (codes ``SCH001``-``SCH005``).

The precedence rule reuses the same implementation the raise-style
checker (:func:`repro.sched.constraints.check_precedence`) is built on,
so the two can never drift apart.
"""

from __future__ import annotations

from ..sched.constraints import precedence_violations
from ..sched.schedule import schedule_length
from .diagnostic import Severity
from .registry import Emit, LintContext, rule


@rule("SCH001", layer="sched", severity=Severity.ERROR,
      title="unscheduled operation")
def check_complete(ctx: LintContext, emit: Emit) -> None:
    """Every operation of the DFG must be assigned a control step."""
    for op_id in sorted(set(ctx.dfg.operations) - set(ctx.steps)):
        emit(f"{ctx.dfg.name}: operation {op_id} has no control step",
             location=op_id)


@rule("SCH002", layer="sched", severity=Severity.ERROR,
      title="unknown scheduled operation")
def check_no_stale_ops(ctx: LintContext, emit: Emit) -> None:
    """The schedule must not mention operations absent from the DFG."""
    for op_id in sorted(set(ctx.steps) - set(ctx.dfg.operations)):
        emit(f"{ctx.dfg.name}: schedule names unknown operation {op_id}",
             location=op_id,
             hint="stale entry from a transformed design?")


@rule("SCH003", layer="sched", severity=Severity.ERROR,
      title="negative control step")
def check_non_negative(ctx: LintContext, emit: Emit) -> None:
    """Control steps are counted from 0."""
    for op_id in sorted(ctx.steps):
        if ctx.steps[op_id] < 0:
            emit(f"{ctx.dfg.name}: operation {op_id} scheduled in negative "
                 f"step {ctx.steps[op_id]}", location=op_id)


@rule("SCH004", layer="sched", severity=Severity.ERROR,
      title="precedence violation")
def check_precedence_edges(ctx: LintContext, emit: Emit) -> None:
    """Every dependence edge needs its minimum step gap (flow/output
    edges need the producer's delay; anti edges allow sharing a step)."""
    if set(ctx.dfg.operations) - set(ctx.steps):
        return  # incomplete schedules are reported by SCH001 instead
    for violation in precedence_violations(ctx.dfg, ctx.steps):
        edge = violation.edge
        emit(f"{ctx.dfg.name}: {edge.kind} dependence "
             f"{edge.src}@{violation.src_step} -> "
             f"{edge.dst}@{violation.dst_step} needs a gap "
             f">= {violation.required_gap}", location=edge.dst,
             hint="reschedule the consumer later")


@rule("SCH005", layer="sched", severity=Severity.INFO,
      title="empty control step")
def check_no_gaps(ctx: LintContext, emit: Emit) -> None:
    """Steps nothing executes in only lengthen the schedule (the paper's
    dummy steps are legal, hence informational)."""
    if not ctx.steps:
        return
    used = {s for s in ctx.steps.values() if s >= 0}
    for step in range(schedule_length(ctx.steps)):
        if step not in used:
            emit(f"{ctx.dfg.name}: control step {step} is empty",
                 location=f"step {step}",
                 hint="compact() removes empty steps")
