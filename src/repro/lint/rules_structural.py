"""Structural-invariant-layer design rules (codes ``STR001``-``STR006``).

The structural layer audits the control net with the enumeration-free
engines of :mod:`repro.analysis.structural`: P/T-invariants by Farkas
elimination and siphon/trap structure.  Where the ``NET`` rules reason
over the token-flow closure (and ``NET007`` over the full reachability
graph), these rules reason over linear algebra — they stay polynomial
on nets whose state space explodes, and the findings carry checkable
witnesses (the invariant or siphon that proves the problem).

The certificate is computed once per :class:`~repro.lint.registry.LintContext`
and memoised in ``ctx.cache`` under :data:`CERTIFICATE_KEY`; ``NET007``
consults the same cache entry to skip its reachability BFS whenever the
structural tier already proves safety, so running both layers on one
shared context never enumerates a provably-safe state space.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.structural import StructuralCertificate, Verdict, \
    structural_certificate
from .diagnostic import Severity
from .registry import Emit, LintContext, rule

#: ``ctx.cache`` key holding the memoised structural certificate.
CERTIFICATE_KEY = "structural.certificate"

#: At most this many findings per multi-witness rule, to keep a broken
#: net's report readable.
MAX_FINDINGS = 8


def cached_structural(ctx: LintContext) -> Optional[StructuralCertificate]:
    """The context's memoised structural certificate (None when the
    context has no net or the net is degenerate)."""
    if CERTIFICATE_KEY not in ctx.cache:
        result: Optional[StructuralCertificate] = None
        if ctx.net is not None and ctx.net.places \
                and ctx.net.initial_marking:
            try:
                result = structural_certificate(ctx.net)
            except Exception:  # degenerate nets are NET001/NET002 findings
                result = None
        ctx.cache[CERTIFICATE_KEY] = result
    return ctx.cache[CERTIFICATE_KEY]


@rule("STR001", layer="structural", severity=Severity.WARNING,
      title="place without safety proof")
def check_covered(ctx: LintContext, emit: Emit) -> None:
    """A reachable place not covered by any 1-token P-invariant has no
    structural safety proof (its token count is unconstrained)."""
    cert = cached_structural(ctx)
    if cert is None or cert.safe is not Verdict.INCONCLUSIVE:
        return  # proved safe, or no certificate at all
    if not cert.unit_invariants:
        return  # STR003 reports the total absence once, not per place
    for place in cert.uncovered_places[:MAX_FINDINGS]:
        emit(f"{cert.net_name}: place {place!r} is not covered by any "
             f"1-token P-invariant; its safeness is structurally unproven",
             location=place,
             hint="the enumerative tier (NET007) still audits it; add a "
                  "complementary place to close the invariant")


@rule("STR002", layer="structural", severity=Severity.WARNING,
      title="net not conservative")
def check_conservative(ctx: LintContext, emit: Emit) -> None:
    """Token count is not conserved: some place lies outside every
    P-invariant, so tokens can be created or lost along its paths."""
    cert = cached_structural(ctx)
    if cert is None or cert.conservative is not Verdict.REFUTED:
        return
    outside = [p for p in cert.places
               if not any(inv.weight(p) for inv in cert.p_invariants)]
    emit(f"{cert.net_name}: not conservative — "
         f"{len(outside)} place(s) outside every P-invariant "
         f"(e.g. {outside[:4]})",
         location=outside[0] if outside else "",
         hint="fork/join mismatches show up as non-conserved tokens")


@rule("STR003", layer="structural", severity=Severity.WARNING,
      title="no invariant cover")
def check_any_cover(ctx: LintContext, emit: Emit) -> None:
    """The net has no 1-token P-invariant at all: the structural tier
    can prove nothing about safeness and everything falls back to
    enumeration."""
    cert = cached_structural(ctx)
    if cert is None or cert.unit_invariants or not cert.p_complete:
        return  # an incomplete elimination may simply have missed them
    if cert.safe is Verdict.PROVED:
        return  # trivially safe (e.g. nothing reachable beyond M0)
    emit(f"{cert.net_name}: no 1-token P-invariant exists; structural "
         f"safety analysis is powerless on this net",
         hint="every verdict will be decided by the enumerative tier")


@rule("STR004", layer="structural", severity=Severity.WARNING,
      title="invariant-dead transition")
def check_invariant_dead(ctx: LintContext, emit: Emit) -> None:
    """A transition demands more tokens from an invariant than the
    invariant conserves — it can never fire, even though every input
    place is individually reachable (beyond ``NET004``'s closure)."""
    cert = cached_structural(ctx)
    if cert is None:
        return
    for trans_id in cert.invariant_dead[:MAX_FINDINGS]:
        emit(f"{cert.net_name}: transition {trans_id!r} is dead by "
             f"invariant arithmetic: it needs more tokens than any "
             f"reachable marking can place on its inputs",
             location=trans_id,
             hint="its input places are mutually exclusive; the join can "
                  "never be supplied")


@rule("STR005", layer="structural", severity=Severity.WARNING,
      title="uncontrolled siphon")
def check_siphons(ctx: LintContext, emit: Emit) -> None:
    """A siphon without an initially-marked trap may drain and then
    starve every transition consuming from it (deadlock risk)."""
    cert = cached_structural(ctx)
    if cert is None or cert.deadlock_free is not Verdict.INCONCLUSIVE:
        return  # proved or refuted: nothing *structural* left to flag
    for siphon in cert.uncontrolled_siphons[:MAX_FINDINGS]:
        shown = sorted(siphon)
        emit(f"{cert.net_name}: siphon {shown} contains no "
             f"initially-marked trap; once drained it never refills",
             location=shown[0] if shown else "",
             hint="a marking that empties this siphon is stuck; the "
                  "enumerative tier decides whether one is reachable")


@rule("STR006", layer="structural", severity=Severity.ERROR,
      title="certificate self-check failure")
def check_certificate(ctx: LintContext, emit: Emit) -> None:
    """The certificate's own witnesses fail independent re-verification
    — an internal engine bug, never a property of the design."""
    cert = cached_structural(ctx)
    if cert is None or ctx.net is None:
        return
    for problem in cert.check(ctx.net)[:MAX_FINDINGS]:
        emit(f"{cert.net_name}: structural certificate is unsound: "
             f"{problem}",
             hint="report this; the invariant engine produced a witness "
                  "that does not verify")
