"""Analysis-layer rules: control-level races and value-flow divergences.

These rules wrap :mod:`repro.analysis`: the may-happen-in-parallel race
detector (``RAC0xx``) and the symbolic equivalence certifier
(``EQV0xx``).  Both analyses are comparatively expensive (a
reachability-graph exploration, a symbolic execution), so they run once
per :class:`~repro.lint.registry.LintContext` and are memoised in
``ctx.cache`` — every rule of the layer, and
:func:`repro.analysis.verify.analyze_design`, shares one computation.

A context that cannot be analysed (incomplete schedule, unbound
variables, unexplorable net) yields no findings here: the cause is an
upstream error with its own code (``SCH``/``BND``/``NET``), and
:func:`~repro.analysis.verify.analyze_design` surfaces the skip as
``LNT001``.  The failure reason is cached for that purpose.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..analysis.equivalence import EquivalenceCertificate, certify
from ..analysis.races import ConcurrencyAnalysis
from ..analysis.reach_graph import DEFAULT_MAX_MARKINGS
from .diagnostic import Severity
from .registry import Emit, LintContext, rule

#: ``ctx.cache`` key holding the reachability bound (int).
MAX_MARKINGS_KEY = "analysis.max_markings"

#: ``ctx.cache`` key holding the shared :class:`~repro.runtime.budget.Budget`.
BUDGET_KEY = "analysis.budget"

#: ``ctx.cache`` key holding the MHP tier name (``auto``/``structural``/
#: ``enumerative``).
TIER_KEY = "analysis.tier"


def _max_markings(ctx: LintContext) -> int:
    return int(ctx.cache.get(MAX_MARKINGS_KEY, DEFAULT_MAX_MARKINGS))


def cached_concurrency(ctx: LintContext) -> Optional[ConcurrencyAnalysis]:
    """The context's memoised race analysis (None when unanalysable)."""
    if "analysis.concurrency" not in ctx.cache:
        result: Optional[ConcurrencyAnalysis] = None
        error = ""
        if ctx.dfg is None or ctx.steps is None or ctx.binding is None:
            error = "needs a DFG, a schedule and a binding"
        else:
            try:
                result = ConcurrencyAnalysis(
                    ctx.dfg, ctx.steps, ctx.binding, net=ctx.net,
                    placement=ctx.placement,
                    max_markings=_max_markings(ctx),
                    budget=ctx.cache.get(BUDGET_KEY),
                    tier=ctx.cache.get(TIER_KEY, "auto"))
            except Exception as exc:
                error = str(exc)
        ctx.cache["analysis.concurrency"] = result
        ctx.cache["analysis.concurrency_error"] = error
    return ctx.cache["analysis.concurrency"]


def cached_certificate(ctx: LintContext) -> Optional[EquivalenceCertificate]:
    """The context's memoised equivalence certificate (None when N/A)."""
    if "analysis.certificate" not in ctx.cache:
        result: Optional[EquivalenceCertificate] = None
        error = ""
        if ctx.dfg is None or ctx.steps is None or ctx.binding is None:
            error = "needs a DFG, a schedule and a binding"
        else:
            try:
                result = certify(ctx.dfg, ctx.steps, ctx.binding)
            except Exception as exc:
                error = str(exc)
        ctx.cache["analysis.certificate"] = result
        ctx.cache["analysis.certificate_error"] = error
    return ctx.cache["analysis.certificate"]


def _race_rule(code: str) -> Callable[[LintContext, Emit], None]:
    """A rule body forwarding the ``code`` findings of the race analysis."""

    def check(ctx: LintContext, emit: Emit) -> None:
        analysis = cached_concurrency(ctx)
        if analysis is None:
            return
        for finding in analysis.races():
            if finding.code == code:
                emit(finding.message, location=finding.location,
                     hint=finding.hint)

    return check


def _divergence_rule(code: str) -> Callable[[LintContext, Emit], None]:
    """A rule body forwarding the ``code`` divergences of the certifier."""

    def check(ctx: LintContext, emit: Emit) -> None:
        certificate = cached_certificate(ctx)
        if certificate is None:
            return
        for divergence in certificate.divergences:
            if divergence.code == code:
                emit(divergence.message, location=divergence.location,
                     hint=divergence.hint)

    return check


# ----------------------------------------------------------------------
# RAC: may-happen-in-parallel races (repro.analysis.races)
# ----------------------------------------------------------------------
@rule("RAC001", layer="analysis", severity=Severity.ERROR,
      title="concurrent module sharing")
def _rac001(ctx: LintContext, emit: Emit) -> None:
    """Two operations bound to one module may execute concurrently."""
    _race_rule("RAC001")(ctx, emit)


@rule("RAC002", layer="analysis", severity=Severity.ERROR,
      title="register write-write race")
def _rac002(ctx: LintContext, emit: Emit) -> None:
    """Two concurrent writes race for one register."""
    _race_rule("RAC002")(ctx, emit)


@rule("RAC003", layer="analysis", severity=Severity.ERROR,
      title="register read-write race")
def _rac003(ctx: LintContext, emit: Emit) -> None:
    """A register may be overwritten while concurrently being read."""
    _race_rule("RAC003")(ctx, emit)


@rule("RAC004", layer="analysis", severity=Severity.WARNING,
      title="interconnect contention")
def _rac004(ctx: LintContext, emit: Emit) -> None:
    """A multiplexed input may be asked for two sources at once."""
    _race_rule("RAC004")(ctx, emit)


# ----------------------------------------------------------------------
# EQV: symbolic value-flow divergences (repro.analysis.equivalence)
# ----------------------------------------------------------------------
@rule("EQV001", layer="analysis", severity=Severity.ERROR,
      title="value never produced")
def _eqv001(ctx: LintContext, emit: Emit) -> None:
    """An output or condition value is never computed and stored."""
    _divergence_rule("EQV001")(ctx, emit)


@rule("EQV002", layer="analysis", severity=Severity.ERROR,
      title="output value diverges")
def _eqv002(ctx: LintContext, emit: Emit) -> None:
    """An output port computes a different expression than the DFG."""
    _divergence_rule("EQV002")(ctx, emit)


@rule("EQV003", layer="analysis", severity=Severity.ERROR,
      title="stale operand read")
def _eqv003(ctx: LintContext, emit: Emit) -> None:
    """An operand read finds a stale or missing register value."""
    _divergence_rule("EQV003")(ctx, emit)


@rule("EQV004", layer="analysis", severity=Severity.ERROR,
      title="condition value diverges")
def _eqv004(ctx: LintContext, emit: Emit) -> None:
    """A controller condition computes a different expression."""
    _divergence_rule("EQV004")(ctx, emit)


@rule("EQV005", layer="analysis", severity=Severity.ERROR,
      title="same-edge register clobber")
def _eqv005(ctx: LintContext, emit: Emit) -> None:
    """Two live values are clocked into one register at the same edge."""
    _divergence_rule("EQV005")(ctx, emit)
