"""Testability-layer design rules (codes ``TST001``-``TST003``).

These encode the smells the paper's synthesis algorithm works to avoid:
module-register self-loops (Mujumdar et al.) and deep controllability/
observability sequential paths — the structures rules SR1/SR2 of the
C/O enhancement strategy (§4.3) exist to break up.  They are warnings:
a design with them is legal, just harder to test.
"""

from __future__ import annotations

from ..testability.depth import register_depths
from ..testability.metrics import UNREACHABLE_DEPTH
from .diagnostic import Severity
from .registry import Emit, LintContext, rule


@rule("TST001", layer="testability", severity=Severity.WARNING,
      title="module-register self-loop")
def check_self_loops(ctx: LintContext, emit: Emit) -> None:
    """A module whose output register feeds one of its own inputs is
    hard to test without breaking the loop."""
    for module, register in ctx.datapath.self_loops():
        emit(f"module {module!r} and register {register!r} form a "
             f"self-loop", location=module,
             hint="a register merger or partial scan can break it")


@rule("TST002", layer="testability", severity=Severity.WARNING,
      title="deep sequential C/O path")
def check_sequential_depth(ctx: LintContext, emit: Emit) -> None:
    """A register many clocked stages away from controllable inputs and
    observable outputs (SR1's quantity) needs long justification and
    propagation sequences."""
    for depth in register_depths(ctx.datapath).values():
        if depth.depth_in >= UNREACHABLE_DEPTH or \
                depth.depth_out >= UNREACHABLE_DEPTH:
            continue  # TST003 reports unreachable registers
        if depth.total > ctx.depth_limit:
            emit(f"register {depth.register!r} has sequential C/O depth "
                 f"{depth.total:.0f} (in {depth.depth_in:.0f} + out "
                 f"{depth.depth_out:.0f}), above the limit "
                 f"{ctx.depth_limit:.0f}", location=depth.register,
                 hint="the SR1/SR2 enhancement strategy shortens such "
                      "paths during rescheduling")


@rule("TST004", layer="testability", severity=Severity.WARNING,
      title="testability fixed point did not converge")
def check_fixed_point_convergence(ctx: LintContext, emit: Emit) -> None:
    """The CC/CO relaxation hit its iteration ceiling without reaching a
    fixed point; the C/O values driving candidate selection are then the
    last iterate, not the converged measures."""
    from ..testability.analysis import analyze
    analysis = ctx.cache.get("testability.analysis")
    if analysis is None:
        analysis = ctx.cache["testability.analysis"] = analyze(ctx.datapath)
    if not analysis.forward_converged:
        emit("controllability propagation did not converge within the "
             "iteration limit", location=ctx.name,
             hint="results are a lower bound; check for pathological "
                  "data-path loops")
    if not analysis.backward_converged:
        emit("observability propagation did not converge within the "
             "iteration limit", location=ctx.name,
             hint="results are a lower bound; check for pathological "
                  "data-path loops")


@rule("TST003", layer="testability", severity=Severity.WARNING,
      title="uncontrollable or unobservable register")
def check_registers_reachable(ctx: LintContext, emit: Emit) -> None:
    """A register with no structural path from the inputs (or to the
    outputs) cannot be tested at all."""
    for depth in register_depths(ctx.datapath).values():
        if depth.depth_in >= UNREACHABLE_DEPTH:
            emit(f"register {depth.register!r} is unreachable from the "
                 f"primary inputs", location=depth.register,
                 hint="it can never be controlled")
        if depth.depth_out >= UNREACHABLE_DEPTH:
            emit(f"register {depth.register!r} reaches no primary output "
                 f"or condition line", location=depth.register,
                 hint="it can never be observed")
