"""Module (functional-unit) binding for a scheduled DFG.

Two binders are provided:

* :func:`min_module_binding` — the step-interval analogue of left-edge:
  per unit class, operations are packed onto the minimum number of
  units (no two same-step operations share one);
* :func:`connectivity_module_binding` — CAMAD-style: the same packing
  framework, but among the units free at an operation's step it prefers
  the one whose existing operations share the most operand variables,
  which minimises multiplexer inputs (and, as the paper observes,
  tends to produce hard-to-test designs).
"""

from __future__ import annotations

from ..dfg import DFG, unit_class, UnitClass


def _ops_by_class(dfg: DFG) -> dict[UnitClass, list[str]]:
    grouping: dict[UnitClass, list[str]] = {}
    for op in dfg:
        grouping.setdefault(unit_class(op.kind), []).append(op.op_id)
    return grouping


def _class_prefix(cls: UnitClass) -> str:
    return {UnitClass.MULTIPLIER: "MUL", UnitClass.ALU: "ALU",
            UnitClass.SHIFTER: "SHF", UnitClass.WIRE: "WIRE"}[cls]


def min_module_binding(dfg: DFG, steps: dict[str, int]) -> dict[str, str]:
    """Bind ops to the fewest units per class (first-fit by step)."""
    binding: dict[str, str] = {}
    for cls, ops in sorted(_ops_by_class(dfg).items(), key=lambda kv: kv[0].value):
        prefix = _class_prefix(cls)
        unit_steps: list[set[int]] = []
        for op_id in sorted(ops, key=lambda o: (steps[o], o)):
            placed = False
            for index, used in enumerate(unit_steps):
                if steps[op_id] not in used:
                    used.add(steps[op_id])
                    binding[op_id] = f"{prefix}{index}"
                    placed = True
                    break
            if not placed:
                binding[op_id] = f"{prefix}{len(unit_steps)}"
                unit_steps.append({steps[op_id]})
    return binding


def connectivity_module_binding(dfg: DFG, steps: dict[str, int]) -> dict[str, str]:
    """Bind ops preferring units that share operand variables.

    Uses the same number of units as :func:`min_module_binding` whenever
    first-fit achieves it, but chooses *which* free unit by connection
    sharing instead of index order.
    """
    binding: dict[str, str] = {}
    for cls, ops in sorted(_ops_by_class(dfg).items(), key=lambda kv: kv[0].value):
        prefix = _class_prefix(cls)
        unit_steps: list[set[int]] = []
        unit_vars: list[set[str]] = []
        for op_id in sorted(ops, key=lambda o: (steps[o], o)):
            op = dfg.operation(op_id)
            touched = set(op.src_variables())
            if op.dst is not None:
                touched.add(op.dst)
            free = [i for i, used in enumerate(unit_steps)
                    if steps[op_id] not in used]
            if free:
                chosen = max(free,
                             key=lambda i: (len(unit_vars[i] & touched), -i))
                unit_steps[chosen].add(steps[op_id])
                unit_vars[chosen] |= touched
                binding[op_id] = f"{prefix}{chosen}"
            else:
                binding[op_id] = f"{prefix}{len(unit_steps)}"
                unit_steps.append({steps[op_id]})
                unit_vars.append(touched)
    return binding
