"""Module and register bindings (allocation results).

A :class:`Binding` records which functional module executes each
operation and which register stores each variable.  Together with a
schedule it fully determines the RT-level data path.  Bindings are
the objects the paper's *merger* transformation rewrites.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dfg import DFG, unit_class, UnitClass
from ..errors import BindingError


@dataclass
class Binding:
    """An allocation: operations onto modules, variables onto registers.

    Attributes:
        module_of: op_id -> module id.
        register_of: variable name -> register id.
    """

    module_of: dict[str, str] = field(default_factory=dict)
    register_of: dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def modules(self) -> dict[str, list[str]]:
        """Map module id to the sorted op_ids bound to it."""
        grouping: dict[str, list[str]] = {}
        for op_id, module in self.module_of.items():
            grouping.setdefault(module, []).append(op_id)
        return {m: sorted(ops) for m, ops in sorted(grouping.items())}

    def registers(self) -> dict[str, list[str]]:
        """Map register id to the sorted variables bound to it."""
        grouping: dict[str, list[str]] = {}
        for var, register in self.register_of.items():
            grouping.setdefault(register, []).append(var)
        return {r: sorted(vs) for r, vs in sorted(grouping.items())}

    def module_count(self) -> int:
        """Number of distinct functional modules."""
        return len(set(self.module_of.values()))

    def register_count(self) -> int:
        """Number of distinct registers."""
        return len(set(self.register_of.values()))

    def ops_on(self, module: str) -> list[str]:
        """Sorted op_ids sharing ``module``."""
        return sorted(o for o, m in self.module_of.items() if m == module)

    def vars_in(self, register: str) -> list[str]:
        """Sorted variables sharing ``register``."""
        return sorted(v for v, r in self.register_of.items() if r == register)

    def copy(self) -> "Binding":
        """Deep-enough copy (the maps are replaced, keys are immutable)."""
        return Binding(dict(self.module_of), dict(self.register_of))

    # ------------------------------------------------------------------
    def merge_modules(self, keep: str, absorb: str) -> "Binding":
        """Return a new binding with module ``absorb`` folded into ``keep``."""
        if keep == absorb:
            raise BindingError(f"cannot merge module {keep!r} with itself")
        result = self.copy()
        found = False
        for op_id, module in result.module_of.items():
            if module == absorb:
                result.module_of[op_id] = keep
                found = True
        if not found:
            raise BindingError(f"no operations bound to module {absorb!r}")
        return result

    def merge_registers(self, keep: str, absorb: str) -> "Binding":
        """Return a new binding with register ``absorb`` folded into ``keep``."""
        if keep == absorb:
            raise BindingError(f"cannot merge register {keep!r} with itself")
        result = self.copy()
        found = False
        for var, register in result.register_of.items():
            if register == absorb:
                result.register_of[var] = keep
                found = True
        if not found:
            raise BindingError(f"no variables bound to register {absorb!r}")
        return result


def default_binding(dfg: DFG) -> Binding:
    """The VHDL compiler's default allocation (paper §3).

    Each operation instance gets its own module, each register-needing
    variable its own register — the starting point that mergers compact.
    """
    binding = Binding()
    for op_id in dfg.op_order:
        binding.module_of[op_id] = f"M_{op_id}"
    for name, var in sorted(dfg.variables.items()):
        if var.needs_register():
            binding.register_of[name] = f"R_{name}"
    return binding


def module_unit_class(dfg: DFG, binding: Binding, module: str) -> UnitClass:
    """The unit class of a module (all its ops must agree).

    Raises:
        BindingError: when the module mixes incompatible operation kinds.
    """
    classes = {unit_class(dfg.operation(o).kind) for o in binding.ops_on(module)}
    if len(classes) != 1:
        raise BindingError(f"module {module!r} mixes unit classes {classes}")
    return classes.pop()


def validate_binding(dfg: DFG, steps: dict[str, int], binding: Binding) -> None:
    """Check that a binding is legal for the given schedule.

    Rules (paper §4.1, lint codes ``BND001``-``BND005``): operations
    sharing a module occupy distinct control steps and agree on unit
    class; variables sharing a register have pairwise-disjoint
    lifetimes; every operation and every register-needing variable is
    bound.  The rule implementations live in
    :mod:`repro.lint.rules_binding`; this raise-style wrapper collects
    every violation into one exception.

    Raises:
        BindingError: listing every violated rule (not just the first).
    """
    from ..lint import lint_binding
    errors = lint_binding(dfg, steps, binding).errors()
    if errors:
        raise BindingError("; ".join(d.message for d in errors))
