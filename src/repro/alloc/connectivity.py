"""CAMAD-style connectivity (closeness) register allocation.

Paper §3: "Conventional allocation approaches often select and merge
the data path nodes according to their connectivity or closeness, which
aims to minimize interconnections and multiplexors.  This usually
results in a very hard to test design..."

This allocator reproduces that conventional behaviour for the CAMAD
baseline: the left-edge packing framework, with ties broken towards the
register whose current variables share the most producers/consumers
with the incoming variable, so that register-input multiplexers stay
small — at the price of chaining good-C with good-C nodes.
"""

from __future__ import annotations

from ..dfg import DFG
from ..dfg.lifetime import Lifetime


def _closeness_sets(dfg: DFG, module_of: dict[str, str]) -> dict[str, set[str]]:
    """For each variable: the modules producing or consuming it."""
    touching: dict[str, set[str]] = {name: set() for name in dfg.variables}
    for op in dfg:
        module = module_of[op.op_id]
        for src in op.src_variables():
            touching[src].add(f"use:{module}")
        if op.dst is not None:
            touching[op.dst].add(f"def:{module}")
    return touching


def connectivity_left_edge(dfg: DFG, lifetimes: dict[str, Lifetime],
                           module_of: dict[str, str],
                           register_prefix: str = "R") -> dict[str, str]:
    """Pack lifetimes preferring connection-sharing register groups."""
    touching = _closeness_sets(dfg, module_of)
    ordered = sorted(lifetimes.values(), key=lambda lt: (lt.birth, lt.death,
                                                         lt.variable))
    register_ends: list[int] = []
    register_touch: list[set[str]] = []
    assignment: dict[str, str] = {}
    for lt in ordered:
        mine = touching[lt.variable]
        candidates = [i for i, end in enumerate(register_ends)
                      if end <= lt.birth]
        if candidates:
            chosen = max(candidates,
                         key=lambda i: (len(register_touch[i] & mine), -i))
            register_ends[chosen] = lt.death
            register_touch[chosen] |= mine
            assignment[lt.variable] = f"{register_prefix}{chosen}"
        else:
            assignment[lt.variable] = f"{register_prefix}{len(register_ends)}"
            register_ends.append(lt.death)
            register_touch.append(set(mine))
    return assignment
