"""Left-edge register allocation, plain and testability-modified.

The plain left-edge algorithm packs variable lifetimes into the minimum
number of registers.  The *modified* variant (after Lee et al., used by
the paper's Approach 2 baseline) keeps the same packing framework but
steers which variables end up sharing: each register group should
contain a primary-input or primary-output variable whenever possible
(their rule 1), which shortens the sequential depth from controllable
to observable registers (their rule 2).
"""

from __future__ import annotations

from ..dfg import DFG
from ..dfg.lifetime import Lifetime


def left_edge(lifetimes: dict[str, Lifetime],
              register_prefix: str = "R") -> dict[str, str]:
    """Pack lifetimes into registers with the classic left-edge scan.

    Returns:
        variable name -> register id (``R0``, ``R1``, ...), using the
        minimum number of registers for the given lifetimes.
    """
    ordered = sorted(lifetimes.values(), key=lambda lt: (lt.birth, lt.death,
                                                         lt.variable))
    register_ends: list[int] = []
    assignment: dict[str, str] = {}
    for lt in ordered:
        placed = False
        for index, end in enumerate(register_ends):
            if end <= lt.birth:
                register_ends[index] = lt.death
                assignment[lt.variable] = f"{register_prefix}{index}"
                placed = True
                break
        if not placed:
            assignment[lt.variable] = f"{register_prefix}{len(register_ends)}"
            register_ends.append(lt.death)
    return assignment


def _variable_side(dfg: DFG, name: str) -> int:
    """-1 for input-side variables, +1 for output-side, 0 for middle."""
    var = dfg.variable(name)
    if var.is_input:
        return -1
    if var.is_output:
        return 1
    return 0


def testability_left_edge(dfg: DFG, lifetimes: dict[str, Lifetime],
                          register_prefix: str = "R") -> dict[str, str]:
    """Modified left-edge allocation (Lee et al., Approach 2 / ours).

    Performs the same greedy interval packing but, when several existing
    registers can accept a variable, prefers one whose current contents
    lie on the *opposite* side of the data path (input-side variables
    join output-side groups and vice versa).  The resulting groups mix
    primary-input and primary-output variables, giving every register a
    short path to a controllable input or an observable output.
    """
    ordered = sorted(lifetimes.values(), key=lambda lt: (lt.birth, lt.death,
                                                         lt.variable))
    register_ends: list[int] = []
    register_sides: list[int] = []
    assignment: dict[str, str] = {}
    for lt in ordered:
        side = _variable_side(dfg, lt.variable)
        candidates = [i for i, end in enumerate(register_ends)
                      if end <= lt.birth]
        if candidates:
            # Opposite-side groups first (most negative product), then
            # tightest fit to keep packing optimal, then stable order.
            chosen = min(candidates,
                         key=lambda i: (register_sides[i] * side,
                                        lt.birth - register_ends[i], i))
            register_ends[chosen] = lt.death
            register_sides[chosen] += side
            assignment[lt.variable] = f"{register_prefix}{chosen}"
        else:
            assignment[lt.variable] = f"{register_prefix}{len(register_ends)}"
            register_ends.append(lt.death)
            register_sides.append(side)
    return assignment
