"""Allocation: bindings, left-edge and connectivity-based allocators."""

from .binding import (Binding, default_binding, module_unit_class,
                      validate_binding)
from .connectivity import connectivity_left_edge
from .left_edge import left_edge, testability_left_edge
from .module_alloc import connectivity_module_binding, min_module_binding

__all__ = [
    "Binding",
    "connectivity_left_edge",
    "connectivity_module_binding",
    "default_binding",
    "left_edge",
    "min_module_binding",
    "module_unit_class",
    "testability_left_edge",
    "validate_binding",
]
