"""Sequential depth: the quantity rule SR1 minimises.

Lee et al.'s rule SR1 — *reduce the sequential depth from a controllable
register to an observable register* — drives both the paper's
rescheduling order decisions and its register-merger choices.  The depth
of a register is measured in register stages: how many clocked elements
a value must traverse from a primary input to reach the register
(``depth_in``), and from the register to a primary output or condition
line (``depth_out``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..etpn.datapath import DataPath, NodeKind
from .metrics import UNREACHABLE_DEPTH


@dataclass(frozen=True)
class RegisterDepth:
    """Input and output sequential depth of one register."""

    register: str
    depth_in: float
    depth_out: float

    @property
    def total(self) -> float:
        """The controllable-to-observable depth through this register."""
        return self.depth_in + self.depth_out


def _dijkstra(datapath: DataPath, sources: list[str],
              forward: bool) -> dict[str, float]:
    """Shortest register-stage distance from ``sources`` to every node.

    Forward, entering a register costs 1 (one clock to load it);
    backward, leaving a register towards its driver costs 1 (the value
    had to be produced one time frame earlier).  Every other hop is
    combinational and free.
    """
    dist = {node_id: UNREACHABLE_DEPTH for node_id in datapath.nodes}
    heap: list[tuple[float, str]] = []
    for src in sources:
        dist[src] = 0.0
        heapq.heappush(heap, (0.0, src))
    while heap:
        d, node_id = heapq.heappop(heap)
        if d > dist[node_id]:
            continue
        arcs = (datapath.outgoing(node_id) if forward
                else datapath.incoming(node_id))
        for arc in arcs:
            neighbour = arc.dst if forward else arc.src
            stage = (datapath.nodes[neighbour] if forward
                     else datapath.nodes[node_id])
            cost = 1.0 if stage.kind == NodeKind.REGISTER else 0.0
            candidate = d + cost
            if candidate < dist[neighbour]:
                dist[neighbour] = candidate
                heapq.heappush(heap, (candidate, neighbour))
    return dist


def register_depths(datapath: DataPath) -> dict[str, RegisterDepth]:
    """Sequential depth of every register in the data path."""
    inputs = [n.node_id for n in datapath.nodes.values()
              if n.kind in (NodeKind.PORT_IN, NodeKind.CONST)]
    outputs = [n.node_id for n in datapath.nodes.values()
               if n.kind in (NodeKind.PORT_OUT, NodeKind.COND)]
    from_in = _dijkstra(datapath, inputs, forward=True)
    to_out = _dijkstra(datapath, outputs, forward=False)
    depths = {}
    for register in datapath.registers():
        depths[register.node_id] = RegisterDepth(
            register.node_id,
            depth_in=from_in[register.node_id],
            depth_out=to_out[register.node_id])
    return depths


def sequential_depth_metric(datapath: DataPath) -> float:
    """Aggregate SR1 metric: total controllable→observable depth.

    Lower is better.  Rescheduling alternatives are compared with this
    number (plus the self-loop count, which SR1's motivation also
    penalises).
    """
    depths = register_depths(datapath)
    if not depths:
        return 0.0
    return sum(d.total for d in depths.values())


def max_sequential_depth(datapath: DataPath) -> float:
    """The deepest register's controllable→observable depth."""
    depths = register_depths(datapath)
    if not depths:
        return 0.0
    return max(d.total for d in depths.values())
