"""The controllability/observability balance allocation principle (§3).

Conventional allocation merges nodes by connectivity, which tends to
fold good-C/bad-O nodes together (both near the inputs) and good-O/bad-C
nodes together (both near the outputs), producing data paths full of
nodes that are hard to control *or* hard to observe, plus many loops.

The balance principle instead folds a node with good controllability
and bad observability onto a node with good observability and bad
controllability: the merged node inherits the best controllability of
one parent (best input line) and the best observability of the other
(best output line).
"""

from __future__ import annotations

from dataclasses import dataclass

from .analysis import TestabilityAnalysis
from .metrics import NodeTestability


@dataclass(frozen=True)
class BalanceScore:
    """How attractive merging two nodes is, per the balance principle.

    Attributes:
        merged_quality: worst-dimension score of the merged node (it
            inherits max C and max O of the parents); the primary key.
        complementarity: how opposite the parents' imbalances are; used
            as a tie-breaker so C-heavy nodes prefer O-heavy partners.
    """

    merged_quality: float
    complementarity: float

    def key(self) -> tuple[float, float]:
        """Sort key: larger is better."""
        return (self.merged_quality, self.complementarity)


def merged_testability(a: NodeTestability, b: NodeTestability) -> tuple[float, float]:
    """(c_score, o_score) the merged node inherits from its parents."""
    return (max(a.c_score, b.c_score), max(a.o_score, b.o_score))


def balance_score(a: NodeTestability, b: NodeTestability) -> BalanceScore:
    """Score a candidate merger pair.

    ``merged_quality`` is what the new node's worst dimension will look
    like; ``complementarity`` is positive exactly when one parent is
    C-dominant and the other O-dominant (the fold the paper wants) and
    negative when both lean the same way (the fold it avoids).
    """
    merged_c, merged_o = merged_testability(a, b)
    return BalanceScore(
        merged_quality=min(merged_c, merged_o),
        complementarity=-(a.imbalance * b.imbalance),
    )


def rank_pairs(analysis: TestabilityAnalysis,
               pairs: list[tuple[str, str]]) -> list[tuple[str, str]]:
    """Order candidate node pairs, best balance first.

    Args:
        analysis: the current design's testability analysis.
        pairs: candidate (node_id, node_id) pairs (already filtered for
            structural compatibility by the caller).

    Returns:
        The same pairs sorted by descending :class:`BalanceScore`, with
        a deterministic name-based tie-break.
    """
    nodes = analysis.all_nodes()

    def sort_key(pair: tuple[str, str]):
        score = balance_score(nodes[pair[0]], nodes[pair[1]])
        quality, complement = score.key()
        return (-quality, -complement, pair)

    return sorted(pairs, key=sort_key)
