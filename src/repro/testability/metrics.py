"""Testability metric containers (paper §2).

The metric has four measures per data-path line: combinational
controllability (CC), sequential controllability (SC), combinational
observability (CO) and sequential observability (SO).  CC/CO are in
``[0, 1]`` (1 = free, 0 = impossible); SC/SO count the sequential
effort — essentially how many register stages a test generator must
drive through (time frames) to set or observe the line.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Sequential cost assigned to unreachable lines.
UNREACHABLE_DEPTH = 1_000.0


@dataclass(frozen=True)
class LineTestability:
    """The four measures of one data-path line (arc)."""

    cc: float = 0.0
    sc: float = UNREACHABLE_DEPTH
    co: float = 0.0
    so: float = UNREACHABLE_DEPTH

    def controllability_score(self) -> float:
        """Scalar controllability: high CC, low SC is good."""
        return self.cc / (1.0 + self.sc)

    def observability_score(self) -> float:
        """Scalar observability: high CO, low SO is good."""
        return self.co / (1.0 + self.so)


@dataclass(frozen=True)
class NodeTestability:
    """Node-level C/O per the paper §3.

    The controllability of a node is the *best* controllability of any
    of its input lines; the observability is the best observability of
    any of its output lines.
    """

    node_id: str
    cc: float
    sc: float
    co: float
    so: float

    @property
    def c_score(self) -> float:
        """Scalar controllability of the node."""
        return self.cc / (1.0 + self.sc)

    @property
    def o_score(self) -> float:
        """Scalar observability of the node."""
        return self.co / (1.0 + self.so)

    @property
    def imbalance(self) -> float:
        """Positive when the node is easier to control than observe."""
        return self.c_score - self.o_score

    @property
    def quality(self) -> float:
        """Worst-dimension score; the balance principle maximises this."""
        return min(self.c_score, self.o_score)

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return (f"{self.node_id}: CC={self.cc:.3f} SC={self.sc:.1f} "
                f"CO={self.co:.3f} SO={self.so:.1f}")
