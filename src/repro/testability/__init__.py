"""Testability analysis and the C/O balance allocation principle."""

from .analysis import CTF, OTF, TestabilityAnalysis, analyze
from .balance import BalanceScore, balance_score, merged_testability, rank_pairs
from .depth import (RegisterDepth, max_sequential_depth, register_depths,
                    sequential_depth_metric)
from .metrics import LineTestability, NodeTestability, UNREACHABLE_DEPTH
from .report import depth_report, testability_report

__all__ = [
    "CTF",
    "OTF",
    "BalanceScore",
    "LineTestability",
    "NodeTestability",
    "RegisterDepth",
    "TestabilityAnalysis",
    "UNREACHABLE_DEPTH",
    "analyze",
    "balance_score",
    "depth_report",
    "max_sequential_depth",
    "merged_testability",
    "rank_pairs",
    "register_depths",
    "sequential_depth_metric",
    "testability_report",
]
