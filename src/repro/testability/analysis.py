"""Testability analysis: CC/SC/CO/SO propagation over a data path.

Reimplementation of the analysis the paper takes from Gu, Kuchcinski &
Peng (EURO-DAC'94): combinational values start at the primary inputs
(CC=1, SC=0) and propagate forward to the primary outputs; observability
propagates backward from the outputs (CO=1, SO=0).  Register stages add
one unit of sequential cost; functional modules attenuate combinational
values by per-operation transfer factors.  Data-path loops are handled
by fixpoint relaxation (the updates are monotone, so iteration
converges).

Condition lines count as observable outputs because the paper assumes
the controller can be modified to support the test plan (§1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dfg.ops import OpKind
from ..etpn.datapath import DataPath, DataPathArc, NodeKind
from .metrics import LineTestability, NodeTestability, UNREACHABLE_DEPTH

#: Combinational transfer factor: how much of a value's controllability
#: survives justification through each operation.
CTF = {
    OpKind.ADD: 0.95, OpKind.SUB: 0.95,
    OpKind.MUL: 0.55, OpKind.DIV: 0.45,
    OpKind.LT: 0.50, OpKind.GT: 0.50, OpKind.LE: 0.50, OpKind.GE: 0.50,
    OpKind.EQ: 0.50, OpKind.NE: 0.50,
    OpKind.AND: 0.80, OpKind.OR: 0.80, OpKind.XOR: 0.90, OpKind.NOT: 1.00,
    OpKind.SHL: 0.85, OpKind.SHR: 0.85,
    OpKind.MOVE: 1.00,
}

#: Observational transfer factor: how much observability survives
#: propagation of a fault effect through each operation.
OTF = {
    OpKind.ADD: 0.95, OpKind.SUB: 0.95,
    OpKind.MUL: 0.45, OpKind.DIV: 0.35,
    OpKind.LT: 0.30, OpKind.GT: 0.30, OpKind.LE: 0.30, OpKind.GE: 0.30,
    OpKind.EQ: 0.30, OpKind.NE: 0.30,
    OpKind.AND: 0.70, OpKind.OR: 0.70, OpKind.XOR: 0.90, OpKind.NOT: 1.00,
    OpKind.SHL: 0.80, OpKind.SHR: 0.80,
    OpKind.MOVE: 1.00,
}

#: A constant line justifies one fixed value: half-controllable.
CONST_CC = 0.5

_EPS = 1e-9
_MAX_ITERATIONS = 200


@dataclass(frozen=True)
class _CV:
    """A (combinational, sequential) controllability or observability pair."""

    c: float
    s: float

    def score(self) -> float:
        return self.c / (1.0 + self.s)

    def better(self, other: "_CV") -> bool:
        return self.score() > other.score() + _EPS


_ZERO = _CV(0.0, UNREACHABLE_DEPTH)


class TestabilityAnalysis:
    """CC/SC/CO/SO values for every arc and node of a data path."""

    def __init__(self, datapath: DataPath) -> None:
        self.datapath = datapath
        self._out_ctrl: dict[str, _CV] = {}
        self._arc_obs: dict[tuple[str, str, int], _CV] = {}
        self._node_obs: dict[str, _CV] = {}
        #: Did the forward (controllability) / backward (observability)
        #: relaxations reach a fixed point within ``_MAX_ITERATIONS``?
        #: When False the values below are the last iterate, not the
        #: fixed point — lint rule TST004 surfaces this instead of the
        #: analysis silently using unconverged numbers.
        self.forward_converged = False
        self.backward_converged = False
        self._run_forward()
        self._run_backward()

    @property
    def converged(self) -> bool:
        """True when both fixed-point iterations actually converged."""
        return self.forward_converged and self.backward_converged

    # ------------------------------------------------------------------
    # Forward: controllability
    # ------------------------------------------------------------------
    def _module_ctf(self, node_id: str) -> float:
        """Best transfer factor over the ops a module can execute."""
        node = self.datapath.nodes[node_id]
        return max(CTF[self.datapath.dfg.operation(o).kind] for o in node.ops)

    def _module_otf(self, node_id: str) -> float:
        node = self.datapath.nodes[node_id]
        return max(OTF[self.datapath.dfg.operation(o).kind] for o in node.ops)

    def _port_ctrl(self, node_id: str, port: int) -> _CV:
        """Controllability of one input port: best source wins (a mux
        lets the test choose the easiest path)."""
        best = _ZERO
        for src in self.datapath.sources_of_port(node_id, port):
            value = self._out_ctrl.get(src, _ZERO)
            if value.better(best):
                best = value
        return best

    def _run_forward(self) -> None:
        dp = self.datapath
        for node in dp.nodes.values():
            if node.kind == NodeKind.PORT_IN:
                self._out_ctrl[node.node_id] = _CV(1.0, 0.0)
            elif node.kind == NodeKind.CONST:
                self._out_ctrl[node.node_id] = _CV(CONST_CC, 0.0)
            else:
                self._out_ctrl[node.node_id] = _ZERO
        order = sorted(dp.nodes)
        for _ in range(_MAX_ITERATIONS):
            changed = False
            for node_id in order:
                node = dp.nodes[node_id]
                if node.kind == NodeKind.REGISTER:
                    inp = self._port_ctrl(node_id, 0)
                    candidate = _CV(inp.c, min(inp.s + 1.0, UNREACHABLE_DEPTH))
                elif node.kind == NodeKind.MODULE:
                    ports = dp.input_ports(node_id)
                    if not ports:
                        continue
                    values = [self._port_ctrl(node_id, p) for p in ports]
                    cc = self._module_ctf(node_id) * min(v.c for v in values)
                    sc = max(v.s for v in values)
                    candidate = _CV(cc, sc)
                else:
                    continue
                if candidate.better(self._out_ctrl[node_id]):
                    self._out_ctrl[node_id] = candidate
                    changed = True
            if not changed:
                self.forward_converged = True
                break

    # ------------------------------------------------------------------
    # Backward: observability
    # ------------------------------------------------------------------
    def _arc_observability(self, arc: DataPathArc) -> _CV:
        dst = self.datapath.nodes[arc.dst]
        if dst.kind in (NodeKind.PORT_OUT, NodeKind.COND):
            return _CV(1.0, 0.0)
        if dst.kind == NodeKind.REGISTER:
            out = self._node_obs.get(arc.dst, _ZERO)
            return _CV(out.c, min(out.s + 1.0, UNREACHABLE_DEPTH))
        if dst.kind == NodeKind.MODULE:
            out = self._node_obs.get(arc.dst, _ZERO)
            side_cc = 1.0
            for port in self.datapath.input_ports(arc.dst):
                if port != arc.port:
                    side_cc = min(side_cc, self._port_ctrl(arc.dst, port).c)
            return _CV(self._module_otf(arc.dst) * out.c * side_cc, out.s)
        return _ZERO

    def _run_backward(self) -> None:
        dp = self.datapath
        for node_id in dp.nodes:
            self._node_obs[node_id] = _ZERO
        for _ in range(_MAX_ITERATIONS):
            changed = False
            for node_id in sorted(dp.nodes):
                best = _ZERO
                for arc in dp.outgoing(node_id):
                    value = self._arc_observability(arc)
                    if value.better(best):
                        best = value
                if best.better(self._node_obs[node_id]):
                    self._node_obs[node_id] = best
                    changed = True
            if not changed:
                self.backward_converged = True
                break
        self._arc_obs = {(a.src, a.dst, a.port): self._arc_observability(a)
                         for a in dp.arcs}

    # ------------------------------------------------------------------
    # Public accessors
    # ------------------------------------------------------------------
    def line(self, arc: DataPathArc) -> LineTestability:
        """The four measures of one arc."""
        ctrl = self._out_ctrl.get(arc.src, _ZERO)
        obs = self._arc_obs.get((arc.src, arc.dst, arc.port), _ZERO)
        return LineTestability(cc=ctrl.c, sc=ctrl.s, co=obs.c, so=obs.s)

    def node(self, node_id: str) -> NodeTestability:
        """Node-level testability (paper §3).

        Controllability = best input line; observability = best output
        line.  Ports use their intrinsic values.
        """
        dp = self.datapath
        kind = dp.nodes[node_id].kind
        if kind in (NodeKind.PORT_IN, NodeKind.CONST):
            ctrl = self._out_ctrl[node_id]
        else:
            incoming = dp.incoming(node_id)
            ctrl = _ZERO
            for arc in incoming:
                value = self._out_ctrl.get(arc.src, _ZERO)
                if value.better(ctrl):
                    ctrl = value
        if kind in (NodeKind.PORT_OUT, NodeKind.COND):
            obs = _CV(1.0, 0.0)
        else:
            obs = self._node_obs[node_id]
        return NodeTestability(node_id, cc=ctrl.c, sc=ctrl.s,
                               co=obs.c, so=obs.s)

    def all_nodes(self) -> dict[str, NodeTestability]:
        """Node testability for every data-path node."""
        return {node_id: self.node(node_id) for node_id in self.datapath.nodes}

    def design_quality(self) -> float:
        """Mean worst-dimension score over modules and registers.

        A single scalar used by tests and ablation benches to compare
        the overall testability of two designs.
        """
        interesting = [n.node_id for n in self.datapath.modules()
                       + self.datapath.registers()]
        if not interesting:
            return 0.0
        return sum(self.node(n).quality for n in interesting) / len(interesting)


def analyze(datapath: DataPath) -> TestabilityAnalysis:
    """Run (or recall) the testability analysis of a data path.

    Memoised on datapath *identity*: designs are immutable once built
    (``Design.replaced`` creates new objects and ``Design.datapath`` is
    a cached property), so a datapath's analysis never changes over its
    lifetime.  Repeated calls with the same object — Algorithm 1's
    candidate ranking re-analysing the design its final iteration just
    analysed, ``run_cell`` and ``explore`` pricing that same design —
    return the cached :class:`TestabilityAnalysis` instead of
    re-propagating the fixpoint.  The memo lives on the datapath object
    (not in a global table), so its lifetime is exactly the datapath's
    and a copied object is detected and re-analysed.
    """
    analysis = getattr(datapath, "_analysis_memo", None)
    if analysis is None or analysis.datapath is not datapath:
        analysis = TestabilityAnalysis(datapath)
        datapath._analysis_memo = analysis  # type: ignore[attr-defined]
    return analysis
