"""Human-readable testability reports.

Renders the CC/SC/CO/SO profile of a design's data path — the view a
designer would consult to understand *why* the balance principle picks
the mergers it picks — plus the register depth table behind rule SR1.
"""

from __future__ import annotations

from ..etpn.datapath import DataPath, NodeKind
from .analysis import TestabilityAnalysis, analyze
from .depth import register_depths

_KIND_ORDER = [NodeKind.PORT_IN, NodeKind.CONST, NodeKind.REGISTER,
               NodeKind.MODULE, NodeKind.PORT_OUT, NodeKind.COND]


def testability_report(datapath: DataPath,
                       analysis: TestabilityAnalysis | None = None) -> str:
    """A full per-node testability table with a balance verdict column."""
    analysis = analysis or analyze(datapath)
    lines = [f"Testability report — {datapath.dfg.name} "
             f"({len(datapath.nodes)} nodes, "
             f"{datapath.mux_count()} muxes, "
             f"{len(datapath.self_loops())} self-loops)",
             f"{'node':<14} {'kind':<6} {'CC':>6} {'SC':>6} {'CO':>6} "
             f"{'SO':>6} {'C-score':>8} {'O-score':>8}  verdict"]
    lines.append("-" * len(lines[-1]))
    nodes = sorted(datapath.nodes.values(),
                   key=lambda n: (_KIND_ORDER.index(n.kind), n.node_id))
    for node in nodes:
        metrics = analysis.node(node.node_id)
        if metrics.imbalance > 0.15:
            verdict = "C-dominant (fold onto an observable node)"
        elif metrics.imbalance < -0.15:
            verdict = "O-dominant (fold a controllable node onto it)"
        else:
            verdict = "balanced"
        lines.append(
            f"{node.node_id:<14} {node.kind.value:<6} "
            f"{metrics.cc:>6.3f} {metrics.sc:>6.1f} "
            f"{metrics.co:>6.3f} {metrics.so:>6.1f} "
            f"{metrics.c_score:>8.3f} {metrics.o_score:>8.3f}  {verdict}")
    lines.append("")
    lines.append(f"design quality (mean worst-dimension score): "
                 f"{analysis.design_quality():.3f}")
    return "\n".join(lines)


def depth_report(datapath: DataPath) -> str:
    """The SR1 register-depth table."""
    depths = register_depths(datapath)
    lines = [f"Sequential depth (SR1) — {datapath.dfg.name}",
             f"{'register':<14} {'from inputs':>11} {'to outputs':>11} "
             f"{'total':>6}"]
    lines.append("-" * len(lines[-1]))
    for register in sorted(depths):
        d = depths[register]
        lines.append(f"{register:<14} {d.depth_in:>11.0f} "
                     f"{d.depth_out:>11.0f} {d.total:>6.0f}")
    total = sum(d.total for d in depths.values())
    lines.append(f"{'SUM':<14} {'':>11} {'':>11} {total:>6.0f}")
    return "\n".join(lines)
