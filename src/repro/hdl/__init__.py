"""Simplified behavioural HDL front end (the paper's VHDL compiler role)."""

from .ast_nodes import (Assignment, BinaryExpr, DesignUnit, LoopSpec,
                        NameExpr, NumberExpr, UnaryExpr)
from .compiler import compile_source, compile_unit
from .lexer import Token, tokenize
from .parser import parse

__all__ = [
    "Assignment",
    "BinaryExpr",
    "DesignUnit",
    "LoopSpec",
    "NameExpr",
    "NumberExpr",
    "Token",
    "UnaryExpr",
    "compile_source",
    "compile_unit",
    "parse",
    "tokenize",
]
