"""Abstract syntax tree of the behavioural HDL."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


@dataclass(frozen=True)
class NumberExpr:
    """An integer literal."""

    value: int


@dataclass(frozen=True)
class NameExpr:
    """A variable reference."""

    name: str


@dataclass(frozen=True)
class UnaryExpr:
    """A unary operation (only ``~`` exists)."""

    op: str
    operand: "Expr"


@dataclass(frozen=True)
class BinaryExpr:
    """A binary operation with the operator's source symbol."""

    op: str
    lhs: "Expr"
    rhs: "Expr"


Expr = Union[NumberExpr, NameExpr, UnaryExpr, BinaryExpr]


@dataclass(frozen=True)
class Assignment:
    """``[label:] target := expr;`` — one behavioural statement."""

    target: str
    expr: Expr
    label: Optional[str] = None
    line: int = 0


@dataclass(frozen=True)
class LoopSpec:
    """``loop while expr;`` — repeat the whole behaviour while true."""

    condition: Expr
    line: int = 0


@dataclass
class DesignUnit:
    """A parsed design: name, ports and the statement list."""

    name: str
    inputs: list[str] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)
    statements: list[Assignment] = field(default_factory=list)
    loop: Optional[LoopSpec] = None
