"""Compile a parsed design into a data-flow graph.

This is the role of the "VHDL compiler" in the paper's flow (§3): one
data-path operation node per operation instance in the source.  Nested
expressions introduce compiler temporaries; a statement's label names
its *root* operation (so benchmark sources can carry the paper's node
ids), and inner operations get derived ids.
"""

from __future__ import annotations

from ..dfg import DFG, DFGBuilder
from ..errors import HDLSemanticError
from .ast_nodes import (Assignment, BinaryExpr, DesignUnit, Expr, NameExpr,
                        NumberExpr, UnaryExpr)
from .parser import parse


class _Compiler:
    def __init__(self, unit: DesignUnit) -> None:
        self.unit = unit
        self.builder = DFGBuilder(unit.name)
        self.op_counter = 0
        self.temp_counter = 0

    # ------------------------------------------------------------------
    def run(self) -> DFG:
        unit = self.unit
        duplicates = set(unit.inputs) & set(unit.outputs)
        if duplicates:
            raise HDLSemanticError(f"{unit.name}: ports {sorted(duplicates)} "
                                   f"declared both input and output")
        self.builder.inputs(*unit.inputs)
        defined: set[str] = set(unit.inputs)
        for statement in unit.statements:
            self._compile_assignment(statement, defined)
        if unit.loop is not None:
            condition = self._materialise_condition(unit.loop.condition,
                                                    defined)
            self.builder.loop(condition)
        for output in unit.outputs:
            if output not in defined:
                raise HDLSemanticError(f"{unit.name}: output {output!r} is "
                                       f"never assigned")
        self.builder.outputs(*unit.outputs)
        return self.builder.build()

    # ------------------------------------------------------------------
    def _next_op_id(self, label: str | None, sub: int) -> str:
        if label is not None:
            return label if sub == 0 else f"{label}_{sub}"
        self.op_counter += 1
        return f"N{self.op_counter}"

    def _next_temp(self) -> str:
        self.temp_counter += 1
        return f"_t{self.temp_counter}"

    def _compile_assignment(self, statement: Assignment,
                            defined: set[str]) -> None:
        expr = statement.expr
        if isinstance(expr, (NameExpr, NumberExpr)):
            # A pure copy: materialise as a MOVE operation so every
            # source statement has a data-path node.
            operand = self._operand(expr, defined, statement)
            op_id = self._next_op_id(statement.label, 0)
            self.builder.op(op_id, ":=", statement.target, operand)
        else:
            self._compile_expr(expr, statement.target, defined, statement,
                               sub_ref=[0])
        defined.add(statement.target)

    def _compile_expr(self, expr: Expr, target: str, defined: set[str],
                      statement: Assignment, sub_ref: list[int]) -> None:
        """Emit the operation tree bottom-up; root writes ``target``."""
        if isinstance(expr, UnaryExpr):
            operand = self._subexpr_operand(expr.operand, defined, statement,
                                            sub_ref)
            op_id = self._next_op_id(statement.label, sub_ref[0])
            self.builder.op(op_id, expr.op, target, operand)
            return
        if isinstance(expr, BinaryExpr):
            lhs = self._subexpr_operand(expr.lhs, defined, statement, sub_ref)
            rhs = self._subexpr_operand(expr.rhs, defined, statement, sub_ref)
            op_id = self._next_op_id(statement.label, sub_ref[0])
            self.builder.op(op_id, expr.op, target, lhs, rhs)
            return
        raise HDLSemanticError(  # pragma: no cover - grammar prevents this
            f"{self.unit.name}: cannot compile {expr!r}")

    def _subexpr_operand(self, expr: Expr, defined: set[str],
                         statement: Assignment, sub_ref: list[int]):
        if isinstance(expr, (NameExpr, NumberExpr)):
            return self._operand(expr, defined, statement)
        temp = self._next_temp()
        sub_ref[0] += 1
        sub = sub_ref[0]
        # Compile the inner tree into the temporary; its root gets a
        # derived id so labels stay unique.
        inner_statement = Assignment(temp, expr,
                                     label=(f"{statement.label}_{sub}"
                                            if statement.label else None),
                                     line=statement.line)
        self._compile_expr(expr, temp, defined, inner_statement, [0])
        defined.add(temp)
        return temp

    def _operand(self, expr: Expr, defined: set[str],
                 statement: Assignment):
        if isinstance(expr, NumberExpr):
            return expr.value
        if expr.name not in defined:
            raise HDLSemanticError(
                f"{self.unit.name}: line {statement.line}: {expr.name!r} "
                f"used before assignment and not an input")
        return expr.name

    def _materialise_condition(self, expr: Expr, defined: set[str]) -> str:
        condition = "_loop_cond"
        statement = Assignment(condition, expr, label=None, line=0)
        self._compile_assignment(statement, defined)
        return condition


def compile_source(source: str, optimize: bool = False,
                   bits: int = 16) -> DFG:
    """Compile HDL source text into a validated DFG.

    Args:
        source: the behavioural HDL text.
        optimize: run constant folding, common-subexpression
            elimination and dead-code elimination on the result.
        bits: the word width constant folding evaluates at.
    """
    dfg = _Compiler(parse(source)).run()
    if optimize:
        from ..dfg.optimize import optimize as run_passes
        dfg, _ = run_passes(dfg, bits=bits)
    return dfg


def compile_unit(unit: DesignUnit) -> DFG:
    """Compile an already-parsed design."""
    return _Compiler(unit).run()
