"""Tokeniser for the behavioural HDL.

The language is a deliberately small behavioural-VHDL replacement (the
synthesis algorithm only ever sees the DFG the compiler produces, so
any front end with the same output is equivalent — see DESIGN.md §3):

* keywords: ``design input output begin end loop while``
* operators: ``:= + - * / < > <= >= == != & | ^ ~``
* punctuation: ``; : , ( )``
* identifiers, unsigned integer literals, ``--`` line comments.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HDLSyntaxError

KEYWORDS = frozenset({"design", "input", "output", "begin", "end", "loop",
                      "while"})

#: Multi-character operators first so maximal munch works.
_SYMBOLS = [":=", "<=", ">=", "==", "!=", "+", "-", "*", "/", "<", ">",
            "&", "|", "^", "~", ";", ":", ",", "(", ")"]


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str        # "ident", "number", "keyword", or the symbol itself
    text: str
    line: int
    column: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


def tokenize(source: str) -> list[Token]:
    """Tokenise HDL source; raises HDLSyntaxError on illegal characters."""
    tokens: list[Token] = []
    line, column = 1, 1
    index = 0
    length = len(source)
    while index < length:
        ch = source[index]
        if ch == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if ch in " \t\r":
            index += 1
            column += 1
            continue
        if source.startswith("--", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if ch.isalpha() or ch == "_":
            start = index
            while index < length and (source[index].isalnum()
                                      or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, column))
            column += index - start
            continue
        if ch.isdigit():
            start = index
            while index < length and source[index].isdigit():
                index += 1
            tokens.append(Token("number", source[start:index], line, column))
            column += index - start
            continue
        for symbol in _SYMBOLS:
            if source.startswith(symbol, index):
                tokens.append(Token(symbol, symbol, line, column))
                index += len(symbol)
                column += len(symbol)
                break
        else:
            raise HDLSyntaxError(f"illegal character {ch!r}", line, column)
    tokens.append(Token("eof", "", line, column))
    return tokens
