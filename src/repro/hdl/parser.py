"""Recursive-descent parser for the behavioural HDL.

Grammar (EBNF)::

    design     := "design" ident ";" ports "begin" statement* loop? "end"
    ports      := ("input" namelist ";" | "output" namelist ";")*
    namelist   := ident ("," ident)*
    statement  := [ident ":"] ident ":=" expr ";"
    loop       := "loop" "while" expr ";"
    expr       := cmp
    cmp        := addsub (("<"|">"|"<="|">="|"=="|"!=") addsub)?
    addsub     := bitop (("+"|"-") bitop)*
    bitop      := muldiv (("&"|"|"|"^") muldiv)*
    muldiv     := unary (("*"|"/") unary)*
    unary      := "~" unary | "(" expr ")" | ident | number
"""

from __future__ import annotations

from ..errors import HDLSyntaxError
from .ast_nodes import (Assignment, BinaryExpr, DesignUnit, Expr, LoopSpec,
                        NameExpr, NumberExpr, UnaryExpr)
from .lexer import Token, tokenize

_CMP_OPS = ("<", ">", "<=", ">=", "==", "!=")


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # ------------------------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "eof":
            self.position += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise HDLSyntaxError(f"expected {wanted!r}, found "
                                 f"{token.text or 'end of file'!r}",
                                 token.line, token.column)
        return self.advance()

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    # ------------------------------------------------------------------
    def parse_design(self) -> DesignUnit:
        self.expect("keyword", "design")
        name = self.expect("ident").text
        self.expect(";")
        unit = DesignUnit(name)
        while True:
            if self.accept("keyword", "input"):
                unit.inputs.extend(self._namelist())
                self.expect(";")
            elif self.accept("keyword", "output"):
                unit.outputs.extend(self._namelist())
                self.expect(";")
            else:
                break
        self.expect("keyword", "begin")
        while not (self.peek().kind == "keyword"
                   and self.peek().text in ("end", "loop")):
            unit.statements.append(self._statement())
        if self.accept("keyword", "loop"):
            self.expect("keyword", "while")
            token = self.peek()
            condition = self._expr()
            self.expect(";")
            unit.loop = LoopSpec(condition, line=token.line)
        self.expect("keyword", "end")
        self.accept(";")
        self.expect("eof")
        return unit

    def _namelist(self) -> list[str]:
        names = [self.expect("ident").text]
        while self.accept(","):
            names.append(self.expect("ident").text)
        return names

    def _statement(self) -> Assignment:
        first = self.expect("ident")
        label = None
        if self.accept(":"):
            label = first.text
            target = self.expect("ident").text
        else:
            target = first.text
        self.expect(":=")
        expr = self._expr()
        self.expect(";")
        return Assignment(target, expr, label=label, line=first.line)

    # ------------------------------------------------------------------
    def _expr(self) -> Expr:
        lhs = self._addsub()
        token = self.peek()
        if token.kind in _CMP_OPS:
            self.advance()
            rhs = self._addsub()
            return BinaryExpr(token.kind, lhs, rhs)
        return lhs

    def _addsub(self) -> Expr:
        lhs = self._bitop()
        while self.peek().kind in ("+", "-"):
            op = self.advance().kind
            lhs = BinaryExpr(op, lhs, self._bitop())
        return lhs

    def _bitop(self) -> Expr:
        lhs = self._muldiv()
        while self.peek().kind in ("&", "|", "^"):
            op = self.advance().kind
            lhs = BinaryExpr(op, lhs, self._muldiv())
        return lhs

    def _muldiv(self) -> Expr:
        lhs = self._unary()
        while self.peek().kind in ("*", "/"):
            op = self.advance().kind
            lhs = BinaryExpr(op, lhs, self._unary())
        return lhs

    def _unary(self) -> Expr:
        token = self.peek()
        if token.kind == "~":
            self.advance()
            return UnaryExpr("~", self._unary())
        if token.kind == "(":
            self.advance()
            inner = self._expr()
            self.expect(")")
            return inner
        if token.kind == "ident":
            return NameExpr(self.advance().text)
        if token.kind == "number":
            return NumberExpr(int(self.advance().text))
        raise HDLSyntaxError(f"unexpected {token.text or 'end of file'!r} "
                             f"in expression", token.line, token.column)


def parse(source: str) -> DesignUnit:
    """Parse HDL source text into a :class:`DesignUnit`."""
    return _Parser(tokenize(source)).parse_design()
