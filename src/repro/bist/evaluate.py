"""BIST emulation with exact aliasing measurement.

Each session drives a functional unit's operand ports from two LFSRs
and compresses the result stream in a MISR.  The emulation packs the
good machine and up to 63 faulty machines into the 64 bit lanes, runs
them through one compiled circuit, and compares *signatures* — so the
reported coverage accounts for MISR aliasing exactly rather than by the
usual 2^-w approximation (which the results let you verify).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..atpg.faults import full_fault_list
from ..dfg.ops import OpKind
from ..etpn.design import Design
from ..gates.expand import _op_word
from ..gates.netlist import GateNetlist
from ..gates.simulate import FULL, CompiledCircuit
from ..gates.words import input_word
from .lfsr import LFSR, LaneMISR
from .plan import BistPlan, bilbo_overhead_mm2, plan_bist

_FAULT_LANES = 63


def unit_netlist(kind: OpKind, bits: int) -> GateNetlist:
    """A standalone, pruned netlist computing one operation kind.

    Pruning drops structurally unobservable gates (a truncating adder's
    final carry chain, for instance) so the fault universe contains
    only testable sites.
    """
    from ..gates.prune import prune_unobservable

    net = GateNetlist(f"bist_{kind.name}_{bits}")
    a = input_word(net, "a", bits)
    b = input_word(net, "b", bits)
    out = _op_word(net, kind, a, b)
    for index, gid in enumerate(out):
        net.set_output(f"o[{index}]", gid)
    return prune_unobservable(net)


@dataclass
class ModuleBistResult:
    """One session's outcome."""

    kind: OpKind
    total_faults: int = 0
    stream_detected: int = 0
    signature_detected: int = 0
    cycles: int = 0

    @property
    def aliased(self) -> int:
        """Faults visible in the stream but lost in the signature."""
        return self.stream_detected - self.signature_detected

    @property
    def coverage(self) -> float:
        if not self.total_faults:
            return 0.0
        return 100.0 * self.signature_detected / self.total_faults


def evaluate_unit_bist(kind: OpKind, bits: int, patterns: int = 255,
                       seed_a: int = 0b0101, seed_b: int = 0b0011,
                       misr_width: int | None = None) -> ModuleBistResult:
    """Emulate one BIST session on a unit of the given kind."""
    net = unit_netlist(kind, bits)
    circuit = CompiledCircuit(net)
    faults = full_fault_list(net)
    # A repeated LFSR stream cancels in the linear MISR (an even number
    # of identical difference streams XORs to zero), so a session never
    # applies more patterns than the generator's period.
    patterns = min(patterns, 2 ** bits - 1)
    result = ModuleBistResult(kind=kind, total_faults=len(faults),
                              cycles=patterns)
    # Signature registers are conventionally wider than the data path:
    # aliasing probability scales with 2^-width.
    misr_width = misr_width or (bits + 4)

    # Pre-compute the LFSR pattern streams (shared by all fault groups).
    lfsr_a = LFSR(bits, seed=seed_a)
    lfsr_b = LFSR(bits, seed=seed_b)
    stream = [(lfsr_a.step(), lfsr_b.step()) for _ in range(patterns)]

    stream_detected = 0
    signature_detected = 0
    for start in range(0, len(faults), _FAULT_LANES):
        group = faults[start:start + _FAULT_LANES]
        sites = tuple(sorted({f.gid for f in group}))
        site_index = {gid: k for k, gid in enumerate(sites)}
        nmask = [FULL] * len(sites)
        fval = [0] * len(sites)
        for offset, fault in enumerate(group):
            lane_bit = 1 << (offset + 1)
            nmask[site_index[fault.gid]] &= ~lane_bit & FULL
            if fault.stuck:
                fval[site_index[fault.gid]] |= lane_bit
        fn = circuit.cycle_fn(sites)
        misr = LaneMISR(misr_width)
        stream_diff = 0
        state: list[int] = []
        for a_val, b_val in stream:
            pi = []
            for name in circuit.input_names:
                word, index = name[0], int(name[2:-1])
                value = a_val if word == "a" else b_val
                pi.append(FULL if (value >> index) & 1 else 0)
            outs, state = fn(pi, state, nmask, fval)
            for value in outs:
                good = FULL if value & 1 else 0
                stream_diff |= value ^ good
            misr.absorb(outs)
        signature_diff = misr.differing_lanes()
        for offset, fault in enumerate(group):
            lane_bit = 1 << (offset + 1)
            if stream_diff & lane_bit:
                stream_detected += 1
                if signature_diff & lane_bit:
                    signature_detected += 1
    result.stream_detected = stream_detected
    result.signature_detected = signature_detected
    return result


@dataclass
class PlanBistResult:
    """Aggregate BIST outcome of a whole design."""

    plan: BistPlan = field(default_factory=BistPlan)
    sessions: list[ModuleBistResult] = field(default_factory=list)
    overhead_mm2: float = 0.0

    @property
    def total_faults(self) -> int:
        return sum(s.total_faults for s in self.sessions)

    @property
    def detected(self) -> int:
        return sum(s.signature_detected for s in self.sessions)

    @property
    def aliased(self) -> int:
        return sum(s.aliased for s in self.sessions)

    @property
    def coverage(self) -> float:
        if not self.total_faults:
            return 0.0
        return 100.0 * self.detected / self.total_faults

    @property
    def test_cycles(self) -> int:
        return sum(s.cycles for s in self.sessions)


def evaluate_design_bist(design: Design, bits: int,
                         patterns: int = 255) -> PlanBistResult:
    """Plan and emulate BIST for every functional unit of a design.

    A merged unit runs one sub-session per operation kind it implements
    (the BIST controller would select each in turn).  Conflicted
    sessions (self-adjacent registers) still run — the conflict is
    reported through the plan, mirroring how the paper treats
    self-loops as a quality problem rather than a hard failure.
    """
    plan = plan_bist(design.datapath)
    result = PlanBistResult(plan=plan,
                            overhead_mm2=bilbo_overhead_mm2(plan, bits))
    for module in design.datapath.modules():
        kinds = sorted({design.dfg.operation(op).kind for op in module.ops},
                       key=lambda k: k.name)
        for kind in kinds:
            result.sessions.append(evaluate_unit_bist(kind, bits, patterns))
    return result
