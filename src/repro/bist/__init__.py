"""Built-in self-test: LFSR/MISR machinery, BILBO planning, emulation.

An extension following the paper's related work (Papachristou et al.,
Avra): the structural data path the synthesis algorithm produces maps
directly onto BILBO-style self-test sessions, and the self-loops the
balance principle avoids are exactly the sessions that conflict.
"""

from .evaluate import (ModuleBistResult, PlanBistResult,
                       evaluate_design_bist, evaluate_unit_bist,
                       unit_netlist)
from .lfsr import LFSR, LaneMISR, PRIMITIVE_TAPS, taps_for
from .plan import BistPlan, BistSession, bilbo_overhead_mm2, plan_bist

__all__ = [
    "LFSR",
    "LaneMISR",
    "PRIMITIVE_TAPS",
    "BistPlan",
    "BistSession",
    "ModuleBistResult",
    "PlanBistResult",
    "bilbo_overhead_mm2",
    "evaluate_design_bist",
    "evaluate_unit_bist",
    "plan_bist",
    "taps_for",
    "unit_netlist",
]
