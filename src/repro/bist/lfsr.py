"""LFSRs and MISRs over GF(2) — the BIST pattern/signature machinery.

Fibonacci LFSRs with primitive feedback polynomials generate the
pseudo-random test patterns; multiple-input signature registers (MISRs)
compress output streams.  The MISR implementation is *lane-parallel*:
every state bit is a 64-lane integer, so one MISR instance compresses
the good machine and up to 63 faulty machines simultaneously — exactly
matching the packed fault simulator, which makes exact aliasing
measurement cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ATPGError

#: Primitive polynomial tap positions (1-based exponents, excluding x^0)
#: for common widths, from the standard tables.
PRIMITIVE_TAPS = {
    2: (2, 1), 3: (3, 2), 4: (4, 3), 5: (5, 3), 6: (6, 5), 7: (7, 6),
    8: (8, 6, 5, 4), 9: (9, 5), 10: (10, 7), 11: (11, 9),
    12: (12, 11, 10, 4), 13: (13, 12, 11, 8), 14: (14, 13, 12, 2),
    15: (15, 14), 16: (16, 15, 13, 4), 17: (17, 14), 18: (18, 11),
    20: (20, 17), 24: (24, 23, 22, 17), 32: (32, 22, 2, 1),
}


def taps_for(width: int) -> tuple[int, ...]:
    """Primitive taps for ``width``; raises for unsupported widths."""
    try:
        return PRIMITIVE_TAPS[width]
    except KeyError:
        raise ATPGError(f"no primitive polynomial stored for width "
                        f"{width}") from None


@dataclass
class LFSR:
    """A Fibonacci LFSR producing ``width``-bit pseudo-random words."""

    width: int
    seed: int = 1
    taps: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.taps:
            self.taps = taps_for(self.width)
        mask = (1 << self.width) - 1
        self.state = self.seed & mask
        if self.state == 0:
            self.state = 1      # the all-zero state is a fixed point

    def step(self) -> int:
        """Advance one clock; return the new state."""
        feedback = 0
        for tap in self.taps:
            feedback ^= (self.state >> (tap - 1)) & 1
        self.state = ((self.state << 1) | feedback) & ((1 << self.width) - 1)
        if self.state == 0:  # pragma: no cover - primitive taps prevent it
            self.state = 1
        return self.state

    def sequence(self, count: int) -> list[int]:
        """The next ``count`` states."""
        return [self.step() for _ in range(count)]

    def period(self) -> int:
        """Cycle length from the current state (2^width - 1 when
        primitive) — walks the orbit, so only use on small widths."""
        start = self.state
        steps = 0
        while True:
            self.step()
            steps += 1
            if self.state == start:
                return steps


@dataclass
class LaneMISR:
    """A MISR whose every bit carries 64 independent lanes.

    ``absorb`` takes one lane-packed integer per input bit position;
    the signature is read back per lane.
    """

    width: int
    taps: tuple[int, ...] = ()
    state: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.taps:
            self.taps = taps_for(self.width)
        if not self.state:
            self.state = [0] * self.width

    def absorb(self, inputs: list[int]) -> None:
        """One clock: shift, feed back, and XOR the input bits in.

        ``inputs`` may be shorter than the MISR (remaining bits absorb
        nothing) but not longer.
        """
        if len(inputs) > self.width:
            raise ATPGError(f"MISR width {self.width} cannot absorb "
                            f"{len(inputs)} bits")
        feedback = 0
        for tap in self.taps:
            feedback ^= self.state[tap - 1]
        shifted = [feedback] + self.state[:-1]
        for index, value in enumerate(inputs):
            shifted[index] ^= value
        self.state = shifted

    def signature(self, lane: int) -> int:
        """The ``width``-bit signature held by one lane."""
        sig = 0
        for index, bits in enumerate(self.state):
            if (bits >> lane) & 1:
                sig |= 1 << index
        return sig

    def differing_lanes(self) -> int:
        """Bit mask of lanes whose signature differs from lane 0."""
        diff = 0
        for bits in self.state:
            good = -(bits & 1) & ((1 << 64) - 1)   # broadcast lane 0
            diff |= bits ^ good
        return diff & ~1 & ((1 << 64) - 1)
