"""BIST session planning (the Papachristou/Avra related-work direction).

A BILBO-style self-test plan assigns register roles per test session:
for each functional module, the registers feeding its input ports act
as test-pattern generators (TPGs) and a register at its output collects
the signature (MISR).  A register needed as both TPG and MISR in the
same session is a *self-adjacent* conflict — precisely the self-loop
structure the synthesis algorithm tries to avoid, so the number of
conflicted sessions is itself a testability verdict on a design.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..etpn.datapath import DataPath, NodeKind


@dataclass(frozen=True)
class BistSession:
    """One self-test session: a module with its TPG/MISR assignments.

    ``conflicts`` lists registers required on both sides (BILBO cannot
    be TPG and MISR simultaneously — the session then needs the loop
    broken or an extra register).
    """

    module: str
    tpg_registers: tuple[str, ...]
    misr_registers: tuple[str, ...]
    conflicts: tuple[str, ...]

    @property
    def self_testable(self) -> bool:
        return not self.conflicts


@dataclass
class BistPlan:
    """The complete plan plus its register-role summary."""

    sessions: list[BistSession] = field(default_factory=list)

    def conflicted_sessions(self) -> list[BistSession]:
        return [s for s in self.sessions if not s.self_testable]

    def tpg_registers(self) -> set[str]:
        return {r for s in self.sessions for r in s.tpg_registers}

    def misr_registers(self) -> set[str]:
        return {r for s in self.sessions for r in s.misr_registers}

    def bilbo_registers(self) -> set[str]:
        """Registers needing full BILBO capability (both roles, across
        different sessions — legal, unlike within one session)."""
        return self.tpg_registers() & self.misr_registers()

    def summary(self) -> dict[str, int]:
        return {
            "sessions": len(self.sessions),
            "conflicted": len(self.conflicted_sessions()),
            "tpg": len(self.tpg_registers()),
            "misr": len(self.misr_registers()),
            "bilbo": len(self.bilbo_registers()),
        }


def plan_bist(datapath: DataPath) -> BistPlan:
    """Derive the session plan of a data path."""
    plan = BistPlan()
    for module in datapath.modules():
        sources = {a.src for a in datapath.incoming(module.node_id)
                   if datapath.nodes[a.src].kind == NodeKind.REGISTER}
        sinks = {a.dst for a in datapath.outgoing(module.node_id)
                 if datapath.nodes[a.dst].kind == NodeKind.REGISTER}
        conflicts = tuple(sorted(sources & sinks))
        plan.sessions.append(BistSession(
            module=module.node_id,
            tpg_registers=tuple(sorted(sources)),
            misr_registers=tuple(sorted(sinks)),
            conflicts=conflicts))
    return plan


def bilbo_overhead_mm2(plan: BistPlan, bits: int,
                       per_bit_mm2: float = 0.0012) -> float:
    """Extra area of converting registers to TPG/MISR/BILBO cells.

    TPG or MISR conversion costs one XOR+mux per bit; a full BILBO cell
    roughly twice that.  The default per-bit figure matches the module
    library's scale.
    """
    single_role = ((plan.tpg_registers() | plan.misr_registers())
                   - plan.bilbo_registers())
    return (len(single_role) * bits * per_bit_mm2
            + len(plan.bilbo_registers()) * bits * 2 * per_bit_mm2)
