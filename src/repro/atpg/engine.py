"""The combined ATPG engine: random phase, then deterministic PODEM.

This is the test-generation flow the paper's testability assumptions
describe (§2): random test generation covers the bulk of the fault
list cheaply, and a deterministic sequential generator (PODEM over
time-frame expansion) targets what remains.  Designs with better
balanced controllability/observability and shorter sequential depth
need fewer time frames and fewer backtracks — which is exactly how the
synthesis algorithm's choices surface in the reported numbers.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from ..gates.netlist import GateNetlist
from ..gates.simulate import CompiledCircuit
from ..runtime.budget import Budget
from .fault_sim import FaultSimulator
from .faults import Fault, full_fault_list, sample_faults
from .podem import PodemEngine
from .random_tpg import RandomPhaseConfig, random_phase
from .results import ATPGResult
from .unroll import unroll


@dataclass
class ATPGConfig:
    """Budget and policy knobs of a full ATPG run."""

    seed: int = 2026
    random: RandomPhaseConfig = field(default_factory=RandomPhaseConfig)
    #: Deterministic phase tries 1..max_frames time frames per fault.
    max_frames: int = 6
    max_backtracks: int = 48
    #: Sample this fraction of the fault universe (1.0 = all faults).
    fault_fraction: float = 1.0
    #: Skip the deterministic phase entirely (random-only ATPG).
    deterministic: bool = True
    #: Prune faults the sequential constant-propagation analysis proves
    #: untestable before spending any random/PODEM budget on them.
    analysis_prune: bool = True
    #: Wall-clock allowance for the whole run (None = unlimited); a
    #: shared :class:`Budget` passed to :func:`run_atpg` wins over this.
    wall_seconds: float | None = None


def run_atpg(netlist: GateNetlist, config: ATPGConfig | None = None,
             budget: Budget | None = None) -> ATPGResult:
    """Run the full ATPG flow on a gate netlist.

    When ``budget`` (or ``config.wall_seconds``) is given, every phase —
    random TPG, fault simulation and PODEM — charges the same budget and
    stops cleanly at its next boundary once it is exhausted; faults
    never attempted are counted as aborted, and the result carries
    ``budget_exhausted`` provenance instead of the run hanging or dying.
    """
    config = config or ATPGConfig()
    if budget is None and config.wall_seconds is not None:
        budget = Budget(wall_seconds=config.wall_seconds)
    rng = random.Random(config.seed)
    started = time.perf_counter()

    circuit = CompiledCircuit(netlist)
    faults = full_fault_list(netlist)
    faults = sample_faults(faults, config.fault_fraction, seed=config.seed)
    result = ATPGResult(total_faults=len(faults),
                        gate_count=len(netlist),
                        dff_count=len(netlist.dffs()))
    if config.analysis_prune:
        # Stuck-at faults matching a proved-constant line are
        # undetectable by construction; report them instead of burning
        # random/PODEM budget proving it the hard way.  They stay in
        # ``total_faults`` so coverage denominators are comparable with
        # and without pruning.
        from .prune import constant_lines, prune_untestable
        faults, pruned = prune_untestable(faults, constant_lines(netlist))
        result.untestable_by_analysis = len(pruned)

    simulator = FaultSimulator(circuit, budget=budget)
    random_result = random_phase(simulator, faults, config.random, rng,
                                 budget=budget)
    result.detected_random = len(random_result.detected)
    result.random_cycles = random_result.test_cycles
    result.random_effort = (simulator.stats.cycles_simulated
                            * max(1, netlist.combinational_count() // 100))

    remaining = sorted(set(faults) - random_result.detected)
    if config.deterministic and remaining:
        _deterministic_phase(netlist, circuit, simulator, remaining,
                             config, rng, result, budget)
    if budget is not None and budget.exhausted():
        result.budget_exhausted = True
        result.budget_reason = budget.reason or ""
    result.tg_seconds = time.perf_counter() - started
    return result


def _deterministic_phase(netlist: GateNetlist, circuit: CompiledCircuit,
                         simulator: FaultSimulator, remaining: list[Fault],
                         config: ATPGConfig, rng: random.Random,
                         result: ATPGResult,
                         budget: Budget | None = None) -> None:
    engines: dict[int, PodemEngine] = {}

    def engine_for(frames: int) -> PodemEngine:
        if frames not in engines:
            engines[frames] = PodemEngine(
                unroll(netlist, frames),
                max_backtracks=config.max_backtracks,
                budget=budget)
        return engines[frames]

    alive = list(remaining)
    while alive:
        if budget is not None and budget.exhausted():
            # Remaining faults were never attempted under this budget:
            # count them as aborted so the coverage accounting closes.
            result.aborted_faults += len(alive)
            result.budget_exhausted = True
            result.budget_reason = budget.reason or ""
            return
        fault = alive.pop(0)
        test_sequence = None
        aborted_any = False
        ladder = sorted({max(2, config.max_frames // 4),
                         max(2, config.max_frames // 2),
                         config.max_frames})
        for frames in ladder:
            engine = engine_for(frames)
            outcome = engine.generate(fault)
            result.deterministic_effort += outcome.stats.effort
            if outcome.success:
                test_sequence = _assignment_to_sequence(
                    circuit, outcome.assignment, frames, rng)
                break
            if outcome.aborted:
                aborted_any = True
        if test_sequence is None:
            if aborted_any:
                result.aborted_faults += 1
            else:
                result.untestable_faults += 1
            continue
        caught = simulator.run_sequence(test_sequence, [fault] + alive)
        if fault in caught:
            result.deterministic_cycles += len(test_sequence)
            result.detected_deterministic += 1 + len(caught - {fault})
            alive = [f for f in alive if f not in caught]
        else:
            # The model guarantees detection; reaching here indicates a
            # modelling divergence worth counting, not hiding.
            result.aborted_faults += 1


def _assignment_to_sequence(circuit: CompiledCircuit,
                            assignment: dict[tuple[int, str], int],
                            frames: int,
                            rng: random.Random) -> list[dict[str, int]]:
    """Expand a PODEM PI assignment into input vectors (X -> random)."""
    sequence = []
    for frame in range(frames):
        vector = {}
        for name in circuit.input_names:
            value = assignment.get((frame, name))
            vector[name] = rng.getrandbits(1) if value is None else value
        sequence.append(vector)
    return sequence
