"""ATPG outcome containers."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ATPGResult:
    """Everything one ATPG run reports.

    The paper's three test columns map to:

    * ``fault_coverage`` — "Fault coverage";
    * ``tg_effort`` (implications + weighted backtracks + random-phase
      simulation work) and ``tg_seconds`` (wall clock) — "Test
      generation time" (1998 CPU seconds are not reproducible, so the
      effort metric is primary and seconds are informational);
    * ``test_cycles`` — "Test generated cycle": clock cycles needed to
      apply the final test set.
    """

    total_faults: int = 0
    detected_random: int = 0
    detected_deterministic: int = 0
    aborted_faults: int = 0
    untestable_faults: int = 0
    #: Faults proved untestable by static analysis (sequential ternary
    #: constant propagation) before any pattern was simulated; they
    #: stay in ``total_faults`` but never consume random or PODEM
    #: budget.  Disjoint from ``untestable_faults``, which PODEM proves
    #: the expensive way.
    untestable_by_analysis: int = 0
    random_cycles: int = 0
    deterministic_cycles: int = 0
    random_effort: int = 0
    deterministic_effort: int = 0
    tg_seconds: float = 0.0
    gate_count: int = 0
    dff_count: int = 0
    #: True when a shared :class:`~repro.runtime.budget.Budget` ran out
    #: mid-run; the counts above then describe a well-formed *partial*
    #: run (unattempted faults are folded into ``aborted_faults``).
    budget_exhausted: bool = False
    #: Why the budget exhausted (``deadline``/``steps``/``cancelled``).
    budget_reason: str = ""

    @property
    def detected(self) -> int:
        return self.detected_random + self.detected_deterministic

    @property
    def fault_coverage(self) -> float:
        """Detected fraction of the fault universe, in percent."""
        if not self.total_faults:
            return 0.0
        return 100.0 * self.detected / self.total_faults

    @property
    def test_cycles(self) -> int:
        """Total clock cycles of the generated test set."""
        return self.random_cycles + self.deterministic_cycles

    @property
    def tg_effort(self) -> int:
        """Scalar test-generation effort."""
        return self.random_effort + self.deterministic_effort

    def summary(self) -> dict[str, float]:
        """Flat dict used by tables and EXPERIMENTS.md."""
        return {
            "faults": self.total_faults,
            "coverage_pct": round(self.fault_coverage, 2),
            "tg_effort": self.tg_effort,
            "tg_seconds": round(self.tg_seconds, 3),
            "test_cycles": self.test_cycles,
            "gates": self.gate_count,
            "pruned_by_analysis": self.untestable_by_analysis,
            "budget_exhausted": self.budget_exhausted,
        }
