"""Random test generation: the ATPG's first phase (paper §2).

"Many ATPG's start by using random test generation to cover as many
faults as possible and then switch to deterministic test generation."

Sequences of weighted-random vectors are fault-simulated with fault
dropping; a sequence joins the test set only when it detects at least
one not-yet-detected fault, and the random phase ends after a fixed
number of consecutive useless sequences (the usual saturation rule).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..gates.simulate import CompiledCircuit
from ..runtime.budget import Budget
from .fault_sim import FaultSimulator
from .faults import Fault


@dataclass
class RandomPhaseConfig:
    """Knobs of the random phase.

    Attributes:
        max_sequences: hard budget of candidate sequences.
        saturation: stop after this many consecutive sequences that
            detect nothing new.
        sequence_length: cycles per sequence.
        load_bias: probability a register load-enable bit is 1 — biased
            high so data actually moves through the machine.
        select_bias: probability a mux-select / op-select bit is 1.
        data_bias: probability a data bit is 1.
    """

    max_sequences: int = 48
    saturation: int = 8
    sequence_length: int = 24
    load_bias: float = 0.75
    select_bias: float = 0.4
    data_bias: float = 0.5


@dataclass
class RandomPhaseResult:
    """Outcome of the random phase."""

    detected: set[Fault] = field(default_factory=set)
    kept_sequences: list[list[dict[str, int]]] = field(default_factory=list)
    sequences_tried: int = 0
    #: True when the phase stopped early on an exhausted budget.
    budget_exhausted: bool = False

    @property
    def test_cycles(self) -> int:
        """Cycles of the kept (useful) sequences."""
        return sum(len(seq) for seq in self.kept_sequences)


def _bit_bias(name: str, config: RandomPhaseConfig) -> float:
    if name.endswith("_load"):
        return config.load_bias
    if "_sel" in name or "_op_" in name:
        return config.select_bias
    return config.data_bias


def random_sequence(circuit: CompiledCircuit, config: RandomPhaseConfig,
                    rng: random.Random) -> list[dict[str, int]]:
    """One weighted-random input sequence (single-bit values)."""
    biases = [(name, _bit_bias(name, config))
              for name in circuit.input_names]
    sequence = []
    for _ in range(config.sequence_length):
        sequence.append({name: int(rng.random() < bias)
                         for name, bias in biases})
    return sequence


def random_phase(simulator: FaultSimulator, faults: list[Fault],
                 config: RandomPhaseConfig,
                 rng: random.Random,
                 budget: Budget | None = None) -> RandomPhaseResult:
    """Run the random phase with fault dropping.

    An exhausted ``budget`` ends the phase at the next sequence
    boundary; the partial result (whatever was detected so far) is
    tagged ``budget_exhausted``.
    """
    remaining = sorted(faults)
    result = RandomPhaseResult()
    useless = 0
    while (remaining and result.sequences_tried < config.max_sequences
           and useless < config.saturation):
        if budget is not None and budget.exhausted():
            result.budget_exhausted = True
            break
        sequence = random_sequence(simulator.circuit, config, rng)
        result.sequences_tried += 1
        caught = simulator.run_sequence(sequence, remaining)
        if caught:
            useless = 0
            result.detected |= caught
            result.kept_sequences.append(sequence)
            remaining = [f for f in remaining if f not in caught]
        else:
            useless += 1
    return result
