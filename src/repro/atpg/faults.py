"""Single stuck-at fault lists with light equivalence collapsing.

The fault universe is stuck-at-0/1 on every gate output (the classic
output-fault model).  Collapsing drops the structurally useless
entries: faults on constant generators that match the constant, and
faults on BUF/NOT outputs (equivalent to a fault on the driver —
dominance through an inverter flips polarity, but either way the
driver-site fault covers it).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gates.netlist import GateNetlist, GateType


@dataclass(frozen=True, order=True)
class Fault:
    """Stuck-at fault on a gate's output net."""

    gid: int
    stuck: int  # 0 or 1

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"g{self.gid}/sa{self.stuck}"


def full_fault_list(netlist: GateNetlist, collapse: bool = True) -> list[Fault]:
    """Enumerate the (collapsed) stuck-at fault universe of a netlist."""
    faults: list[Fault] = []
    for gate in netlist.gates:
        if gate.gtype == GateType.CONST0:
            faults.append(Fault(gate.gid, 1))
            if not collapse:
                faults.append(Fault(gate.gid, 0))
            continue
        if gate.gtype == GateType.CONST1:
            faults.append(Fault(gate.gid, 0))
            if not collapse:
                faults.append(Fault(gate.gid, 1))
            continue
        if collapse and gate.gtype in (GateType.BUF, GateType.NOT):
            continue
        faults.append(Fault(gate.gid, 0))
        faults.append(Fault(gate.gid, 1))
    return faults


def sample_faults(faults: list[Fault], fraction: float,
                  seed: int = 0) -> list[Fault]:
    """Deterministic random sample of a fault list (for 16-bit runs).

    Args:
        faults: the full list.
        fraction: in (0, 1]; 1.0 returns the list unchanged.
        seed: sampling seed.

    Returns:
        A sorted sample of ``ceil(fraction * len(faults))`` faults.
    """
    import math
    import random

    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if fraction == 1.0:
        return list(faults)
    rng = random.Random(seed)
    count = math.ceil(fraction * len(faults))
    return sorted(rng.sample(faults, count))
