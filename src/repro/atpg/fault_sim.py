"""Parallel-fault sequential fault simulation.

Lane 0 carries the good machine; lanes 1..63 carry up to 63 faulty
machines.  Each fault is injected only in its own lane via the compiled
simulator's per-site mask hooks, every machine evolves its own register
state in its own lane, and a fault is *detected* the first cycle any
primary output differs from lane 0.  This is the PROOFS-style scheme,
compiled to straight-line Python per fault group.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gates.simulate import FULL, CompiledCircuit
from ..runtime.budget import Budget
from .faults import Fault

_LANES = 64
_FAULT_LANES = _LANES - 1


@dataclass
class FaultSimStats:
    """Work counters for the effort metric."""

    cycles_simulated: int = 0
    groups_simulated: int = 0


class FaultSimulator:
    """Simulates input sequences against a set of candidate faults."""

    def __init__(self, circuit: CompiledCircuit,
                 budget: Budget | None = None) -> None:
        self.circuit = circuit
        self.stats = FaultSimStats()
        self.budget = budget

    # ------------------------------------------------------------------
    def run_sequence(self, vectors: list[dict[str, int]],
                     faults: list[Fault]) -> set[Fault]:
        """Return the subset of ``faults`` the sequence detects.

        ``vectors`` hold single-bit values (0/1) per input per cycle;
        they are broadcast to all lanes internally.  All machines start
        from the all-zero reset state.
        """
        detected: set[Fault] = set()
        for start in range(0, len(faults), _FAULT_LANES):
            if self.budget is not None and self.budget.exhausted():
                break  # partial detection set; caller sees the budget
            group = faults[start:start + _FAULT_LANES]
            detected |= self._run_group(vectors, group)
        return detected

    def _run_group(self, vectors: list[dict[str, int]],
                   group: list[Fault]) -> set[Fault]:
        sites = tuple(sorted({f.gid for f in group}))
        site_index = {gid: k for k, gid in enumerate(sites)}
        nmask = [FULL] * len(sites)
        fval = [0] * len(sites)
        for lane_offset, fault in enumerate(group):
            lane_bit = 1 << (lane_offset + 1)   # lane 0 = good machine
            k = site_index[fault.gid]
            nmask[k] &= ~lane_bit & FULL
            if fault.stuck:
                fval[k] |= lane_bit
        fn = self.circuit.cycle_fn(sites)
        state = self.circuit.zero_state()
        detected_lanes = 0
        all_lanes = sum(1 << (i + 1) for i in range(len(group)))
        self.stats.groups_simulated += 1
        budget = self.budget
        for cycle in vectors:
            if budget is not None and not budget.charge():
                break
            pi = [(FULL if cycle.get(name, 0) & 1 else 0)
                  for name in self.circuit.input_names]
            outs, state = fn(pi, state, nmask, fval)
            for value in outs:
                good = FULL if value & 1 else 0
                detected_lanes |= value ^ good
            self.stats.cycles_simulated += 1
            if (detected_lanes & all_lanes) == all_lanes:
                break
        result = set()
        for lane_offset, fault in enumerate(group):
            if detected_lanes & (1 << (lane_offset + 1)):
                result.add(fault)
        return result

    # ------------------------------------------------------------------
    def good_outputs(self, vectors: list[dict[str, int]]
                     ) -> list[dict[str, int]]:
        """Fault-free per-cycle outputs (single-bit values)."""
        broadcast = [{k: (FULL if v & 1 else 0) for k, v in cyc.items()}
                     for cyc in vectors]
        outs, _ = self.circuit.run(broadcast)
        return [{k: v & 1 for k, v in cyc.items()} for cyc in outs]
