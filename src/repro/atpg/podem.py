"""PODEM deterministic test generation over the unrolled model.

Classic PODEM (Goel 1981) adapted to the good/faulty twin-machine
encoding: every line carries a pair of 3-valued signals (good machine,
faulty machine), a D is a line where the two are binary and different,
the fault site's faulty value is pinned to the stuck value in every
frame, and decisions are made only at primary inputs with trail-based
undo.  Effort is counted in implications (gate re-evaluations) and
backtracks — the units the experiment harness reports as test
generation effort.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ATPGError
from ..runtime.budget import Budget
from ..runtime.chaos import chaos_point
from .faults import Fault
from .unroll import (OP_AND, OP_BUF, OP_CONST0, OP_CONST1, OP_NAND, OP_NOR,
                     OP_NOT, OP_OR, OP_PI, OP_XNOR, OP_XOR, UnrolledCircuit)

ZERO, ONE, X = 0, 1, 2

#: Controlling value and output inversion per gate op (None = no
#: controlling value, e.g. XOR).
_CONTROL = {
    OP_AND: (ZERO, False), OP_NAND: (ZERO, True),
    OP_OR: (ONE, False), OP_NOR: (ONE, True),
    OP_BUF: (None, False), OP_NOT: (None, True),
    OP_XOR: (None, False), OP_XNOR: (None, True),
}


def _eval3(op: int, values: list[int]) -> int:
    """3-valued evaluation of one gate."""
    if op == OP_CONST0:
        return ZERO
    if op == OP_CONST1:
        return ONE
    if op == OP_BUF:
        return values[0]
    if op == OP_NOT:
        v = values[0]
        return X if v == X else 1 - v
    if op in (OP_AND, OP_NAND):
        if ZERO in values:
            result = ZERO
        elif X in values:
            result = X
        else:
            result = ONE
        if op == OP_NAND and result != X:
            result = 1 - result
        return result
    if op in (OP_OR, OP_NOR):
        if ONE in values:
            result = ONE
        elif X in values:
            result = X
        else:
            result = ZERO
        if op == OP_NOR and result != X:
            result = 1 - result
        return result
    if op in (OP_XOR, OP_XNOR):
        if X in values:
            return X
        result = 0
        for v in values:
            result ^= v
        if op == OP_XNOR:
            result = 1 - result
        return result
    raise ATPGError(f"cannot evaluate op {op}")


@dataclass
class PodemStats:
    """Effort counters of one generation attempt."""

    implications: int = 0
    backtracks: int = 0
    decisions: int = 0

    @property
    def effort(self) -> int:
        """Scalar effort: implications plus heavily-weighted backtracks."""
        return self.implications + 10 * self.backtracks


@dataclass
class PodemResult:
    """Outcome of one PODEM run."""

    success: bool
    #: (frame, input name) -> bit, for assigned PIs only.
    assignment: dict[tuple[int, str], int] = field(default_factory=dict)
    stats: PodemStats = field(default_factory=PodemStats)
    aborted: bool = False
    #: Why the attempt gave up: ``"effort_limit"`` (backtrack/implication
    #: ceiling) or ``"budget_exhausted"`` (shared wall-clock/step budget).
    abort_reason: str = ""


class PodemEngine:
    """Runs PODEM for faults on one unrolled circuit."""

    def __init__(self, model: UnrolledCircuit,
                 max_backtracks: int = 64,
                 max_implications: int = 2_000_000,
                 budget: Budget | None = None) -> None:
        self.model = model
        self.max_backtracks = max_backtracks
        self.max_implications = max_implications
        self.budget = budget

    # ------------------------------------------------------------------
    def generate(self, fault: Fault) -> PodemResult:
        """Attempt to generate a test for ``fault``."""
        model = self.model
        size = model.size
        self.good = [X] * size
        self.faulty = [X] * size
        self.sites = set(model.site_uids.get(fault.gid, []))
        if not self.sites:
            raise ATPGError(f"fault {fault} has no site in the model")
        self.stuck = fault.stuck
        self.stats = PodemStats()
        self._trail: list[tuple[int, int, int]] = []
        self._pin_and_init()

        decisions: list[tuple[int, int, bool, int]] = []
        result = PodemResult(False, stats=self.stats)

        budget = self.budget
        while True:
            chaos_point("atpg.podem_step", budget)
            if budget is not None and not budget.charge():
                result.aborted = True
                result.abort_reason = "budget_exhausted"
                return result
            if self.stats.backtracks > self.max_backtracks \
                    or self.stats.implications > self.max_implications:
                result.aborted = True
                result.abort_reason = "effort_limit"
                return result
            if self._detected():
                result.success = True
                result.assignment = {
                    model.pi_names[uid]: self.good[uid]
                    for uid in model.pi_names if self.good[uid] != X}
                return result
            objective = self._objective()
            if objective is not None:
                pi = self._backtrace(*objective)
                if pi is not None:
                    uid, value = pi
                    decisions.append((uid, value, False, len(self._trail)))
                    self.stats.decisions += 1
                    self._assign(uid, value)
                    continue
            # Dead end: flip the most recent untried decision.
            flipped = False
            while decisions:
                uid, value, tried, mark = decisions.pop()
                self._undo_to(mark)
                self.stats.backtracks += 1
                if not tried:
                    decisions.append((uid, 1 - value, True, mark))
                    self._assign(uid, 1 - value)
                    flipped = True
                    break
            if not flipped:
                return result

    # ------------------------------------------------------------------
    # Value maintenance
    # ------------------------------------------------------------------
    def _pin_and_init(self) -> None:
        """Evaluate constants and pin the faulty value at every site."""
        model = self.model
        for uid in range(model.size):
            op = model.ops[uid]
            if op == OP_CONST0:
                self.good[uid] = ZERO
                self.faulty[uid] = ZERO
            elif op == OP_CONST1:
                self.good[uid] = ONE
                self.faulty[uid] = ONE
            elif op != OP_PI:
                values_g = [self.good[f] for f in model.fanins[uid]]
                values_f = [self.faulty[f] for f in model.fanins[uid]]
                self.good[uid] = _eval3(op, values_g)
                self.faulty[uid] = _eval3(op, values_f)
                self.stats.implications += 1
            if uid in self.sites:
                self.faulty[uid] = self.stuck

    def _assign(self, uid: int, value: int) -> None:
        """Set a PI and propagate (event-driven, trail-recorded)."""
        self._set(uid, value, value if uid not in self.sites else self.stuck)
        queue = list(self.model.fanouts[uid])
        while queue:
            current = queue.pop()
            op = self.model.ops[current]
            values_g = [self.good[f] for f in self.model.fanins[current]]
            values_f = [self.faulty[f] for f in self.model.fanins[current]]
            new_g = _eval3(op, values_g)
            new_f = (self.stuck if current in self.sites
                     else _eval3(op, values_f))
            self.stats.implications += 1
            if new_g != self.good[current] or new_f != self.faulty[current]:
                self._set(current, new_g, new_f)
                queue.extend(self.model.fanouts[current])

    def _set(self, uid: int, g: int, f: int) -> None:
        self._trail.append((uid, self.good[uid], self.faulty[uid]))
        self.good[uid] = g
        self.faulty[uid] = f

    def _undo_to(self, mark: int) -> None:
        while len(self._trail) > mark:
            uid, g, f = self._trail.pop()
            self.good[uid] = g
            self.faulty[uid] = f

    # ------------------------------------------------------------------
    # Objectives
    # ------------------------------------------------------------------
    def _detected(self) -> bool:
        for uid in self.model.po_names:
            g, f = self.good[uid], self.faulty[uid]
            if g != X and f != X and g != f:
                return True
        return False

    def _is_d(self, uid: int) -> bool:
        g, f = self.good[uid], self.faulty[uid]
        return g != X and f != X and g != f

    def _objective(self) -> tuple[int, int] | None:
        """Next (uid, good-value) objective, or None at a dead end."""
        activated = any(self._is_d(uid) for uid in self.sites)
        if not activated:
            want = 1 - self.stuck
            for uid in sorted(self.sites):
                if self.good[uid] == X:
                    return (uid, want)
            return None  # every site blocked: activation impossible
        frontier = self._d_frontier()
        for uid in frontier:
            if not self._x_path_to_po(uid):
                continue
            control, _ = _CONTROL.get(self.model.ops[uid], (None, False))
            for fin in self.model.fanins[uid]:
                if self.good[fin] == X:
                    desired = ONE if control is None else 1 - control
                    return (fin, desired)
        return None

    def _d_frontier(self) -> list[int]:
        frontier = []
        for uid in range(self.model.size):
            if self.good[uid] != X and self.faulty[uid] != X \
                    and self.good[uid] == self.faulty[uid]:
                continue
            if self._is_d(uid):
                continue
            if any(self._is_d(f) for f in self.model.fanins[uid]):
                frontier.append(uid)
        return frontier

    def _x_path_to_po(self, uid: int) -> bool:
        """Is there a path of not-fully-assigned lines to an output?"""
        pos = self.model.po_set()
        stack = [uid]
        seen = {uid}
        while stack:
            current = stack.pop()
            if current in pos:
                return True
            for fanout in self.model.fanouts[current]:
                if fanout in seen:
                    continue
                g, f = self.good[fanout], self.faulty[fanout]
                blocked = g != X and f != X and g == f
                if not blocked:
                    seen.add(fanout)
                    stack.append(fanout)
        return False

    # ------------------------------------------------------------------
    def _backtrace(self, uid: int, value: int) -> tuple[int, int] | None:
        """Walk an objective back to an unassigned primary input."""
        current, desired = uid, value
        for _ in range(self.model.size + 1):
            op = self.model.ops[current]
            if op == OP_PI:
                return (current, desired)
            control, inverts = _CONTROL.get(op, (None, False))
            if inverts:
                desired = 1 - desired
            x_inputs = [f for f in self.model.fanins[current]
                        if self.good[f] == X]
            if not x_inputs:
                return None
            depth = self.model.depth
            if op in (OP_XOR, OP_XNOR):
                # Fix the shallowest X input; others decide the parity.
                current = min(x_inputs, key=lambda f: depth[f])
                continue
            if control is not None and desired == control:
                # One controlling input suffices: take the easiest
                # (shallowest) justification path.
                current = min(x_inputs, key=lambda f: depth[f])
                desired = control
            else:
                # Every input must be non-controlling: attack the
                # hardest (deepest) one first so failures surface early.
                current = max(x_inputs, key=lambda f: depth[f])
                if control is not None:
                    desired = 1 - control
        return None
