"""Analysis-driven fault pruning: skip provably untestable stuck-ats.

A stuck-at-``v`` fault on a line that carries ``v`` in *every* cycle of
*every* input sequence is undetectable: the faulty machine and the good
machine compute identical values from the shared all-zero reset state
(induction over cycles), so no test distinguishes them.  PODEM can
prove this too — by exhausting its search per time-frame ladder rung,
per fault — but at orders of magnitude more effort than the static
argument.

:func:`constant_lines` finds such lines by **sequential ternary
constant propagation**, the gate-level counterpart of the DFG engine's
known-bits component: every primary input is X (unknown), every DFF
starts at its reset value 0 (the convention both the fault simulator's
:meth:`~repro.gates.simulate.CompiledCircuit.zero_state` and the PODEM
unroller use — see :mod:`repro.atpg.unroll`), and the next-state
values are *joined* (0 ⊔ 1 = X) into the state until a fixpoint.  The
fixpoint state over-approximates the DFF contents of every reachable
cycle, so a gate that still evaluates to 0 or 1 under it is constant
for the machine's whole behaviour.

The embedded-controller netlists are rich in such cones: zero-padded
constant words and FSM control signals that never go hot tie whole
regions of the data path to fixed values.
"""

from __future__ import annotations

from ..gates.netlist import GateNetlist, GateType
from ..gates.ternary import Ternary, eval_gate
from .faults import Fault

__all__ = ["Ternary", "constant_lines", "prune_untestable"]


def _propagate(netlist: GateNetlist,
               dff_state: dict[int, Ternary]) -> list[Ternary]:
    """One ternary pass in topological order under a given DFF state."""
    values: list[Ternary] = [None] * len(netlist.gates)
    for gate in netlist.gates:
        if gate.gtype is GateType.INPUT:
            values[gate.gid] = None
        elif gate.gtype is GateType.CONST0:
            values[gate.gid] = 0
        elif gate.gtype is GateType.CONST1:
            values[gate.gid] = 1
        elif gate.gtype is GateType.DFF:
            values[gate.gid] = dff_state[gate.gid]
        else:
            values[gate.gid] = eval_gate(
                gate.gtype, [values[f] for f in gate.fanins])
    return values


def constant_lines(netlist: GateNetlist) -> dict[int, int]:
    """Lines proved constant over every cycle from reset.

    Returns a map ``gate id -> constant value`` covering every gate
    (including the DFFs themselves) whose output never changes, for any
    input sequence, starting from the all-zero reset state.
    """
    dffs = netlist.dffs()
    state: dict[int, Ternary] = {g.gid: 0 for g in dffs}
    # Fixpoint: join each DFF's next-state value into its state.  The
    # state lattice only descends (known -> X), so this terminates in
    # at most |DFF| + 1 passes; in practice a handful.
    for _ in range(len(dffs) + 1):
        values = _propagate(netlist, state)
        changed = False
        for gate in dffs:
            nxt = values[gate.fanins[0]] if gate.fanins else None
            if state[gate.gid] is not None and nxt != state[gate.gid]:
                state[gate.gid] = None
                changed = True
        if not changed:
            break
    values = _propagate(netlist, state)
    return {gid: v for gid, v in enumerate(values) if v is not None}


def prune_untestable(faults: list[Fault], constants: dict[int, int]
                     ) -> tuple[list[Fault], list[Fault]]:
    """Split a fault list into (worth attempting, provably untestable).

    A fault is pruned only when it forces the value the line already
    always carries — the *opposite*-polarity fault on a constant line
    genuinely changes the machine and stays in the attempt list (its
    detectability is an observability question PODEM must answer).
    """
    kept: list[Fault] = []
    pruned: list[Fault] = []
    for fault in faults:
        if constants.get(fault.gid) == fault.stuck:
            pruned.append(fault)
        else:
            kept.append(fault)
    return kept, pruned
