"""Time-frame expansion: a combinational view of k clock cycles.

The deterministic phase targets a fault in the unrolled model: every
frame is a copy of the combinational logic, frame f's flip-flop outputs
are buffers of frame f-1's D inputs, and frame 0 starts from the reset
(all-zero) state — the same convention the fault simulator uses.  DFF
outputs become explicit BUF nodes in every frame so that state-bit
stuck-at faults have an injection site per frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gates.netlist import GateNetlist, GateType

#: Small-int gate codes used by the PODEM arrays.
OP_CONST0, OP_CONST1, OP_PI, OP_BUF, OP_NOT, OP_AND, OP_OR, OP_NAND, \
    OP_NOR, OP_XOR, OP_XNOR = range(11)

_CODE = {
    GateType.CONST0: OP_CONST0, GateType.CONST1: OP_CONST1,
    GateType.INPUT: OP_PI, GateType.BUF: OP_BUF, GateType.NOT: OP_NOT,
    GateType.AND: OP_AND, GateType.OR: OP_OR, GateType.NAND: OP_NAND,
    GateType.NOR: OP_NOR, GateType.XOR: OP_XOR, GateType.XNOR: OP_XNOR,
}


@dataclass
class UnrolledCircuit:
    """Flattened combinational model of ``frames`` cycles."""

    frames: int
    ops: list[int] = field(default_factory=list)
    fanins: list[tuple[int, ...]] = field(default_factory=list)
    fanouts: list[list[int]] = field(default_factory=list)
    #: Free primary inputs: uid -> (frame, input name).
    pi_names: dict[int, tuple[int, str]] = field(default_factory=dict)
    #: Observed outputs: uid -> (frame, output name).
    po_names: dict[int, tuple[int, str]] = field(default_factory=dict)
    #: Original gate id -> one uid per frame (fault-injection sites).
    site_uids: dict[int, list[int]] = field(default_factory=dict)
    #: Logic depth per uid (0 for sources) — backtrace guidance.
    depth: list[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.ops)

    def po_set(self) -> set[int]:
        return set(self.po_names)


def unroll(netlist: GateNetlist, frames: int) -> UnrolledCircuit:
    """Build the ``frames``-cycle combinational expansion."""
    netlist.check_complete()
    model = UnrolledCircuit(frames)

    def new_node(op: int, fanins: tuple[int, ...]) -> int:
        uid = len(model.ops)
        model.ops.append(op)
        model.fanins.append(fanins)
        model.fanouts.append([])
        model.depth.append(
            1 + max(model.depth[f] for f in fanins) if fanins else 0)
        for fin in fanins:
            model.fanouts[fin].append(uid)
        return uid

    reset_uid = new_node(OP_CONST0, ())
    input_name_of = {gid: name for name, gid in netlist.inputs.items()}
    uid_of: dict[tuple[int, int], int] = {}
    for frame in range(frames):
        for gate in netlist.gates:
            if gate.gtype == GateType.DFF:
                if frame == 0:
                    source = reset_uid
                else:
                    d_driver = gate.fanins[0]
                    source = uid_of[(frame - 1, d_driver)]
                uid = new_node(OP_BUF, (source,))
            elif gate.gtype == GateType.INPUT:
                uid = new_node(OP_PI, ())
                model.pi_names[uid] = (frame, input_name_of[gate.gid])
            else:
                mapped = tuple(uid_of[(frame, f)] for f in gate.fanins)
                uid = new_node(_CODE[gate.gtype], mapped)
            uid_of[(frame, gate.gid)] = uid
            model.site_uids.setdefault(gate.gid, []).append(uid)
        for name, gid in netlist.outputs.items():
            model.po_names[uid_of[(frame, gid)]] = (frame, name)
    return model
