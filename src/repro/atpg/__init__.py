"""Test substrate: stuck-at faults, fault simulation, random + PODEM ATPG."""

from .engine import ATPGConfig, run_atpg
from .fault_sim import FaultSimulator
from .faults import Fault, full_fault_list, sample_faults
from .podem import PodemEngine, PodemResult
from .prune import constant_lines, prune_untestable
from .random_tpg import RandomPhaseConfig, random_phase, random_sequence
from .results import ATPGResult
from .unroll import UnrolledCircuit, unroll

__all__ = [
    "ATPGConfig",
    "ATPGResult",
    "Fault",
    "FaultSimulator",
    "PodemEngine",
    "PodemResult",
    "RandomPhaseConfig",
    "UnrolledCircuit",
    "constant_lines",
    "full_fault_list",
    "prune_untestable",
    "random_phase",
    "random_sequence",
    "run_atpg",
    "sample_faults",
    "unroll",
]
