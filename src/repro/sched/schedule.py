"""Schedule helpers.

A schedule is a plain ``dict[str, int]`` mapping every operation id to
its control step (counted from 0).  These helpers keep schedules tidy:
compaction removes empty steps, and grouping supports renderers and
allocators.
"""

from __future__ import annotations

from ..dfg import DFG


def schedule_length(steps: dict[str, int],
                    delays: dict[str, int] | None = None) -> int:
    """Number of control steps the schedule occupies."""
    if not steps:
        return 0
    end = 0
    for op_id, start in steps.items():
        delay = 1 if delays is None else delays.get(op_id, 1)
        end = max(end, start + delay)
    return end


def ops_by_step(steps: dict[str, int]) -> dict[int, list[str]]:
    """Group op ids per control step (ops sorted within a step)."""
    grouping: dict[int, list[str]] = {}
    for op_id in sorted(steps):
        grouping.setdefault(steps[op_id], []).append(op_id)
    return dict(sorted(grouping.items()))


def compact(steps: dict[str, int]) -> dict[str, int]:
    """Renumber steps to remove gaps and start from 0.

    Rescheduling can leave empty control steps behind; compaction is the
    inverse of the paper's dummy-step insertion and never violates any
    precedence or binding constraint (relative order is preserved and
    distinct steps stay distinct).
    """
    if not steps:
        return {}
    used = sorted(set(steps.values()))
    renumber = {old: new for new, old in enumerate(used)}
    return {op_id: renumber[s] for op_id, s in steps.items()}


def shift_from(steps: dict[str, int], first_affected: int,
               amount: int = 1) -> dict[str, int]:
    """Open ``amount`` empty (dummy) steps before step ``first_affected``.

    Every operation scheduled at or after ``first_affected`` moves later
    by ``amount``; this realises the paper's "introducing dummy control
    steps (places)" rescheduling primitive.
    """
    return {op_id: s + amount if s >= first_affected else s
            for op_id, s in steps.items()}


def assert_complete(dfg: DFG, steps: dict[str, int]) -> None:
    """Raise ScheduleError unless every operation is scheduled."""
    from ..errors import ScheduleError

    missing = set(dfg.operations) - set(steps)
    if missing:
        raise ScheduleError(f"{dfg.name}: unscheduled operations "
                            f"{sorted(missing)}")
    negative = {o: s for o, s in steps.items() if s < 0}
    if negative:
        raise ScheduleError(f"{dfg.name}: negative steps {negative}")
