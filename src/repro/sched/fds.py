"""Force-directed scheduling (Paulin & Knight 1989).

The paper's Approach 1 baseline: scheduling that balances the expected
number of concurrently-busy units of each class over the control steps,
with no testability consideration.  Implementation follows the original
formulation: distribution graphs built from uniform step probabilities
within each operation's time frame, and the assignment with the lowest
total force (self force plus implied predecessor/successor forces) is
fixed at each iteration.
"""

from __future__ import annotations

from ..dfg import DFG, unit_class, UnitClass
from ..errors import ScheduleError
from .asap_alap import frames, minimum_horizon


def _distribution_graphs(dfg: DFG, horizon: int,
                         frame: dict[str, tuple[int, int]]
                         ) -> dict[UnitClass, list[float]]:
    """DG(class, step): expected unit usage per step."""
    graphs: dict[UnitClass, list[float]] = {}
    for op in dfg:
        cls = unit_class(op.kind)
        graph = graphs.setdefault(cls, [0.0] * horizon)
        lo, hi = frame[op.op_id]
        probability = 1.0 / (hi - lo + 1)
        for step in range(lo, hi + 1):
            graph[step] += probability
    return graphs


def _self_force(graph: list[float], lo: int, hi: int, target: int) -> float:
    """Force of narrowing a frame [lo, hi] to the single step ``target``."""
    old_probability = 1.0 / (hi - lo + 1)
    force = 0.0
    for step in range(lo, hi + 1):
        new_probability = 1.0 if step == target else 0.0
        force += graph[step] * (new_probability - old_probability)
    return force


def fds_schedule(dfg: DFG, horizon: int | None = None,
                 delays: dict[str, int] | None = None) -> dict[str, int]:
    """Schedule ``dfg`` with force-directed scheduling.

    Args:
        dfg: the data-flow graph.
        horizon: latency constraint; defaults to the critical-path
            length (the latency-optimal setting used by the paper's
            area-optimised experiments).
        delays: per-op delays (default 1).

    Returns:
        A complete schedule minimising peak unit concurrency.
    """
    if horizon is None:
        horizon = minimum_horizon(dfg, delays)
    fixed: dict[str, int] = {}
    remaining = set(dfg.operations)
    while remaining:
        frame = frames(dfg, horizon, fixed, delays)
        graphs = _distribution_graphs(dfg, horizon, frame)
        # Operations whose frame is a single step are implicitly fixed.
        for op_id in sorted(remaining):
            lo, hi = frame[op_id]
            if lo == hi:
                fixed[op_id] = lo
                remaining.discard(op_id)
        if not remaining:
            break
        best: tuple[float, str, int] | None = None
        for op_id in sorted(remaining):
            lo, hi = frame[op_id]
            cls = unit_class(dfg.operation(op_id).kind)
            for target in range(lo, hi + 1):
                force = _self_force(graphs[cls], lo, hi, target)
                force += _implied_forces(dfg, graphs, frame, op_id, target,
                                         horizon, fixed, delays)
                key = (force, op_id, target)
                if best is None or key < best:
                    best = key
        _, op_id, target = best
        fixed[op_id] = target
        remaining.discard(op_id)
    return fixed


def _implied_forces(dfg: DFG, graphs, frame, op_id: str, target: int,
                    horizon: int, fixed: dict[str, int],
                    delays: dict[str, int] | None) -> float:
    """Predecessor/successor forces of fixing ``op_id`` at ``target``.

    Fixing an operation narrows the frames of its neighbours; the
    implied force is the sum of their self forces under the narrowed
    frames (Paulin & Knight §IV-C).
    """
    try:
        narrowed = frames(dfg, horizon, {**fixed, op_id: target}, delays)
    except ScheduleError:
        return float("inf")
    force = 0.0
    for edge in dfg.predecessors(op_id) + dfg.successors(op_id):
        other = edge.src if edge.dst == op_id else edge.dst
        if other in fixed or other == op_id:
            continue
        lo, hi = frame[other]
        new_lo, new_hi = narrowed[other]
        if (new_lo, new_hi) == (lo, hi):
            continue
        cls = unit_class(dfg.operation(other).kind)
        old_probability = 1.0 / (hi - lo + 1)
        new_probability = 1.0 / (new_hi - new_lo + 1)
        for step in range(lo, hi + 1):
            inside = new_lo <= step <= new_hi
            force += graphs[cls][step] * (
                (new_probability if inside else 0.0) - old_probability)
    return force
