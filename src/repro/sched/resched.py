"""Rescheduling under merger-imposed constraints (paper §4.3).

A binding imposes two families of constraints beyond DFG precedence:

* operations sharing a module must occupy distinct control steps, in
  some chosen *execution order*;
* variables sharing a register must have disjoint lifetimes, in some
  chosen *lifetime order*.

Given a binding plus one order per module and per register, those
constraints become plain difference constraints between operation
steps, so the minimum-latency legal schedule is the longest path over a
constraint graph — and an infeasible combination (the paper's "two
lifetimes can never be disjoint" cases, e.g. one operation reading both
variables, or circular dependences between the defining operations)
shows up as a cycle.

The paper's "introducing dummy control steps" corresponds to the
longest-path schedule coming out longer than the previous one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..alloc.binding import Binding
from ..dfg import DFG
from ..dfg.analysis import edge_latency
from ..errors import ScheduleError


@dataclass
class ConstraintGraph:
    """Difference constraints ``step(dst) - step(src) >= gap`` between ops."""

    ops: list[str]
    edges: dict[tuple[str, str], int] = field(default_factory=dict)

    def add(self, src: str, dst: str, gap: int) -> None:
        """Add a constraint, keeping the strongest gap per edge."""
        if src == dst:
            if gap > 0:
                # step(x) >= step(x) + gap is unsatisfiable.
                self.edges[(src, dst)] = gap
            return
        key = (src, dst)
        if key not in self.edges or self.edges[key] < gap:
            self.edges[key] = gap

    def longest_path_schedule(self) -> dict[str, int] | None:
        """ASAP schedule satisfying all constraints, or None on a cycle."""
        if any(src == dst and gap > 0 for (src, dst), gap in self.edges.items()):
            return None
        successors: dict[str, list[tuple[str, int]]] = {o: [] for o in self.ops}
        indegree = {o: 0 for o in self.ops}
        for (src, dst), gap in self.edges.items():
            if src == dst:
                continue
            successors[src].append((dst, gap))
            indegree[dst] += 1
        ready = sorted(o for o, d in indegree.items() if d == 0)
        steps = {o: 0 for o in self.ops}
        visited = 0
        while ready:
            node = ready.pop(0)
            visited += 1
            for child, gap in successors[node]:
                steps[child] = max(steps[child], steps[node] + gap)
                indegree[child] -= 1
                if indegree[child] == 0:
                    lo, hi = 0, len(ready)
                    while lo < hi:
                        mid = (lo + hi) // 2
                        if ready[mid] < child:
                            lo = mid + 1
                        else:
                            hi = mid
                    ready.insert(lo, child)
        if visited != len(self.ops):
            return None
        return steps


def _lifetime_events(dfg: DFG, var: str) -> tuple[list[str], list[str]]:
    """(birth ops, death ops) of a variable.

    Birth ops: the ops whose step determines the variable's birth — its
    first definition, or every use for an input variable (the earliest
    one decides).  Death ops: every op whose step bounds the death — all
    uses and, for multiply-defined variables, later defs.
    """
    defs = dfg.defs_of(var)
    uses = dfg.uses_of(var)
    variable = dfg.variable(var)
    if variable.is_input and not defs:
        birth = list(uses)
    elif defs:
        birth = [defs[0]]
    else:
        birth = list(uses)
    death = list(uses) + list(defs)
    return birth, death


def _serialisation_edges(graph: ConstraintGraph, dfg: DFG,
                         earlier: str, later: str) -> None:
    """Constrain lifetime(earlier) to end before lifetime(later) begins.

    With half-open occupation intervals ``(birth, death]`` the condition
    is ``death(earlier) <= birth(later)``.
    """
    _, death_ops = _lifetime_events(dfg, earlier)
    birth_ops, _ = _lifetime_events(dfg, later)
    earlier_var = dfg.variable(earlier)
    later_is_input = (dfg.variable(later).is_input
                      and not dfg.defs_of(later))
    extra_death = 1 if (earlier_var.is_output and dfg.defs_of(earlier)) else 0
    for death_op in death_ops:
        death_bump = extra_death if death_op in dfg.defs_of(earlier) else 0
        # Death from a plain use happens during the step; a birth by
        # definition in the same step is fine (write at step end).
        base_gap = 0 + death_bump
        for birth_op in birth_ops:
            # An input variable is loaded the step before its first use,
            # so its uses must start strictly after the earlier death.
            gap = base_gap + (1 if later_is_input else 0)
            graph.add(death_op, birth_op, gap)
    # If `earlier` is an output, its defining step + 1 must also precede
    # the later birth even when it has no uses (handled above via defs in
    # death_ops when is_output).


def build_constraints(dfg: DFG, binding: Binding,
                      module_orders: dict[str, list[str]],
                      register_orders: dict[str, list[str]],
                      delays: dict[str, int] | None = None) -> ConstraintGraph:
    """Build the full constraint graph for a bound design.

    Args:
        dfg: the data-flow graph.
        binding: the (possibly merged) binding.
        module_orders: execution order of the ops on each shared module.
        register_orders: lifetime order of the variables in each shared
            register.
        delays: per-op delays (default 1).

    Raises:
        ScheduleError: when an order list disagrees with the binding.
    """
    graph = ConstraintGraph(ops=list(dfg.op_order))
    for edge in dfg.edges():
        graph.add(edge.src, edge.dst, edge_latency(dfg, edge, delays))
    for module, ops in binding.modules().items():
        if len(ops) < 2:
            continue
        order = module_orders.get(module)
        if order is None or sorted(order) != sorted(ops):
            raise ScheduleError(f"module {module!r}: order {order} does not "
                                f"cover ops {ops}")
        for first, second in zip(order, order[1:]):
            delay = 1 if delays is None else delays.get(first, 1)
            graph.add(first, second, delay)
    for register, variables in binding.registers().items():
        if len(variables) < 2:
            continue
        order = register_orders.get(register)
        if order is None or sorted(order) != sorted(variables):
            raise ScheduleError(f"register {register!r}: order {order} does "
                                f"not cover variables {variables}")
        for earlier, later in zip(order, order[1:]):
            _serialisation_edges(graph, dfg, earlier, later)
    return graph


def reschedule(dfg: DFG, binding: Binding,
               module_orders: dict[str, list[str]],
               register_orders: dict[str, list[str]],
               delays: dict[str, int] | None = None) -> dict[str, int] | None:
    """Minimum-latency schedule honouring binding constraints, or None."""
    graph = build_constraints(dfg, binding, module_orders, register_orders,
                              delays)
    return graph.longest_path_schedule()


def current_module_orders(dfg: DFG, binding: Binding,
                          steps: dict[str, int]) -> dict[str, list[str]]:
    """Execution order of each shared module under the current schedule."""
    orders = {}
    for module, ops in binding.modules().items():
        if len(ops) >= 2:
            orders[module] = sorted(ops, key=lambda o: (steps[o], o))
    return orders


def current_register_orders(dfg: DFG, binding: Binding,
                            steps: dict[str, int]) -> dict[str, list[str]]:
    """Lifetime order of each shared register under the current schedule."""
    from ..dfg.lifetime import variable_lifetimes

    lifetimes = variable_lifetimes(dfg, steps)
    orders = {}
    for register, variables in binding.registers().items():
        if len(variables) >= 2:
            orders[register] = sorted(
                variables, key=lambda v: (lifetimes[v].birth, v))
    return orders


def merge_order_candidates(seq_a: list[str], seq_b: list[str],
                           rank: dict[str, int]) -> list[list[str]]:
    """The two merge-sorted interleavings of two ordered sequences.

    Elements are compared by ``rank`` (their current step); ties are
    broken in favour of sequence A in the first candidate and sequence B
    in the second — the two execution orders the paper's C/O enhancement
    strategy then chooses between (§4.3.1: "two possibilities: execute
    o_i1 before o_j1, or o_j1 before o_i1").
    """
    def merged(prefer_a: bool) -> list[str]:
        result: list[str] = []
        i = j = 0
        while i < len(seq_a) and j < len(seq_b):
            ra, rb = rank[seq_a[i]], rank[seq_b[j]]
            take_a = ra < rb or (ra == rb and prefer_a)
            if take_a:
                result.append(seq_a[i])
                i += 1
            else:
                result.append(seq_b[j])
                j += 1
        result.extend(seq_a[i:])
        result.extend(seq_b[j:])
        return result

    first = merged(True)
    second = merged(False)
    return [first] if first == second else [first, second]
