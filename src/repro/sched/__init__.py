"""Scheduling: schedule helpers, legality, schedulers and rescheduling."""

from .asap_alap import alap_schedule, asap_schedule, frames, minimum_horizon
from .constraints import check_precedence, module_conflicts, precedence_violations
from .fds import fds_schedule
from .list_sched import list_schedule, peak_usage
from .mobility_path import mobility_path_schedule
from .resched import (ConstraintGraph, build_constraints,
                      current_module_orders, current_register_orders,
                      merge_order_candidates, reschedule)
from .schedule import (assert_complete, compact, ops_by_step, schedule_length,
                       shift_from)

__all__ = [
    "ConstraintGraph",
    "alap_schedule",
    "asap_schedule",
    "assert_complete",
    "build_constraints",
    "check_precedence",
    "compact",
    "current_module_orders",
    "current_register_orders",
    "fds_schedule",
    "frames",
    "list_schedule",
    "merge_order_candidates",
    "minimum_horizon",
    "mobility_path_schedule",
    "module_conflicts",
    "ops_by_step",
    "peak_usage",
    "precedence_violations",
    "reschedule",
    "schedule_length",
    "shift_from",
]
