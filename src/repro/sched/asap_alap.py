"""ASAP/ALAP schedulers and time-frame computation with fixed ops.

Thin, schedule-producing wrappers over :mod:`repro.dfg.analysis`, plus
the frame computation force-directed scheduling needs: earliest/latest
steps when some operations are already fixed.
"""

from __future__ import annotations

from ..dfg import DFG
from ..dfg.analysis import (alap_steps, asap_steps, critical_path_length,
                            edge_latency, topological_order)
from ..errors import ScheduleError


def asap_schedule(dfg: DFG, delays: dict[str, int] | None = None) -> dict[str, int]:
    """The as-soon-as-possible schedule (the default schedule)."""
    return asap_steps(dfg, delays)


def alap_schedule(dfg: DFG, horizon: int | None = None,
                  delays: dict[str, int] | None = None) -> dict[str, int]:
    """The as-late-as-possible schedule within ``horizon`` steps."""
    return alap_steps(dfg, horizon, delays)


def frames(dfg: DFG, horizon: int,
           fixed: dict[str, int] | None = None,
           delays: dict[str, int] | None = None
           ) -> dict[str, tuple[int, int]]:
    """[earliest, latest] step of each op given some fixed assignments.

    Raises:
        ScheduleError: when a fixed assignment makes the horizon
            infeasible.
    """
    fixed = fixed or {}
    order = topological_order(dfg)
    earliest: dict[str, int] = {}
    for op_id in order:
        bound = 0
        for edge in dfg.predecessors(op_id):
            bound = max(bound, earliest[edge.src]
                        + edge_latency(dfg, edge, delays))
        if op_id in fixed:
            if fixed[op_id] < bound:
                raise ScheduleError(f"{dfg.name}: {op_id} fixed at "
                                    f"{fixed[op_id]} before its earliest "
                                    f"step {bound}")
            bound = fixed[op_id]
        earliest[op_id] = bound
    latest: dict[str, int] = {}
    for op_id in reversed(order):
        bound = horizon - 1
        for edge in dfg.successors(op_id):
            bound = min(bound, latest[edge.dst]
                        - edge_latency(dfg, edge, delays))
        if op_id in fixed:
            if fixed[op_id] > bound:
                raise ScheduleError(f"{dfg.name}: {op_id} fixed at "
                                    f"{fixed[op_id]} after its latest step "
                                    f"{bound}")
            bound = fixed[op_id]
        latest[op_id] = bound
        if latest[op_id] < earliest[op_id]:
            raise ScheduleError(f"{dfg.name}: empty frame for {op_id} at "
                                f"horizon {horizon}")
    return {op_id: (earliest[op_id], latest[op_id]) for op_id in order}


def minimum_horizon(dfg: DFG, delays: dict[str, int] | None = None) -> int:
    """The smallest feasible latency (critical-path length)."""
    return critical_path_length(dfg, delays)
