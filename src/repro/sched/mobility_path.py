"""Mobility-path scheduling (Lee et al. 1992) — reconstruction.

The paper's Approach 2 baseline schedules "for easy testability": the
original mobility-path algorithm walks operations in mobility order and
places each to support two rules — (1) registers should each hold at
least one primary-input or primary-output variable, and (2) the
sequential depth from a controllable to an observable register should
shrink.  The exact 1992 pseudo-code is not in the DATE'98 paper, so
this module reconstructs it in the same spirit:

* start from the resource-balanced FDS schedule (same latency);
* greedily move mobile operations to the step that minimises, in order,
  (a) the total variable lifetime span — shorter lifetimes mean values
  reach an observable register in fewer clocks (rule 2 in the time
  domain) — and (b) the register count a left-edge packing would need;
* iterate until no single-op move improves the objective.

The reconstruction is documented in DESIGN.md §3.
"""

from __future__ import annotations

from ..dfg import DFG
from ..dfg.analysis import edge_latency
from ..dfg.lifetime import variable_lifetimes
from .asap_alap import frames, minimum_horizon
from .fds import fds_schedule


def _objective(dfg: DFG, steps: dict[str, int]) -> tuple[int, float, int]:
    from ..alloc.left_edge import left_edge  # local import: avoid cycle
    from .list_sched import peak_usage

    # Unit concurrency first: Approach 2 keeps Approach 1's module
    # allocation, so moves must not demand extra functional units.
    units = sum(peak_usage(dfg, steps).values())
    lifetimes = variable_lifetimes(dfg, steps)
    span = sum(lt.span for lt in lifetimes.values())
    registers = len(set(left_edge(lifetimes).values()))
    return (units, span, registers)


def _legal_move(dfg: DFG, steps: dict[str, int], op_id: str,
                target: int, delays: dict[str, int] | None) -> bool:
    for edge in dfg.predecessors(op_id):
        if steps[edge.src] + edge_latency(dfg, edge, delays) > target:
            return False
    for edge in dfg.successors(op_id):
        if target + edge_latency(dfg, edge, delays) > steps[edge.dst]:
            return False
    return True


def mobility_path_schedule(dfg: DFG, horizon: int | None = None,
                           delays: dict[str, int] | None = None
                           ) -> dict[str, int]:
    """Schedule ``dfg`` with the testability-aware mobility heuristic."""
    if horizon is None:
        horizon = minimum_horizon(dfg, delays)
    steps = dict(fds_schedule(dfg, horizon, delays))
    best = _objective(dfg, steps)
    improved = True
    while improved:
        improved = False
        frame = frames(dfg, horizon, fixed=None, delays=delays)
        for op_id in sorted(steps):
            lo, hi = frame[op_id]
            if lo == hi:
                continue
            current = steps[op_id]
            for target in range(lo, hi + 1):
                if target == current:
                    continue
                if not _legal_move(dfg, steps, op_id, target, delays):
                    continue
                steps[op_id] = target
                candidate = _objective(dfg, steps)
                if candidate < best:
                    best = candidate
                    improved = True
                    current = target
                else:
                    steps[op_id] = current
    return steps
