"""Resource-constrained list scheduling.

A classic priority-driven scheduler used as a utility (and by tests as
an independent reference point for the FDS implementation): given a
limit on the number of units per class, operations are placed step by
step, highest-urgency first.
"""

from __future__ import annotations

from ..dfg import DFG, unit_class, UnitClass
from ..dfg.analysis import alap_steps, critical_path_length, edge_latency
from ..errors import ScheduleError

_MAX_STEPS = 10_000


def list_schedule(dfg: DFG, resources: dict[UnitClass, int],
                  delays: dict[str, int] | None = None) -> dict[str, int]:
    """Schedule under per-class unit limits.

    Args:
        dfg: the data-flow graph.
        resources: maximum simultaneously-busy units per class; classes
            absent from the map are unconstrained.
        delays: per-op delays (default 1).

    Returns:
        A complete schedule.  Priority is ALAP urgency (least slack
        first), the standard list-scheduling heuristic.

    Raises:
        ScheduleError: if a class limit is not positive.
    """
    for cls, limit in resources.items():
        if limit <= 0:
            raise ScheduleError(f"resource limit for {cls} must be positive")
    urgency = alap_steps(dfg, horizon=critical_path_length(dfg, delays)
                         + len(dfg.operations), delays=delays)
    unscheduled = set(dfg.operations)
    steps: dict[str, int] = {}
    step = 0
    while unscheduled:
        if step > _MAX_STEPS:
            raise ScheduleError(f"{dfg.name}: list scheduling exceeded "
                                f"{_MAX_STEPS} steps")
        busy: dict[UnitClass, int] = {}
        ready = []
        for op_id in sorted(unscheduled):
            ok = True
            for edge in dfg.predecessors(op_id):
                if edge.src in unscheduled:
                    ok = False
                    break
                if steps[edge.src] + edge_latency(dfg, edge, delays) > step:
                    ok = False
                    break
            if ok:
                ready.append(op_id)
        ready.sort(key=lambda o: (urgency[o], o))
        for op_id in ready:
            cls = unit_class(dfg.operation(op_id).kind)
            limit = resources.get(cls)
            if limit is not None and busy.get(cls, 0) >= limit:
                continue
            steps[op_id] = step
            busy[cls] = busy.get(cls, 0) + 1
            unscheduled.discard(op_id)
        step += 1
    return steps


def peak_usage(dfg: DFG, steps: dict[str, int]) -> dict[UnitClass, int]:
    """Maximum number of same-class ops sharing any control step."""
    usage: dict[tuple[UnitClass, int], int] = {}
    for op in dfg:
        key = (unit_class(op.kind), steps[op.op_id])
        usage[key] = usage.get(key, 0) + 1
    peaks: dict[UnitClass, int] = {}
    for (cls, _), count in usage.items():
        peaks[cls] = max(peaks.get(cls, 0), count)
    return peaks
