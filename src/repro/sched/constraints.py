"""Schedule legality: precedence and merger-imposed constraints.

Two families of constraints govern a schedule:

* *precedence*: every dependence edge of the DFG must be respected
  (flow/output edges need at least the producer's delay between the two
  operations, anti edges allow sharing a step);
* *binding*: operations sharing a module occupy distinct steps, and
  variables sharing a register have disjoint lifetimes (checked by
  :func:`repro.alloc.binding.validate_binding`).

Mergers add binding constraints; rescheduling discharges them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dfg import DFG
from ..dfg.analysis import edge_latency
from ..dfg.graph import DependenceEdge
from ..errors import ScheduleError
from .schedule import assert_complete


@dataclass(frozen=True)
class Violation:
    """One violated precedence edge."""

    edge: DependenceEdge
    src_step: int
    dst_step: int
    required_gap: int

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return (f"{self.edge.kind} {self.edge.src}@{self.src_step} -> "
                f"{self.edge.dst}@{self.dst_step} needs gap "
                f">= {self.required_gap}")


def precedence_violations(dfg: DFG, steps: dict[str, int],
                          delays: dict[str, int] | None = None
                          ) -> list[Violation]:
    """All dependence edges violated by ``steps``."""
    violations = []
    for edge in dfg.edges():
        gap = edge_latency(dfg, edge, delays)
        if steps[edge.dst] - steps[edge.src] < gap:
            violations.append(Violation(edge, steps[edge.src],
                                        steps[edge.dst], gap))
    return violations


def check_precedence(dfg: DFG, steps: dict[str, int],
                     delays: dict[str, int] | None = None) -> None:
    """Raise :class:`ScheduleError` when any dependence is violated."""
    assert_complete(dfg, steps)
    violations = precedence_violations(dfg, steps, delays)
    if violations:
        detail = "; ".join(str(v) for v in violations[:5])
        raise ScheduleError(f"{dfg.name}: {len(violations)} precedence "
                            f"violations: {detail}")


def module_conflicts(steps: dict[str, int],
                     module_groups: dict[str, list[str]]) -> list[tuple[str, str, str]]:
    """(module, op_a, op_b) triples of same-step operations sharing a module."""
    conflicts = []
    for module, ops in module_groups.items():
        by_step: dict[int, str] = {}
        for op_id in ops:
            step = steps[op_id]
            if step in by_step:
                conflicts.append((module, by_step[step], op_id))
            else:
                by_step[step] = op_id
    return conflicts
