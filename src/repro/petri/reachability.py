"""Reachability-tree construction (Peterson 1981, as cited by the paper).

The tree enumerates all markings reachable from the initial marking.  A
branch stops at a *duplicate* node — a marking already seen on the path
from the root (Peterson's "old" nodes) — which keeps the tree finite for
looping control parts while still covering one full traversal of every
loop.  The critical-path extractor (:mod:`repro.petri.critical_path`)
walks this tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import PetriNetError
from .net import PetriNet, Transition


@dataclass
class TreeNode:
    """One node of the reachability tree.

    Attributes:
        marking: the marking at this node.
        parent: index of the parent node, or None for the root.
        via: the transition fired to reach this node, or None for root.
        time: accumulated place delays from the root to this marking.
        duplicate: True when this marking already appeared on the root
            path (the branch is not expanded further).
    """

    marking: frozenset[str]
    parent: Optional[int]
    via: Optional[Transition]
    time: int
    duplicate: bool = False
    children: list[int] = field(default_factory=list)


class ReachabilityTree:
    """The reachability tree of a safe timed Petri net."""

    def __init__(self, net: PetriNet, max_nodes: int = 100_000) -> None:
        net.validate()
        self.net = net
        self.nodes: list[TreeNode] = []
        #: Reachable firings that would put a token into an already
        #: marked place, as ``(marking, trans_id, place)`` triples.  Such
        #: firings are recorded and skipped, not taken, so the tree
        #: itself stays a safe-net tree.
        self.unsafe_firings: list[tuple[frozenset[str], str, str]] = []
        self._build(max_nodes)

    def _build(self, max_nodes: int) -> None:
        root_time = sum(self.net.places[p].delay
                        for p in self.net.initial_marking)
        # Time bookkeeping: entering a marking costs the delay of the
        # newly-marked places; the root pays for the initially marked ones.
        self.nodes.append(TreeNode(self.net.initial_marking, None, None,
                                   root_time))
        stack = [0]
        while stack:
            index = stack.pop()
            node = self.nodes[index]
            if node.duplicate or self.net.is_final(node.marking):
                continue
            for transition in self.net.enabled(node.marking):
                clash = (set(transition.outputs)
                         & (node.marking - set(transition.inputs)))
                if clash:
                    for place in sorted(clash):
                        self.unsafe_firings.append(
                            (node.marking, transition.trans_id, place))
                    continue
                after = self.net.fire(node.marking, transition)
                entered = after - node.marking
                step = sum(self.net.places[p].delay for p in entered)
                child = TreeNode(after, index, transition, node.time + step)
                child.duplicate = self._on_root_path(index, after)
                child_index = len(self.nodes)
                if child_index >= max_nodes:
                    raise PetriNetError(
                        f"{self.net.name}: reachability tree exceeds "
                        f"{max_nodes} nodes")
                self.nodes.append(child)
                node.children.append(child_index)
                stack.append(child_index)

    def _on_root_path(self, index: int, marking: frozenset[str]) -> bool:
        current: Optional[int] = index
        while current is not None:
            if self.nodes[current].marking == marking:
                return True
            current = self.nodes[current].parent
        return False

    # ------------------------------------------------------------------
    def leaves(self) -> list[TreeNode]:
        """Nodes with no expanded children (final, duplicate or dead)."""
        return [n for n in self.nodes if not n.children]

    def final_nodes(self) -> list[TreeNode]:
        """Nodes whose marking contains a final place."""
        return [n for n in self.nodes if self.net.is_final(n.marking)]

    def reachable_markings(self) -> set[frozenset[str]]:
        """The set of distinct markings in the tree."""
        return {n.marking for n in self.nodes}

    def path_to(self, node: TreeNode) -> list[TreeNode]:
        """Root-to-node path."""
        path = [node]
        while path[-1].parent is not None:
            path.append(self.nodes[path[-1].parent])
        path.reverse()
        return path

    def is_safe(self) -> bool:
        """True when no reachable firing would double-mark a place.

        The construction records such firings in
        :attr:`unsafe_firings` (and does not take them), so an unsafe
        net still yields a tree — of the safe portion of its state
        space — plus the evidence, which lint rule ``NET007`` reports.
        """
        return not self.unsafe_firings
