"""Critical-path extraction from the reachability tree (paper §4.2).

The minimum execution time ``E`` of a design equals the length of the
critical path: the sequence of control places dominating the time a
token needs to flow from the initial place to the final place.  For a
looping control part the reachability tree covers each loop once, so
``E`` is the per-iteration critical path — exactly the quantity the
merger transformations may lengthen.
"""

from __future__ import annotations

from dataclasses import dataclass

from .net import PetriNet
from .reachability import ReachabilityTree, TreeNode


@dataclass(frozen=True)
class CriticalPath:
    """The result of critical-path analysis.

    Attributes:
        length: execution time in control steps (sum of place delays).
        places: the dominating sequence of control places.
        transitions: transition ids fired along the path.
    """

    length: int
    places: tuple[str, ...]
    transitions: tuple[str, ...]


def critical_path(net: PetriNet, max_nodes: int = 100_000) -> CriticalPath:
    """Compute the critical path of ``net`` via its reachability tree.

    The critical end nodes are the final-marking nodes when any exist
    (terminating nets) or the duplicate leaves otherwise (one iteration
    of a non-terminating loop).
    """
    tree = ReachabilityTree(net, max_nodes=max_nodes)
    candidates = tree.final_nodes() or tree.leaves()
    best = max(candidates, key=lambda n: n.time)
    return _path_result(tree, best)


def execution_time(net: PetriNet, max_nodes: int = 100_000) -> int:
    """Shorthand for ``critical_path(net).length``."""
    return critical_path(net, max_nodes=max_nodes).length


def _path_result(tree: ReachabilityTree, node: TreeNode) -> CriticalPath:
    path = tree.path_to(node)
    places: list[str] = []
    transitions: list[str] = []
    previous: frozenset[str] = frozenset()
    for step in path:
        entered = step.marking - previous
        places.extend(sorted(p for p in entered
                             if tree.net.places[p].delay > 0))
        if step.via is not None:
            transitions.append(step.via.trans_id)
        previous = step.marking
    return CriticalPath(node.time, tuple(places), tuple(transitions))
