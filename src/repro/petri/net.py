"""Timed Petri nets with restricted firing rules (the ETPN control part).

Following Peng & Kuchcinski (1994), the control part of an ETPN is a
*safe* timed Petri net: each place holds at most one token, a marked
place keeps its token for the place's delay (one control step for
ordinary control places, zero for dummy join places), and transitions
fire instantaneously.  A transition may be *guarded* by a condition
signal produced by the data path (e.g. the ``x1 < a`` comparison in
Diffeq); guarded transitions model loops and branches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import PetriNetError


@dataclass(frozen=True)
class Guard:
    """A transition guard: a data-path condition, possibly negated."""

    condition: str
    negated: bool = False

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{'!' if self.negated else ''}{self.condition}"

    def complement(self) -> "Guard":
        """The same condition with the opposite polarity."""
        return Guard(self.condition, not self.negated)


@dataclass
class Place:
    """A control place.

    Attributes:
        place_id: unique identifier (e.g. ``"S3"`` for control step 3).
        delay: how many time units a token rests here before enabling
            output transitions.  Control-step places have delay 1;
            structural (fork/join/dummy) places have delay 0.
        label: free-form annotation shown by renderers.
    """

    place_id: str
    delay: int = 1
    label: str = ""


@dataclass
class Transition:
    """A transition consuming tokens from ``inputs``, producing to ``outputs``."""

    trans_id: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    guard: Optional[Guard] = None


class PetriNet:
    """A safe timed Petri net with an initial marking."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.places: dict[str, Place] = {}
        self.transitions: dict[str, Transition] = {}
        self.initial_marking: frozenset[str] = frozenset()
        self.final_places: frozenset[str] = frozenset()

    # ------------------------------------------------------------------
    def add_place(self, place_id: str, delay: int = 1, label: str = "") -> Place:
        """Create and register a place; ids must be unique."""
        if place_id in self.places:
            raise PetriNetError(f"{self.name}: duplicate place {place_id!r}")
        if delay < 0:
            raise PetriNetError(f"{self.name}: negative delay on {place_id!r}")
        place = Place(place_id, delay, label)
        self.places[place_id] = place
        return place

    def add_transition(self, trans_id: str, inputs: list[str],
                       outputs: list[str],
                       guard: Optional[Guard] = None) -> Transition:
        """Create and register a transition between existing places."""
        if trans_id in self.transitions:
            raise PetriNetError(f"{self.name}: duplicate transition "
                                f"{trans_id!r}")
        for pid in list(inputs) + list(outputs):
            if pid not in self.places:
                raise PetriNetError(f"{self.name}: transition {trans_id!r} "
                                    f"references unknown place {pid!r}")
        if not inputs:
            raise PetriNetError(f"{self.name}: transition {trans_id!r} has "
                                f"no input places")
        transition = Transition(trans_id, tuple(inputs), tuple(outputs), guard)
        self.transitions[trans_id] = transition
        return transition

    def set_initial(self, *place_ids: str) -> None:
        """Define the initial marking (one token in each listed place)."""
        for pid in place_ids:
            if pid not in self.places:
                raise PetriNetError(f"{self.name}: unknown initial place "
                                    f"{pid!r}")
        self.initial_marking = frozenset(place_ids)

    def set_final(self, *place_ids: str) -> None:
        """Mark places whose marking means the computation has finished."""
        for pid in place_ids:
            if pid not in self.places:
                raise PetriNetError(f"{self.name}: unknown final place "
                                    f"{pid!r}")
        self.final_places = frozenset(place_ids)

    # ------------------------------------------------------------------
    def enabled(self, marking: frozenset[str]) -> list[Transition]:
        """Transitions whose every input place is marked."""
        return [t for t in self.transitions.values()
                if all(p in marking for p in t.inputs)]

    def fire(self, marking: frozenset[str],
             transition: Transition) -> frozenset[str]:
        """Return the marking after firing ``transition``.

        Raises:
            PetriNetError: when the transition is not enabled or firing
                would violate safeness (double-mark a place).
        """
        if not all(p in marking for p in transition.inputs):
            raise PetriNetError(f"{self.name}: {transition.trans_id} not "
                                f"enabled in {sorted(marking)}")
        after = set(marking) - set(transition.inputs)
        for out in transition.outputs:
            if out in after:
                raise PetriNetError(f"{self.name}: firing "
                                    f"{transition.trans_id} double-marks "
                                    f"{out!r}")
            after.add(out)
        return frozenset(after)

    def is_final(self, marking: frozenset[str]) -> bool:
        """True when the marking contains any designated final place."""
        return bool(self.final_places & marking)

    def conditions(self) -> set[str]:
        """All condition signals referenced by guards."""
        return {t.guard.condition for t in self.transitions.values()
                if t.guard is not None}

    def validate(self) -> None:
        """Check structural sanity: initial marking set, non-empty net,
        every transition sourced (lint rules ``NET001``/``NET002``/
        ``NET006``, which this raise-style wrapper delegates to).

        Raises:
            PetriNetError: listing every violated structural rule.
        """
        from ..lint import lint_petri
        errors = lint_petri(self).errors()
        if errors:
            raise PetriNetError("; ".join(d.message for d in errors))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"PetriNet({self.name!r}, {len(self.places)} places, "
                f"{len(self.transitions)} transitions)")
