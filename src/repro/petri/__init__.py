"""Timed Petri net control part of the ETPN design representation."""

from .builders import (FINAL_PLACE, control_net_for_design,
                       control_net_from_schedule, step_place)
from .critical_path import CriticalPath, critical_path, execution_time
from .net import Guard, PetriNet, Place, Transition
from .reachability import ReachabilityTree, TreeNode

__all__ = [
    "FINAL_PLACE",
    "CriticalPath",
    "Guard",
    "PetriNet",
    "Place",
    "ReachabilityTree",
    "Transition",
    "TreeNode",
    "control_net_for_design",
    "control_net_from_schedule",
    "critical_path",
    "execution_time",
    "step_place",
]
