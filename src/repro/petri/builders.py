"""Constructing ETPN control parts from schedules.

A schedule of ``n`` control steps becomes a chain of ``n`` control
places (delay 1 each).  A looping behaviour adds a guarded pair of
transitions after the last step: the loop condition re-enters the first
step (the back edge), its complement reaches the final place.

Rescheduling transformations that lengthen a schedule are realised here
simply by rebuilding the chain with more places — the paper's "dummy
control steps".
"""

from __future__ import annotations

from typing import Optional

from ..errors import PetriNetError
from .net import Guard, PetriNet


def step_place(step: int) -> str:
    """Conventional id of the control place for step ``step``."""
    return f"S{step}"

FINAL_PLACE = "Pfinal"


def control_net_from_schedule(
    name: str,
    num_steps: int,
    loop_condition: Optional[str] = None,
    step_labels: Optional[dict[int, str]] = None,
) -> PetriNet:
    """Build the control Petri net of a scheduled design.

    Args:
        name: net name (usually the design name).
        num_steps: number of control steps in the schedule.
        loop_condition: condition signal guarding the back edge, or None
            for straight-line behaviour.
        step_labels: optional annotation per step (e.g. the operations
            executing there), used by renderers.

    Returns:
        A validated :class:`PetriNet` with initial marking {S0} and final
        place ``Pfinal``.
    """
    if num_steps <= 0:
        raise PetriNetError(f"{name}: schedule must have at least one step")
    labels = step_labels or {}
    net = PetriNet(name)
    for step in range(num_steps):
        net.add_place(step_place(step), delay=1, label=labels.get(step, ""))
    net.add_place(FINAL_PLACE, delay=0, label="done")
    for step in range(num_steps - 1):
        net.add_transition(f"t{step}", [step_place(step)],
                           [step_place(step + 1)])
    last = step_place(num_steps - 1)
    if loop_condition is None:
        net.add_transition(f"t{num_steps - 1}", [last], [FINAL_PLACE])
    else:
        net.add_transition("t_loop", [last], [step_place(0)],
                           guard=Guard(loop_condition))
        net.add_transition("t_exit", [last], [FINAL_PLACE],
                           guard=Guard(loop_condition, negated=True))
    net.set_initial(step_place(0))
    net.set_final(FINAL_PLACE)
    net.validate()
    return net


def control_net_for_design(dfg, steps: dict[str, int]) -> PetriNet:
    """Build the control net for a scheduled DFG.

    Control-step labels list the operations executing in each step, which
    the harness uses when rendering the paper's schedule figures.
    """
    num_steps = max(steps.values()) + 1 if steps else 1
    labels: dict[int, str] = {}
    for op_id in sorted(steps, key=lambda o: (steps[o], o)):
        labels.setdefault(steps[op_id], "")
        separator = " " if labels[steps[op_id]] else ""
        labels[steps[op_id]] += f"{separator}{op_id}"
    return control_net_from_schedule(dfg.name, num_steps,
                                     loop_condition=dfg.loop_condition,
                                     step_labels=labels)
