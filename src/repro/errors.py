"""Exception hierarchy for the repro high-level test synthesis library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class DFGError(ReproError):
    """A data-flow graph is malformed or an operation on it is invalid."""


class HDLSyntaxError(ReproError):
    """The behavioural HDL source could not be tokenised or parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class HDLSemanticError(ReproError):
    """The behavioural HDL source parsed but is semantically invalid."""


class PetriNetError(ReproError):
    """A Petri net is malformed or an operation on it is invalid."""


class ScheduleError(ReproError):
    """A schedule is illegal (precedence or binding constraints violated)."""


class BindingError(ReproError):
    """A module/register binding is illegal for the given schedule."""


class SynthesisError(ReproError):
    """The synthesis algorithm reached an inconsistent state."""


class NetlistError(ReproError):
    """An RTL or gate-level netlist is malformed."""


class ATPGError(ReproError):
    """Test generation was asked to do something impossible."""
