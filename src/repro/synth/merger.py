"""Merger transformations with rescheduling (Algorithm 1, steps 7-14).

A merger folds two modules or two registers into one.  The fold imposes
scheduling constraints (distinct steps / disjoint lifetimes) which are
discharged by the merge-sort rescheduling of §4.3: the two nodes'
existing sequential orders are interleaved, and where the interleaving
is ambiguous (operations currently in the same step, lifetimes
currently overlapping) the controllability/observability enhancement
strategy picks the order — realised here as preferring the candidate
whose rescheduled design has the smaller time-domain sequential depth
(total variable lifetime span: how long values linger before reaching
an observable register), falling back to the smallest critical-path
increase exactly as the paper specifies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cost import CostModel
from ..errors import BindingError
from ..etpn.design import Design
from ..runtime.chaos import chaos_point
from ..sched.resched import (current_module_orders, current_register_orders,
                             merge_order_candidates, reschedule)


@dataclass(frozen=True)
class MergeOutcome:
    """The result of one applied (trial) merger."""

    design: Design
    kind: str                   # "module" or "register"
    kept: str
    absorbed: str
    delta_e: float
    delta_h: float
    order: tuple[str, ...]      # chosen execution/lifetime order

    def delta_c(self, alpha: float, beta: float) -> float:
        """ΔC = α·ΔE + β·ΔH, the paper's selection objective."""
        return alpha * self.delta_e + beta * self.delta_h


def _schedule_depth(design: Design) -> float:
    """Time-domain SR1 proxy: total steps values spend in registers."""
    return float(sum(lt.span for lt in design.lifetimes.values()))


def _pick_best(design: Design, candidates: list[Design],
               strategy: str = "enhance") -> Design | None:
    """Choose between merge-order candidates.

    ``"enhance"`` applies the C/O enhancement strategy (SR1/SR2 via the
    time-domain depth proxy, falling back to the smallest critical-path
    increase); ``"first"`` takes the first feasible order — the naive
    baseline the A2 ablation bench compares against.
    """
    if not candidates:
        return None
    if strategy == "first":
        return candidates[0]
    base_e = design.execution_time

    def strategy_key(cand: Design) -> tuple[float, float]:
        return (_schedule_depth(cand), cand.execution_time - base_e)

    return min(candidates, key=strategy_key)


def try_merge_modules(design: Design, keep: str, absorb: str,
                      cost_model: CostModel,
                      strategy: str = "enhance") -> MergeOutcome | None:
    """Attempt to merge two modules; None when infeasible.

    Infeasible cases: incompatible unit classes, or no interleaving of
    the two execution orders admits a legal schedule.
    """
    dfg = design.dfg
    try:
        new_binding = design.binding.merge_modules(keep, absorb)
        from ..alloc.binding import module_unit_class
        module_unit_class(dfg, new_binding, keep)
    except BindingError:
        return None
    seq_keep = sorted(design.binding.ops_on(keep),
                      key=lambda o: (design.steps[o], o))
    seq_absorb = sorted(design.binding.ops_on(absorb),
                        key=lambda o: (design.steps[o], o))
    module_orders = current_module_orders(dfg, design.binding, design.steps)
    module_orders.pop(absorb, None)
    register_orders = current_register_orders(dfg, design.binding,
                                              design.steps)
    candidates: list[Design] = []
    orders: dict[int, tuple[str, ...]] = {}
    for order in merge_order_candidates(seq_keep, seq_absorb, design.steps):
        order = chaos_point("synth.pre_reschedule", order)
        steps = reschedule(dfg, new_binding,
                           {**module_orders, keep: order}, register_orders)
        if steps is None:
            continue
        cand = design.replaced(steps=steps, binding=new_binding)
        orders[id(cand)] = tuple(order)
        candidates.append(cand)
    best = _pick_best(design, candidates, strategy)
    if best is None:
        return None
    delta_e, delta_h = cost_model.delta(design, best)
    return MergeOutcome(best, "module", keep, absorb, delta_e, delta_h,
                        orders[id(best)])


def try_merge_registers(design: Design, keep: str, absorb: str,
                        cost_model: CostModel,
                        strategy: str = "enhance") -> MergeOutcome | None:
    """Attempt to merge two registers; None when infeasible.

    The paper's impossible cases — circular dependences between the
    lifetime-determining operations, or one operation reading both
    variables — surface as constraint-graph cycles and yield None.
    """
    dfg = design.dfg
    try:
        new_binding = design.binding.merge_registers(keep, absorb)
    except BindingError:
        return None
    lifetimes = design.lifetimes

    def birth(var: str) -> int:
        # A declared-but-never-used variable has no lifetime: it can
        # share with anything, so order it first.
        lt = lifetimes.get(var)
        return lt.birth if lt is not None else -(10 ** 9)

    seq_keep = sorted(design.binding.vars_in(keep),
                      key=lambda v: (birth(v), v))
    seq_absorb = sorted(design.binding.vars_in(absorb),
                        key=lambda v: (birth(v), v))
    birth_rank = {v: birth(v) for v in seq_keep + seq_absorb}
    module_orders = current_module_orders(dfg, design.binding, design.steps)
    register_orders = current_register_orders(dfg, design.binding,
                                              design.steps)
    register_orders.pop(absorb, None)
    candidates: list[Design] = []
    orders: dict[int, tuple[str, ...]] = {}
    for order in merge_order_candidates(seq_keep, seq_absorb, birth_rank):
        order = chaos_point("synth.pre_reschedule", order)
        steps = reschedule(dfg, new_binding, module_orders,
                           {**register_orders, keep: order})
        if steps is None:
            continue
        cand = design.replaced(steps=steps, binding=new_binding)
        orders[id(cand)] = tuple(order)
        candidates.append(cand)
    best = _pick_best(design, candidates, strategy)
    if best is None:
        return None
    delta_e, delta_h = cost_model.delta(design, best)
    return MergeOutcome(best, "register", keep, absorb, delta_e, delta_h,
                        orders[id(best)])


def try_merge(design: Design, kind: str, node_a: str, node_b: str,
              cost_model: CostModel,
              strategy: str = "enhance") -> MergeOutcome | None:
    """Dispatch on merger kind (``"module"`` or ``"register"``)."""
    if kind == "module":
        return try_merge_modules(design, node_a, node_b, cost_model,
                                 strategy)
    if kind == "register":
        return try_merge_registers(design, node_a, node_b, cost_model,
                                   strategy)
    raise ValueError(f"unknown merger kind {kind!r}")
