"""Algorithm 1: the integrated scheduling/allocation synthesis loop.

Each iteration runs the testability analysis, selects the ``k`` best
merger pairs by the C/O balance principle, estimates ΔE and ΔH for each
(by actually rescheduling — scheduling and allocation proceed
simultaneously), applies the pair with the smallest
ΔC = α·ΔE + β·ΔH, and repeats until no merger is feasible.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cost import CostModel
from ..dfg import DFG
from ..errors import SynthesisError
from ..etpn.design import Design
from ..etpn.from_dfg import default_design
from ..runtime.budget import Budget
from ..runtime.chaos import ChaosCrash, chaos_point
from ..testability import analyze
from .candidates import rank_candidates
from .merger import MergeOutcome, try_merge
from .result import MergeRecord, SkippedCandidate, SynthesisResult


@dataclass(frozen=True)
class SynthesisParams:
    """User-controlled parameters of Algorithm 1.

    Attributes:
        k: how many balance-ranked pairs to cost each iteration.  Small
            k emphasises testability; large k emphasises ΔC.
        alpha: weight of ΔE (execution time) in ΔC.
        beta: weight of ΔH (hardware cost) in ΔC.
        require_improvement: stop once no candidate in the k-window has
            ΔC < 0.  This is the reading of "until no merger exists"
            consistent with the paper's tables (the reported designs
            keep module counts and schedule lengths comparable to the
            baselines rather than compacting maximally); set False for
            the literal keep-merging-while-feasible behaviour.
        max_execution_time: optional design constraint — mergers that
            would push E past this many control steps are rejected.
        max_iterations: safety bound on the merger loop.
        debug_lint: re-lint the design after every applied merger and
            abort with :class:`SynthesisError` the moment a
            transformation produces an illegal design.  Slow; meant for
            debugging new transformations, not production runs.
        verify_mergers: statically verify every candidate merger with
            :func:`repro.analysis.verify.merger_preserves_semantics`
            (MHP race analysis + symbolic equivalence certificate) and
            reject candidates that fail; the loop then only ever commits
            provably semantics-preserving design points.  Slower than
            ``debug_lint`` but catches control-level races and
            value-flow corruption the structural lint rules cannot see.
        check_timing: gate module mergers on static timing — a
            candidate whose merged module's measured critical path no
            longer closes at ``clock_period`` is rejected
            (:func:`repro.analysis.timing.merged_module_fits`), closing
            the loop between the allocator's step-based cost model and
            the gate-level delays it abstracts.
        clock_period: the period ``check_timing`` audits, in gate
            units; None uses the library-implied default period, at
            which every mergeable structure fits by construction — the
            gate then only bites under a user-tightened clock.
    """

    k: int = 3
    alpha: float = 2.0
    beta: float = 1.0
    require_improvement: bool = True
    max_execution_time: int | None = None
    max_iterations: int = 10_000
    debug_lint: bool = False
    verify_mergers: bool = False
    check_timing: bool = False
    clock_period: float | None = None
    #: Candidate ranking: "balance" (the paper, §3) or "connectivity"
    #: (the conventional strawman — used by the A1 ablation bench).
    selection: str = "balance"
    #: Merge-order choice: "enhance" (SR1/SR2, §4.3) or "first"
    #: (naive — used by the A2 ablation bench).
    order_strategy: str = "enhance"


def synthesize(dfg: DFG, params: SynthesisParams | None = None,
               cost_model: CostModel | None = None,
               label: str = "ours",
               budget: Budget | None = None) -> SynthesisResult:
    """Run the paper's integrated test-synthesis algorithm on ``dfg``.

    Args:
        dfg: the behavioural data-flow graph.
        params: (k, α, β) and constraints; defaults to (3, 2, 1).
        cost_model: bit width and module library for ΔH; defaults to
            8-bit with the standard library.
        label: label recorded on the produced design.
        budget: optional wall-clock/step budget charged once per merger
            iteration; on exhaustion the best design found so far is
            returned with ``degraded=True`` instead of running on.

    Returns:
        The final design and the full merger history.  A candidate whose
        rescheduling, verification or cost evaluation raises is recorded
        in ``result.skipped`` and the loop continues — one misbehaving
        candidate never aborts the run.  The loop hitting
        ``max_iterations`` likewise yields a degraded best-so-far result
        rather than an exception; only an invalid *final* design (or a
        ``debug_lint`` audit failure) still raises
        :class:`~repro.errors.SynthesisError`.
    """
    params = params or SynthesisParams()
    cost_model = cost_model or CostModel()
    design = default_design(dfg, label=label)
    history: list[MergeRecord] = []
    skipped: list[SkippedCandidate] = []
    degradation: list[str] = []

    for iteration in range(params.max_iterations):
        if budget is not None and not budget.charge():
            degradation.append(
                f"budget_exhausted:{budget.reason} after "
                f"{len(history)} mergers")
            break
        outcome = _best_merger(design, params, cost_model, iteration,
                               skipped)
        if outcome is None:
            break
        design = outcome.design.replaced(label=label)
        if params.debug_lint:
            _debug_lint(design, iteration, outcome)
        history.append(MergeRecord(
            iteration=iteration, kind=outcome.kind, kept=outcome.kept,
            absorbed=outcome.absorbed, delta_e=outcome.delta_e,
            delta_h=outcome.delta_h,
            delta_c=outcome.delta_c(params.alpha, params.beta),
            order=outcome.order))
    else:
        degradation.append(f"merger loop did not terminate within "
                           f"{params.max_iterations} iterations")

    design.validate()
    return SynthesisResult(design, history,
                           params={"k": params.k, "alpha": params.alpha,
                                   "beta": params.beta,
                                   "bits": cost_model.bits},
                           skipped=skipped,
                           degraded=bool(degradation),
                           degradation_reasons=degradation)


def _debug_lint(design: Design, iteration: int, outcome: MergeOutcome) -> None:
    """Fail fast when a merger produced an illegal design (debug aid)."""
    report = design.lint()
    if report.has_errors:
        detail = "; ".join(d.message for d in report.errors())
        raise SynthesisError(
            f"{design.dfg.name}: lint errors after merger #{iteration} "
            f"({outcome.kind} {outcome.absorbed} -> {outcome.kept}): {detail}")


def _admissible(params: SynthesisParams, cost_model: CostModel,
                base: Design, outcome: MergeOutcome) -> bool:
    if (params.max_execution_time is not None
            and outcome.design.execution_time > params.max_execution_time):
        return False
    if params.check_timing and outcome.kind == "module" \
            and not _merger_fits_period(params, cost_model, outcome):
        return False
    if params.verify_mergers and not _merger_verified(outcome):
        return False
    return True


def _merger_fits_period(params: SynthesisParams, cost_model: CostModel,
                        outcome: MergeOutcome) -> bool:
    """Does the merged module still close timing at the clock period?

    Imported lazily like the verifier: the timing gate is paid only
    under ``check_timing``, and its per-kind-set depth measurements are
    memoised, so repeated candidates over one run cost microseconds.
    """
    from ..analysis.timing import merged_module_fits
    return merged_module_fits(outcome.design, outcome.kept,
                              cost_model.bits, library=cost_model.library,
                              period=params.clock_period)


def _merger_verified(outcome: MergeOutcome) -> bool:
    """Is the merged design point provably semantics-preserving?

    Imported lazily: the analysis package is an optional heavyweight
    dependency of the inner loop, paid only under ``verify_mergers``.
    """
    from ..analysis import merger_preserves_semantics
    return merger_preserves_semantics(outcome.design)


def _best_merger(design: Design, params: SynthesisParams,
                 cost_model: CostModel, iteration: int = 0,
                 skipped: list[SkippedCandidate] | None = None
                 ) -> MergeOutcome | None:
    """Steps 3-14 of Algorithm 1 for one iteration.

    The k top balance-ranked pairs are costed and the cheapest ΔC wins.
    If none of the k is feasible the search continues down the ranking
    (the loop only ends "until no merger exists").  Candidate evaluation
    runs behind an exception barrier: a candidate whose rescheduling,
    verification or cost estimate raises is appended to ``skipped`` and
    the ranking walk continues with the next pair.
    """
    if params.selection == "connectivity":
        from .candidates import rank_candidates_connectivity
        ranked = rank_candidates_connectivity(design)
    else:
        analysis = analyze(design.datapath)
        ranked = rank_candidates(design, analysis)
    window: list[MergeOutcome] = []

    def improves(outcome: MergeOutcome) -> bool:
        return outcome.delta_c(params.alpha, params.beta) < -1e-12

    for pair in ranked:
        try:
            chaos_point("synth.candidate_eval",
                        (pair.kind, pair.node_a, pair.node_b))
            outcome = try_merge(design, pair.kind, pair.node_a,
                                pair.node_b, cost_model,
                                strategy=params.order_strategy)
            if outcome is None or not _admissible(params, cost_model,
                                                  design, outcome):
                continue
        except ChaosCrash:
            raise  # simulated process death must not be absorbed
        except Exception as exc:  # noqa: BLE001 - the barrier's point
            if skipped is not None:
                skipped.append(SkippedCandidate(
                    iteration, pair.kind, pair.node_a, pair.node_b,
                    f"{type(exc).__name__}: {exc}"))
            continue
        window.append(outcome)
        if len(window) < params.k:
            continue
        # The k-window is full.  Without the improvement gate the best
        # ΔC in the window wins outright; with it, keep extending the
        # ranking until the window contains an improving merger — the
        # balance principle then still decides *which* improving merger
        # is taken first.
        if not params.require_improvement or any(improves(o) for o in window):
            break
    if not window:
        return None
    if params.require_improvement:
        window = [o for o in window if improves(o)]
        if not window:
            return None
    return min(window,
               key=lambda o: (o.delta_c(params.alpha, params.beta),
                              o.kind, o.kept, o.absorbed))
