"""Design-space exploration: the Pareto front over (E, H, testability).

Sweeps Algorithm 1's user parameters and, for every distinct design
produced, records execution time, hardware cost and testability
quality; dominated points are filtered out.  This is the tool a user
runs to pick (k, α, β) for a new behaviour instead of guessing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cost import CostModel
from ..dfg import DFG
from ..etpn.design import Design
from ..testability import analyze
from .algorithm import SynthesisParams, synthesize

#: The default sweep grid: the paper's settings plus the extremes that
#: actually move the result (k and the α/β ratio).
DEFAULT_GRID = [
    (1, 2.0, 1.0), (3, 2.0, 1.0), (6, 2.0, 1.0),
    (3, 10.0, 1.0), (3, 1.0, 10.0), (6, 1.0, 10.0),
]


@dataclass(frozen=True)
class DesignPoint:
    """One explored design with its three objectives."""

    params: tuple[int, float, float]
    execution_time: int
    hardware_mm2: float
    quality: float                       # higher is better
    design: Design = field(compare=False, hash=False, repr=False)

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance: no worse everywhere, better somewhere."""
        no_worse = (self.execution_time <= other.execution_time
                    and self.hardware_mm2 <= other.hardware_mm2 + 1e-12
                    and self.quality >= other.quality - 1e-12)
        better = (self.execution_time < other.execution_time
                  or self.hardware_mm2 < other.hardware_mm2 - 1e-12
                  or self.quality > other.quality + 1e-12)
        return no_worse and better


def explore(dfg: DFG, cost_model: CostModel | None = None,
            grid: list[tuple[int, float, float]] | None = None,
            cache: object | None = None) -> list[DesignPoint]:
    """Sweep the grid and return every distinct design point.

    ``cache`` is an optional :class:`~repro.harness.cache.ResultCache`:
    each grid point's synthesis is keyed on the canonical DFG and the
    full parameter set, so re-running a sweep (or sharing parameters
    with a table run) is served from the cache.
    """
    cost_model = cost_model or CostModel()
    points: list[DesignPoint] = []
    seen: set[tuple] = set()
    for k, alpha, beta in (grid or DEFAULT_GRID):
        params = SynthesisParams(k=k, alpha=alpha, beta=beta)
        result = None
        key = None
        if cache is not None:
            from ..harness.cache import synthesis_key
            key = synthesis_key(dfg, "ours", params, cost_model.bits)
            result = cache.get_synthesis(key)  # type: ignore[attr-defined]
        if result is None:
            result = synthesize(dfg, params, cost_model)
            if cache is not None and key is not None:
                cache.put_synthesis(key, result)  # type: ignore[attr-defined]
        design = result.design
        signature = (tuple(sorted(design.steps.items())),
                     tuple(sorted(design.binding.module_of.items())),
                     tuple(sorted(design.binding.register_of.items())))
        if signature in seen:
            continue
        seen.add(signature)
        points.append(DesignPoint(
            params=(k, alpha, beta),
            execution_time=design.execution_time,
            hardware_mm2=cost_model.hardware_total(design.datapath),
            quality=analyze(design.datapath).design_quality(),
            design=design))
    return points


def pareto_front(points: list[DesignPoint]) -> list[DesignPoint]:
    """The non-dominated subset, sorted by execution time."""
    front = [p for p in points
             if not any(q.dominates(p) for q in points)]
    return sorted(front, key=lambda p: (p.execution_time, p.hardware_mm2))


def render_front(points: list[DesignPoint]) -> str:
    """A text table of a point set (front or full sweep)."""
    lines = [f"{'(k, a, b)':<16} {'E':>3} {'H mm2':>8} {'quality':>8} "
             f"{'mods':>4} {'regs':>4}"]
    for point in points:
        k, alpha, beta = point.params
        lines.append(f"({k}, {alpha:g}, {beta:g})".ljust(16)
                     + f" {point.execution_time:>3}"
                     f" {point.hardware_mm2:>8.3f}"
                     f" {point.quality:>8.3f}"
                     f" {point.design.binding.module_count():>4}"
                     f" {point.design.binding.register_count():>4}")
    return "\n".join(lines)
