"""Candidate pair selection by the C/O balance principle (Algorithm 1,
step 6).

Every structurally-compatible pair of modules (same unit class) and
pair of registers is a potential merger; the testability analysis ranks
them so that good-C/bad-O nodes fold onto good-O/bad-C nodes, and pairs
that would create module↔register self-loops sink to the bottom (the
paper wants "as few loops as possible").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..etpn.design import Design
from ..testability import TestabilityAnalysis, balance_score


@dataclass(frozen=True)
class CandidatePair:
    """One ranked merger candidate."""

    kind: str       # "module" or "register"
    node_a: str
    node_b: str


def _creates_self_loop(design: Design, kind: str, a: str, b: str) -> bool:
    """Would merging ``a`` and ``b`` close a module↔register loop?"""
    dp = design.datapath
    if kind == "module":
        reads_a = {arc.src for arc in dp.incoming(a)}
        reads_b = {arc.src for arc in dp.incoming(b)}
        feeds_a = {arc.dst for arc in dp.outgoing(a)}
        feeds_b = {arc.dst for arc in dp.outgoing(b)}
        return bool((feeds_a & reads_b) or (feeds_b & reads_a))
    producers_a = {arc.src for arc in dp.incoming(a)}
    producers_b = {arc.src for arc in dp.incoming(b)}
    consumers_a = {arc.dst for arc in dp.outgoing(a)}
    consumers_b = {arc.dst for arc in dp.outgoing(b)}
    return bool((producers_a & consumers_b) or (producers_b & consumers_a))


def compatible_pairs(design: Design) -> list[CandidatePair]:
    """All structurally-compatible merger pairs of the current design."""
    from ..alloc.binding import module_unit_class

    pairs: list[CandidatePair] = []
    modules = sorted(design.binding.modules())
    classes = {m: module_unit_class(design.dfg, design.binding, m)
               for m in modules}
    for i, a in enumerate(modules):
        for b in modules[i + 1:]:
            if classes[a] == classes[b]:
                pairs.append(CandidatePair("module", a, b))
    registers = sorted(design.binding.registers())
    for i, a in enumerate(registers):
        for b in registers[i + 1:]:
            pairs.append(CandidatePair("register", a, b))
    return pairs


def _post_merge_depth(design: Design, pair: CandidatePair) -> float:
    """Mean controllable→observable register depth after the merge.

    A cheap structural preview (no rescheduling): it realises rule SR1 —
    prefer folds that shorten the path from controllable to observable
    registers — directly in candidate ranking.
    """
    from ..etpn.datapath import DataPath
    from ..testability.depth import register_depths

    if pair.kind == "module":
        binding = design.binding.merge_modules(pair.node_a, pair.node_b)
    else:
        binding = design.binding.merge_registers(pair.node_a, pair.node_b)
    depths = register_depths(DataPath(design.dfg, binding))
    if not depths:
        return 0.0
    return sum(d.total for d in depths.values()) / len(depths)


def rank_candidates(design: Design, analysis: TestabilityAnalysis,
                    pairs: list[CandidatePair] | None = None
                    ) -> list[CandidatePair]:
    """Rank merger pairs by the C/O balance principle.

    The primary key is the merged node's balance quality (quantised so
    near-ties fall through); ties break towards folds that shorten the
    mean sequential depth (SR1), avoid creating self-loops, and have
    the most complementary parents.
    """
    if pairs is None:
        pairs = compatible_pairs(design)
    nodes = analysis.all_nodes()

    def key(pair: CandidatePair):
        score = balance_score(nodes[pair.node_a], nodes[pair.node_b])
        quality, complement = score.key()
        loop = _creates_self_loop(design, pair.kind, pair.node_a, pair.node_b)
        return (-quality, -complement, loop, pair.kind, pair.node_a,
                pair.node_b)

    return sorted(pairs, key=key)


def top_k(design: Design, analysis: TestabilityAnalysis,
          k: int) -> list[CandidatePair]:
    """The k best-balanced merger candidates (Algorithm 1, step 6)."""
    return rank_candidates(design, analysis)[:max(k, 1)]


def rank_candidates_connectivity(design: Design,
                                 pairs: list[CandidatePair] | None = None
                                 ) -> list[CandidatePair]:
    """Ablation ranking: conventional connectivity/closeness order.

    The §3 strawman — prefer merging the nodes that share the most
    neighbours (minimising muxes), ignoring testability.  Used by the
    A1 ablation bench to quantify what the balance principle buys.
    """
    if pairs is None:
        pairs = compatible_pairs(design)
    dp = design.datapath

    def closeness(pair: CandidatePair) -> int:
        def neighbours(node: str) -> set[str]:
            return ({a.src for a in dp.incoming(node)}
                    | {a.dst for a in dp.outgoing(node)})
        return len(neighbours(pair.node_a) & neighbours(pair.node_b))

    return sorted(pairs, key=lambda p: (-closeness(p), p.kind, p.node_a,
                                        p.node_b))
