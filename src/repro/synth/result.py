"""Synthesis results: the final design plus the merger history."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..etpn.design import Design


@dataclass(frozen=True)
class MergeRecord:
    """One accepted merger of the synthesis run."""

    iteration: int
    kind: str
    kept: str
    absorbed: str
    delta_e: float
    delta_h: float
    delta_c: float
    order: tuple[str, ...]


@dataclass(frozen=True)
class SkippedCandidate:
    """A merger candidate whose evaluation blew up and was skipped.

    The per-candidate exception barrier in Algorithm 1 records these
    instead of letting one misbehaving candidate abort the whole
    synthesis run; ``reason`` keeps the exception type and message for
    post-mortems.
    """

    iteration: int
    kind: str
    node_a: str
    node_b: str
    reason: str


@dataclass
class SynthesisResult:
    """Everything a synthesis flow returns.

    Attributes:
        design: the final ETPN design point.
        history: accepted mergers in application order (empty for the
            one-shot baseline flows).
        params: the (k, α, β) and bit width the run used.
        skipped: candidates whose evaluation raised and were survived.
        degraded: True when the run stopped early (budget exhausted,
            iteration ceiling) — ``design`` is then the best design
            found so far, still validated, not the converged optimum.
        degradation_reasons: why the run is marked degraded.
    """

    design: Design
    history: list[MergeRecord] = field(default_factory=list)
    params: dict = field(default_factory=dict)
    skipped: list[SkippedCandidate] = field(default_factory=list)
    degraded: bool = False
    degradation_reasons: list[str] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        """Number of mergers applied."""
        return len(self.history)

    def summary(self) -> dict:
        """Merge the design's structural summary with run metadata."""
        info = dict(self.design.summary())
        info["iterations"] = self.iterations
        info["label"] = self.design.label
        if self.degraded:
            info["degraded"] = True
            info["degradation_reasons"] = list(self.degradation_reasons)
        return info
