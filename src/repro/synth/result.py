"""Synthesis results: the final design plus the merger history."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..etpn.design import Design


@dataclass(frozen=True)
class MergeRecord:
    """One accepted merger of the synthesis run."""

    iteration: int
    kind: str
    kept: str
    absorbed: str
    delta_e: float
    delta_h: float
    delta_c: float
    order: tuple[str, ...]


@dataclass
class SynthesisResult:
    """Everything a synthesis flow returns.

    Attributes:
        design: the final ETPN design point.
        history: accepted mergers in application order (empty for the
            one-shot baseline flows).
        params: the (k, α, β) and bit width the run used.
    """

    design: Design
    history: list[MergeRecord] = field(default_factory=list)
    params: dict = field(default_factory=dict)

    @property
    def iterations(self) -> int:
        """Number of mergers applied."""
        return len(self.history)

    def summary(self) -> dict:
        """Merge the design's structural summary with run metadata."""
        info = dict(self.design.summary())
        info["iterations"] = self.iterations
        info["label"] = self.design.label
        return info
