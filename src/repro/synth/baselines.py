"""The three comparison flows of the paper's §5.

* **CAMAD** — no testability consideration: ASAP schedule, then
  connectivity/closeness allocation for both modules and registers
  (minimise interconnect, the conventional behaviour §3 criticises).
* **Approach 1** — force-directed scheduling (no testability), followed
  by the same allocation algorithm as Approach 2.
* **Approach 2** — Lee's mobility-path scheduling (testability-aware),
  followed by the modified left-edge allocation.

All three return a validated :class:`~repro.etpn.design.Design`, so the
harness pushes every flow through the identical RTL→gates→ATPG path.
"""

from __future__ import annotations

from ..alloc import (Binding, connectivity_left_edge,
                     connectivity_module_binding, min_module_binding,
                     testability_left_edge)
from ..cost import CostModel
from ..dfg import DFG, variable_lifetimes
from ..dfg.analysis import asap_steps
from ..etpn.design import Design
from ..sched import fds_schedule, mobility_path_schedule
from .algorithm import SynthesisParams, synthesize
from .result import SynthesisResult


def _design(dfg: DFG, steps: dict[str, int], module_of: dict[str, str],
            register_of: dict[str, str], label: str) -> Design:
    design = Design(dfg, steps, Binding(module_of, register_of), label=label)
    design.validate()
    return design


def run_camad(dfg: DFG, cost_model: CostModel | None = None,
              share_registers: bool = False) -> SynthesisResult:
    """The CAMAD baseline: connectivity-driven, testability-blind.

    The paper's CAMAD rows (Tables 1-3) share functional modules by
    connectivity but keep one register per variable (e.g. twelve
    dedicated registers and only four muxes for Ex), so dedicated
    registers are the default here; ``share_registers=True`` adds
    connectivity-driven register packing for the ablation benches.
    """
    steps = asap_steps(dfg)
    module_of = connectivity_module_binding(dfg, steps)
    if share_registers:
        lifetimes = variable_lifetimes(dfg, steps)
        register_of = connectivity_left_edge(dfg, lifetimes, module_of)
    else:
        register_of = {name: f"R_{name}" for name, var in
                       sorted(dfg.variables.items()) if var.needs_register()}
    design = _design(dfg, steps, module_of, register_of, "camad")
    return SynthesisResult(design, params={"flow": "camad"})


def run_approach1(dfg: DFG, cost_model: CostModel | None = None
                  ) -> SynthesisResult:
    """Approach 1: FDS scheduling + modified left-edge allocation."""
    steps = fds_schedule(dfg)
    module_of = min_module_binding(dfg, steps)
    lifetimes = variable_lifetimes(dfg, steps)
    register_of = testability_left_edge(dfg, lifetimes)
    design = _design(dfg, steps, module_of, register_of, "approach1")
    return SynthesisResult(design, params={"flow": "approach1"})


def run_approach2(dfg: DFG, cost_model: CostModel | None = None
                  ) -> SynthesisResult:
    """Approach 2: mobility-path scheduling + modified left-edge."""
    steps = mobility_path_schedule(dfg)
    module_of = min_module_binding(dfg, steps)
    lifetimes = variable_lifetimes(dfg, steps)
    register_of = testability_left_edge(dfg, lifetimes)
    design = _design(dfg, steps, module_of, register_of, "approach2")
    return SynthesisResult(design, params={"flow": "approach2"})


def run_ours(dfg: DFG, params: SynthesisParams | None = None,
             cost_model: CostModel | None = None,
             budget: object = None) -> SynthesisResult:
    """The paper's integrated algorithm (Algorithm 1)."""
    return synthesize(dfg, params, cost_model, label="ours", budget=budget)


#: Flow registry used by the harness and the CLI.
FLOWS = {
    "camad": run_camad,
    "approach1": run_approach1,
    "approach2": run_approach2,
    "ours": run_ours,
}


def run_flow(name: str, dfg: DFG,
             cost_model: CostModel | None = None,
             params: SynthesisParams | None = None,
             budget: object = None) -> SynthesisResult:
    """Run one of the four §5 flows by name.

    ``budget`` bounds the iterative flow (``ours``); the one-shot
    baselines complete in a single pass and ignore it.
    """
    if name not in FLOWS:
        raise KeyError(f"unknown flow {name!r}; choose from {sorted(FLOWS)}")
    if name == "ours":
        return run_ours(dfg, params=params, cost_model=cost_model,
                        budget=budget)
    return FLOWS[name](dfg, cost_model)
