"""The paper's synthesis algorithm, candidates, mergers and baselines."""

from .algorithm import SynthesisParams, synthesize
from .baselines import (FLOWS, run_approach1, run_approach2, run_camad,
                        run_flow, run_ours)
from .explore import DesignPoint, explore, pareto_front, render_front
from .candidates import (CandidatePair, compatible_pairs, rank_candidates,
                         rank_candidates_connectivity, top_k)
from .merger import (MergeOutcome, try_merge, try_merge_modules,
                     try_merge_registers)
from .result import MergeRecord, SkippedCandidate, SynthesisResult

__all__ = [
    "FLOWS",
    "CandidatePair",
    "DesignPoint",
    "MergeOutcome",
    "MergeRecord",
    "SkippedCandidate",
    "SynthesisParams",
    "SynthesisResult",
    "compatible_pairs",
    "explore",
    "pareto_front",
    "render_front",
    "rank_candidates",
    "rank_candidates_connectivity",
    "run_approach1",
    "run_approach2",
    "run_camad",
    "run_flow",
    "run_ours",
    "synthesize",
    "top_k",
    "try_merge",
    "try_merge_modules",
    "try_merge_registers",
]
