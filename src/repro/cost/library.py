"""The module library: area and delay parameters of data-path units.

Paper §4.2: "The cost of data path units which performs logic,
arithmetic, or storage operations is given by the corresponding module
parameters stored in the module library."

Areas are in mm² for a mid-1990s process, calibrated so that complete
benchmark data paths land in the same range as the paper's Tables 2-3
(≈0.5 mm² at 4 bits up to ≈3 mm² at 16 bits).  Absolute calibration is
cosmetic; relative comparisons between designs come entirely from their
structure (component counts, mux fan-ins and floorplanned wirelength).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dfg.ops import UnitClass


@dataclass(frozen=True)
class ModuleParams:
    """Area model ``quadratic·bits² + linear·bits + fixed`` and delay."""

    quadratic: float
    linear: float
    fixed: float
    delay_steps: int = 1

    def area(self, bits: int) -> float:
        """Area in mm² of one instance at the given bit width."""
        return self.quadratic * bits * bits + self.linear * bits + self.fixed


@dataclass(frozen=True)
class ModuleLibrary:
    """Area/delay parameters for every data-path unit kind."""

    units: dict[UnitClass, ModuleParams] = field(default_factory=lambda: {
        UnitClass.MULTIPLIER: ModuleParams(0.00080, 0.0040, 0.002),
        UnitClass.ALU: ModuleParams(0.0, 0.0042, 0.001),
        UnitClass.SHIFTER: ModuleParams(0.0, 0.0030, 0.001),
        UnitClass.WIRE: ModuleParams(0.0, 0.0, 0.0),
    })
    register: ModuleParams = ModuleParams(0.0, 0.0021, 0.0005)
    mux_per_input: ModuleParams = ModuleParams(0.0, 0.0008, 0.0002)
    #: Wire width factor: bit width × this = Wid(A) in mm.
    wire_pitch_mm: float = 0.00055
    #: Edge length, in mm, of one floorplan slot at 1 bit (scales with
    #: the square root of the average unit area).
    slot_pitch_mm: float = 0.11

    def unit_area(self, unit: UnitClass, bits: int) -> float:
        """Area of one functional unit of class ``unit``."""
        return self.units[unit].area(bits)

    def register_area(self, bits: int) -> float:
        """Area of one register."""
        return self.register.area(bits)

    def mux_area(self, inputs: int, bits: int) -> float:
        """Area of one multiplexer with ``inputs`` data inputs."""
        if inputs <= 1:
            return 0.0
        return self.mux_per_input.area(bits) * inputs

    def unit_delay(self, unit: UnitClass) -> int:
        """Execution delay, in control steps, of a unit class."""
        return self.units[unit].delay_steps

    def wire_width(self, bits: int) -> float:
        """Wid(A): the physical width of a ``bits``-wide connection."""
        return self.wire_pitch_mm * bits


#: The library used by all experiments unless a caller overrides it.
DEFAULT_LIBRARY = ModuleLibrary()
