"""Width narrowing: price the data path at its *proved* bit widths.

The cost model declares one global bit width and prices every module,
register and wire at it (paper §4.2).  The dataflow certificate
(:mod:`repro.analysis.dataflow`) often proves tighter per-signal
requirements — an ALU adding two 8-bit inputs needs 9 bits even inside
a 16-bit datapath, and a register holding a comparison result needs 1.
:func:`narrow_design` re-prices the data path with each component at
the width the certificate proves sufficient:

* a **module** gets the widest requirement over its bound operations
  (result *and* operand words — the unit must carry both);
* a **register** gets the widest requirement over its stored
  variables' whole lifetimes;
* an **arc** gets the width of the narrower endpoint (the wire cannot
  carry more information than either end holds), conditions stay 1 bit;
* **muxes** are priced at their sink's narrowed width.

Narrowing is **gated by the equivalence certifier**: the design point
is re-certified first and an invalid certificate refuses the
optimisation (``applied=False``) rather than reporting an area saving
for a design whose behaviour is not proved — the dataflow facts are
only meaningful for the behaviour the design provably computes.  The
reported delta is always against the same library, floorplan and
datapath, so it isolates exactly the width effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from ..analysis.dataflow import DataflowCertificate, analyze_dataflow
from ..etpn.datapath import DataPath, NodeKind
from ..etpn.design import Design
from .estimate import CostModel, HardwareCost
from .floorplan import floorplan
from .library import DEFAULT_LIBRARY, ModuleLibrary


@dataclass
class NarrowingReport:
    """Outcome of one width-narrowing attempt.

    Attributes:
        name: the design's DFG name.
        bits: declared datapath width.
        applied: True when the narrowed pricing is trustworthy (the
            equivalence certifier validated the design point).
        reason: why narrowing was refused (empty when applied).
        equivalence_valid: verdict of the gating certifier.
        module_width: proved width per module id.
        register_width: proved width per register id.
        baseline: hardware cost at the declared width.
        narrowed: hardware cost at the proved widths (equals
            ``baseline`` when not applied).
        certificate: the dataflow certificate the widths came from.
    """

    name: str
    bits: int
    applied: bool
    reason: str
    equivalence_valid: bool
    module_width: dict[str, int]
    register_width: dict[str, int]
    baseline: HardwareCost
    narrowed: HardwareCost
    certificate: Optional[DataflowCertificate] = field(default=None,
                                                       repr=False)

    @property
    def area_delta_mm2(self) -> float:
        """Area saved by narrowing (0.0 when refused)."""
        return self.baseline.total_mm2 - self.narrowed.total_mm2

    @property
    def area_delta_pct(self) -> float:
        """The saving as a percentage of the baseline."""
        total = self.baseline.total_mm2
        return 100.0 * self.area_delta_mm2 / total if total else 0.0

    def summary(self) -> str:
        """One line for CLI output and logs."""
        if not self.applied:
            return f"{self.name}@{self.bits}b: narrowing refused " \
                   f"({self.reason})"
        return (f"{self.name}@{self.bits}b: {self.baseline.total_mm2:.3f} "
                f"-> {self.narrowed.total_mm2:.3f} mm2 "
                f"(-{self.area_delta_pct:.1f}%)")

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (certificate elided; see its own
        ``to_dict``)."""
        return {
            "name": self.name,
            "bits": self.bits,
            "applied": self.applied,
            "reason": self.reason,
            "equivalence_valid": self.equivalence_valid,
            "module_width": dict(sorted(self.module_width.items())),
            "register_width": dict(sorted(self.register_width.items())),
            "baseline_mm2": round(self.baseline.total_mm2, 6),
            "narrowed_mm2": round(self.narrowed.total_mm2, 6),
            "area_delta_mm2": round(self.area_delta_mm2, 6),
            "area_delta_pct": round(self.area_delta_pct, 3),
        }


def proved_widths(design: Design, cert: DataflowCertificate
                  ) -> tuple[dict[str, int], dict[str, int]]:
    """Per-module and per-register proved widths, clamped to the
    certificate's declared width."""
    bits = cert.bits
    binding = design.binding
    module_width = {}
    for module, ops in binding.modules().items():
        widths = [cert.op_width(o) for o in ops if o in cert.op_facts]
        module_width[module] = min(bits, max(widths, default=bits))
    register_width = {}
    for register, variables in binding.registers().items():
        widths = [cert.var_width(v) for v in variables]
        register_width[register] = min(bits, max(widths, default=bits))
    return module_width, register_width


def _node_width(datapath: DataPath, node_id: str, cert: DataflowCertificate,
                module_width: Mapping[str, int],
                register_width: Mapping[str, int]) -> int:
    """Proved width of an arbitrary data-path node."""
    node = datapath.nodes[node_id]
    if node.kind == NodeKind.MODULE:
        return module_width.get(node_id, cert.bits)
    if node.kind == NodeKind.REGISTER:
        return register_width.get(node_id, cert.bits)
    if node.kind in (NodeKind.PORT_IN, NodeKind.PORT_OUT):
        return min(cert.bits, max((cert.var_width(v)
                                   for v in node.variables),
                                  default=cert.bits))
    if node.kind == NodeKind.CONST:
        return max(1, int(node.value or 0).bit_length())
    return 1  # COND: a 1-bit controller wire


def _narrowed_hardware(datapath: DataPath, cert: DataflowCertificate,
                       module_width: Mapping[str, int],
                       register_width: Mapping[str, int],
                       library: ModuleLibrary) -> HardwareCost:
    """Mirror :meth:`CostModel.hardware` with per-node proved widths."""
    plan = floorplan(datapath, library.slot_pitch_mm)

    def width_of(node_id: str) -> int:
        return _node_width(datapath, node_id, cert,
                           module_width, register_width)

    units = sum(library.unit_area(datapath.module_class(m.node_id),
                                  width_of(m.node_id))
                for m in datapath.modules())
    registers = sum(library.register_area(width_of(r.node_id))
                    for r in datapath.registers())
    muxes = 0.0
    for node_id in datapath.nodes:
        for port in datapath.input_ports(node_id):
            fanin = len(datapath.sources_of_port(node_id, port))
            muxes += library.mux_area(fanin, width_of(node_id))
    wiring = 0.0
    for arc in datapath.arcs:
        bits = 1 if arc.is_condition else min(width_of(arc.src),
                                              width_of(arc.dst))
        wiring += plan.wirelength_mm(arc.src, arc.dst) \
            * library.wire_width(bits)
    return HardwareCost(units, registers, muxes, wiring)


def narrow_design(design: Design, bits: int,
                  assumptions: Optional[Mapping[str, tuple[int, int]]]
                  = None,
                  cert: Optional[DataflowCertificate] = None,
                  library: Optional[ModuleLibrary] = None
                  ) -> NarrowingReport:
    """Attempt to narrow one design point and report the area effect.

    Args:
        design: a scheduled, bound ETPN design.
        bits: the declared datapath width.
        assumptions: entry intervals per input, passed to the dataflow
            engine (None analyses the full input range).
        cert: a pre-computed dataflow certificate to reuse; must match
            ``bits``.
        library: module library (the default library when None).

    The equivalence certifier gates the result: when it cannot certify
    the design point, the report keeps the baseline cost and says why.
    """
    from ..analysis.equivalence import certify

    lib = library if library is not None else DEFAULT_LIBRARY
    baseline = CostModel(bits=bits, library=lib).hardware(design.datapath)
    if cert is None:
        cert = analyze_dataflow(design.dfg, bits, assumptions=assumptions)
    elif cert.bits != bits:
        raise ValueError(f"certificate width {cert.bits} != datapath "
                         f"width {bits}")

    try:
        equivalence = certify(design.dfg, design.steps, design.binding)
        valid = equivalence.valid
        reason = "" if valid else "equivalence certifier found " + \
            f"{len(equivalence.divergences)} divergence(s)"
    except Exception as exc:  # uncertifiable designs refuse, not crash
        valid = False
        reason = f"equivalence certification failed: {exc}"
    if not valid:
        return NarrowingReport(
            name=design.dfg.name, bits=bits, applied=False, reason=reason,
            equivalence_valid=False, module_width={}, register_width={},
            baseline=baseline, narrowed=baseline, certificate=cert)

    module_width, register_width = proved_widths(design, cert)
    narrowed = _narrowed_hardware(design.datapath, cert, module_width,
                                  register_width, lib)
    return NarrowingReport(
        name=design.dfg.name, bits=bits, applied=True, reason="",
        equivalence_valid=True, module_width=module_width,
        register_width=register_width, baseline=baseline,
        narrowed=narrowed, certificate=cert)
