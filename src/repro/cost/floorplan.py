"""Connectivity-driven constructive floorplanning (Peng & Kuchcinski).

Paper §4.2: wiring cost depends on placement, so the hardware estimator
floorplans the data path first "using a simple heuristics based on the
connectivity between the data path vertices".

The heuristic here is the classic constructive one: seed the placement
with the most-connected vertex at the centre of a grid, then repeatedly
place the unplaced vertex with the strongest connectivity to the placed
set onto the free slot minimising its total Manhattan wirelength to its
placed neighbours.  Deterministic (name-based tie-breaks) so that cost
deltas between designs are stable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..etpn.datapath import DataPath


@dataclass(frozen=True)
class Slot:
    """A grid position; coordinates are in slot units."""

    x: int
    y: int

    def distance(self, other: "Slot") -> int:
        """Manhattan distance in slot units."""
        return abs(self.x - other.x) + abs(self.y - other.y)


class Floorplan:
    """A placement of every data-path node onto grid slots."""

    def __init__(self, positions: dict[str, Slot], slot_pitch_mm: float) -> None:
        self.positions = positions
        self.slot_pitch_mm = slot_pitch_mm

    def wirelength_mm(self, src: str, dst: str) -> float:
        """Len(A): centre-to-centre Manhattan length of a connection."""
        distance = self.positions[src].distance(self.positions[dst])
        # Adjacent slots still need a minimal route of one pitch.
        return max(distance, 1) * self.slot_pitch_mm

    def bounding_box(self) -> tuple[int, int]:
        """(width, height) of the occupied grid region, in slots."""
        xs = [s.x for s in self.positions.values()]
        ys = [s.y for s in self.positions.values()]
        return (max(xs) - min(xs) + 1, max(ys) - min(ys) + 1)


def _spiral(limit: int):
    """Yield grid slots in a deterministic spiral around the origin."""
    yield Slot(0, 0)
    produced = 1
    ring = 1
    while produced < limit:
        x, y = ring, ring
        moves = [(-1, 0), (0, -1), (1, 0), (0, 1)]
        for dx, dy in moves:
            for _ in range(2 * ring):
                if produced >= limit:
                    return
                yield Slot(x, y)
                produced += 1
                x, y = x + dx, y + dy
        ring += 1


def floorplan(datapath: DataPath, slot_pitch_mm: float) -> Floorplan:
    """Place all data-path nodes with the constructive heuristic."""
    nodes = sorted(datapath.nodes)
    connectivity: dict[str, dict[str, int]] = {n: {} for n in nodes}
    for arc in datapath.arcs:
        if arc.src == arc.dst:
            continue
        connectivity[arc.src][arc.dst] = connectivity[arc.src].get(arc.dst, 0) + 1
        connectivity[arc.dst][arc.src] = connectivity[arc.dst].get(arc.src, 0) + 1

    free_slots = list(_spiral(4 * len(nodes) + 16))
    positions: dict[str, Slot] = {}

    def degree(node: str) -> int:
        return sum(connectivity[node].values())

    unplaced = set(nodes)
    seed = max(nodes, key=lambda n: (degree(n), n))
    positions[seed] = free_slots.pop(0)
    unplaced.remove(seed)

    while unplaced:
        def attraction(node: str) -> int:
            return sum(w for other, w in connectivity[node].items()
                       if other in positions)
        candidate = max(sorted(unplaced), key=attraction)
        best_slot = None
        best_cost = None
        for index, slot in enumerate(free_slots):
            cost = sum(w * slot.distance(positions[other])
                       for other, w in connectivity[candidate].items()
                       if other in positions)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_slot = index
        positions[candidate] = free_slots.pop(best_slot)
        unplaced.remove(candidate)

    return Floorplan(positions, slot_pitch_mm)
