"""Cost estimation: module library, floorplanning and H/E estimators."""

from .estimate import CostModel, HardwareCost
from .floorplan import Floorplan, Slot, floorplan
from .library import DEFAULT_LIBRARY, ModuleLibrary, ModuleParams
from .narrow import NarrowingReport, narrow_design, proved_widths

__all__ = [
    "DEFAULT_LIBRARY",
    "CostModel",
    "Floorplan",
    "HardwareCost",
    "ModuleLibrary",
    "ModuleParams",
    "NarrowingReport",
    "Slot",
    "floorplan",
    "narrow_design",
    "proved_widths",
]
