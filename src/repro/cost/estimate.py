"""Hardware and execution-time estimation (paper §4.2).

``H = Σ Area(V_i) + Σ Len(A_j) × Wid(A_j)`` over the floorplanned data
path; ``E`` is the critical path of the control Petri net.  The
synthesis algorithm compares candidate mergers by ΔE and ΔH, the
increases these two numbers suffer when the merger's scheduling
constraints are discharged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..etpn.datapath import DataPath, NodeKind
from ..etpn.design import Design
from .floorplan import Floorplan, floorplan
from .library import DEFAULT_LIBRARY, ModuleLibrary


@dataclass(frozen=True)
class HardwareCost:
    """Itemised hardware cost of a data path, in mm²."""

    units_mm2: float
    registers_mm2: float
    muxes_mm2: float
    wiring_mm2: float

    @property
    def total_mm2(self) -> float:
        """H: the number reported in the paper's Area columns."""
        return (self.units_mm2 + self.registers_mm2 + self.muxes_mm2
                + self.wiring_mm2)


@dataclass
class CostModel:
    """Bundles the module library and data-path bit width.

    One CostModel instance is shared by a whole synthesis run, so every
    ΔH the algorithm compares uses identical parameters.
    """

    bits: int = 8
    library: ModuleLibrary = field(default_factory=lambda: DEFAULT_LIBRARY)

    # ------------------------------------------------------------------
    def node_area(self, datapath: DataPath, node_id: str) -> float:
        """Area of one data-path node (ports and constants are free)."""
        node = datapath.nodes[node_id]
        if node.kind == NodeKind.MODULE:
            return self.library.unit_area(datapath.module_class(node_id),
                                          self.bits)
        if node.kind == NodeKind.REGISTER:
            return self.library.register_area(self.bits)
        return 0.0

    def hardware(self, datapath: DataPath,
                 plan: Floorplan | None = None) -> HardwareCost:
        """Compute H for a data path (floorplanning it if needed)."""
        if plan is None:
            plan = floorplan(datapath, self.library.slot_pitch_mm)
        units = sum(self.node_area(datapath, m.node_id)
                    for m in datapath.modules())
        registers = sum(self.node_area(datapath, r.node_id)
                        for r in datapath.registers())
        muxes = 0.0
        for node_id in datapath.nodes:
            for port in datapath.input_ports(node_id):
                fanin = len(datapath.sources_of_port(node_id, port))
                muxes += self.library.mux_area(fanin, self.bits)
        wiring = 0.0
        for arc in datapath.arcs:
            bits = 1 if arc.is_condition else self.bits
            wiring += (plan.wirelength_mm(arc.src, arc.dst)
                       * self.library.wire_width(bits))
        return HardwareCost(units, registers, muxes, wiring)

    def hardware_total(self, datapath: DataPath) -> float:
        """Shorthand for ``hardware(...).total_mm2``."""
        return self.hardware(datapath).total_mm2

    # ------------------------------------------------------------------
    def execution(self, design: Design) -> int:
        """E: the control-part critical path of a design."""
        return design.execution_time

    def delta(self, before: Design, after: Design) -> tuple[float, float]:
        """(ΔE, ΔH) of a candidate transformation."""
        delta_e = float(self.execution(after) - self.execution(before))
        delta_h = (self.hardware_total(after.datapath)
                   - self.hardware_total(before.datapath))
        return delta_e, delta_h
