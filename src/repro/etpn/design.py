"""The ETPN design point: DFG + schedule + binding.

A :class:`Design` bundles the three facts that fully determine an
RT-level implementation and lazily derives the expensive views: the
structural data path, the control Petri net, variable lifetimes and the
execution time (Petri-net critical path).  Designs are immutable;
transformations produce new ones via :meth:`Design.replaced`.
"""

from __future__ import annotations

from functools import cached_property

from ..alloc.binding import Binding, validate_binding
from ..dfg import DFG
from ..dfg.lifetime import Lifetime, variable_lifetimes
from ..petri import PetriNet, control_net_for_design, execution_time
from ..sched.constraints import check_precedence
from ..sched.schedule import schedule_length
from .datapath import DataPath


class Design:
    """An ETPN design point produced by a synthesis flow."""

    def __init__(self, dfg: DFG, steps: dict[str, int], binding: Binding,
                 label: str = "") -> None:
        self.dfg = dfg
        self.steps = dict(steps)
        self.binding = binding
        #: Which flow produced the design ("ours", "camad", ...).
        self.label = label

    # ------------------------------------------------------------------
    @property
    def num_steps(self) -> int:
        """Number of control steps of the schedule."""
        return schedule_length(self.steps)

    @cached_property
    def datapath(self) -> DataPath:
        """The structural data path (built on first access)."""
        return DataPath(self.dfg, self.binding)

    @cached_property
    def control_net(self) -> PetriNet:
        """The timed Petri net control part."""
        return control_net_for_design(self.dfg, self.steps)

    @cached_property
    def lifetimes(self) -> dict[str, Lifetime]:
        """Variable lifetimes under this design's schedule."""
        return variable_lifetimes(self.dfg, self.steps)

    @cached_property
    def execution_time(self) -> int:
        """E: the critical path of the control part (paper §4.2)."""
        return execution_time(self.control_net)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check schedule precedence and binding legality together."""
        check_precedence(self.dfg, self.steps)
        validate_binding(self.dfg, self.steps, self.binding)

    def lint(self, depth_limit: float = 8.0):
        """Collect-all design-rule audit of this design point.

        Runs the schedule, binding, Petri-net and testability rule
        layers and returns a :class:`repro.lint.LintReport` instead of
        raising (use :meth:`validate` for the raise-style check).
        """
        from ..lint import lint_design
        return lint_design(self, depth_limit=depth_limit)

    def replaced(self, steps: dict[str, int] | None = None,
                 binding: Binding | None = None,
                 label: str | None = None) -> "Design":
        """A new design with some components swapped (others shared)."""
        return Design(self.dfg,
                      self.steps if steps is None else steps,
                      self.binding if binding is None else binding,
                      self.label if label is None else label)

    def summary(self) -> dict[str, int]:
        """Headline structural numbers used throughout the harness."""
        return {
            "steps": self.num_steps,
            "modules": self.binding.module_count(),
            "registers": self.binding.register_count(),
            "muxes": self.datapath.mux_count(),
            "self_loops": len(self.datapath.self_loops()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        s = self.summary()
        return (f"Design({self.dfg.name!r}, label={self.label!r}, "
                f"steps={s['steps']}, modules={s['modules']}, "
                f"regs={s['registers']}, muxes={s['muxes']})")
