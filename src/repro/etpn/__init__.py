"""Extended Timed Petri Net design representation (data path + control)."""

from .datapath import DataPath, DataPathArc, DataPathNode, NodeKind
from .design import Design
from .from_dfg import default_design

__all__ = [
    "DataPath",
    "DataPathArc",
    "DataPathNode",
    "Design",
    "NodeKind",
    "default_design",
]
