"""Graphviz (dot) export of data paths and control nets.

For inspection and documentation: ``dot -Tsvg`` renders the data-path
structure the paper's figures sketch.  Pure text generation — no
graphviz dependency.
"""

from __future__ import annotations

from ..petri.net import PetriNet
from .datapath import DataPath, NodeKind

_SHAPE = {
    NodeKind.PORT_IN: "invtriangle",
    NodeKind.PORT_OUT: "triangle",
    NodeKind.REGISTER: "box",
    NodeKind.MODULE: "ellipse",
    NodeKind.CONST: "plaintext",
    NodeKind.COND: "diamond",
}


def datapath_to_dot(datapath: DataPath) -> str:
    """The data path as a dot digraph (registers boxed, units oval)."""
    lines = [f'digraph "{datapath.dfg.name}" {{',
             "  rankdir=TB;",
             '  node [fontname="Helvetica"];']
    for node in sorted(datapath.nodes.values(), key=lambda n: n.node_id):
        label = node.node_id
        if node.kind == NodeKind.MODULE:
            label += "\\n" + ",".join(node.ops)
        elif node.kind == NodeKind.REGISTER:
            label += "\\n" + ",".join(node.variables)
        lines.append(f'  "{node.node_id}" [shape={_SHAPE[node.kind].strip()}'
                     f', label="{label}"];')
    for arc in datapath.arcs:
        style = ' [style=dashed]' if arc.is_condition else ""
        lines.append(f'  "{arc.src}" -> "{arc.dst}"{style};')
    lines.append("}")
    return "\n".join(lines)


def control_net_to_dot(net: PetriNet) -> str:
    """The control Petri net as a dot digraph (places round,
    transitions bars)."""
    lines = [f'digraph "{net.name}_control" {{', "  rankdir=LR;"]
    for place in sorted(net.places.values(), key=lambda p: p.place_id):
        peripheries = 2 if place.place_id in net.initial_marking else 1
        label = place.place_id
        if place.label:
            label += f"\\n{place.label}"
        lines.append(f'  "{place.place_id}" [shape=circle, '
                     f'peripheries={peripheries}, label="{label}"];')
    for transition in sorted(net.transitions.values(),
                             key=lambda t: t.trans_id):
        guard = f"\\n[{transition.guard}]" if transition.guard else ""
        lines.append(f'  "{transition.trans_id}" [shape=box, '
                     f'height=0.1, label="{transition.trans_id}{guard}"];')
        for src in transition.inputs:
            lines.append(f'  "{src}" -> "{transition.trans_id}";')
        for dst in transition.outputs:
            lines.append(f'  "{transition.trans_id}" -> "{dst}";')
    lines.append("}")
    return "\n".join(lines)
