"""The ETPN data path: a directed graph of ports, registers and modules.

The data path is derived from a DFG plus a :class:`~repro.alloc.binding.Binding`:

* one PORT_IN node per primary-input variable, one PORT_OUT per output;
* one REGISTER node per register in the binding;
* one MODULE node per functional module in the binding;
* one CONST node per distinct literal;
* a COND node per condition variable (its value feeds the controller,
  which the paper assumes can be modified to support the test plan, so
  conditions count as observable outputs).

Arcs record every distinct connection (source node, sink node, sink
input port).  A sink input port fed by more than one distinct source
requires a multiplexer; :meth:`DataPath.mux_count` reproduces the
``#Mux`` column of the paper's tables.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..alloc.binding import Binding
from ..dfg import DFG, unit_class, UnitClass
from ..dfg.graph import Const
from ..errors import NetlistError


class NodeKind(enum.Enum):
    """Kind of a data-path node."""

    PORT_IN = "in"
    PORT_OUT = "out"
    REGISTER = "reg"
    MODULE = "mod"
    CONST = "const"
    COND = "cond"


@dataclass
class DataPathNode:
    """One vertex of the data path.

    Attributes:
        node_id: unique id (register/module ids come from the binding).
        kind: the node kind.
        ops: for MODULE nodes, the bound operation ids.
        variables: for REGISTER nodes, the stored variables; for ports
            and COND nodes, the single associated variable.
        value: for CONST nodes, the literal value.
    """

    node_id: str
    kind: NodeKind
    ops: tuple[str, ...] = ()
    variables: tuple[str, ...] = ()
    value: int | None = None

    def __str__(self) -> str:  # pragma: no cover - debug helper
        detail = ",".join(self.ops or self.variables)
        return f"{self.node_id}({self.kind.value}:{detail})"


@dataclass(frozen=True)
class DataPathArc:
    """A connection from ``src`` to input port ``port`` of ``dst``.

    ``port`` is ``0``/``1`` for module operand positions and ``0`` for
    register and output-port data inputs.  ``is_condition`` marks 1-bit
    condition wires.
    """

    src: str
    dst: str
    port: int
    is_condition: bool = False


class DataPath:
    """The structural data path of a bound design."""

    def __init__(self, dfg: DFG, binding: Binding) -> None:
        self.dfg = dfg
        self.binding = binding
        self.nodes: dict[str, DataPathNode] = {}
        self.arcs: list[DataPathArc] = []
        self._build()
        self._outgoing: dict[str, list[DataPathArc]] = {n: [] for n in self.nodes}
        self._incoming: dict[str, list[DataPathArc]] = {n: [] for n in self.nodes}
        for arc in self.arcs:
            self._outgoing[arc.src].append(arc)
            self._incoming[arc.dst].append(arc)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _add_node(self, node: DataPathNode) -> None:
        if node.node_id in self.nodes:
            raise NetlistError(f"duplicate data-path node {node.node_id!r}")
        self.nodes[node.node_id] = node

    def _build(self) -> None:
        dfg, binding = self.dfg, self.binding
        for module, ops in binding.modules().items():
            self._add_node(DataPathNode(module, NodeKind.MODULE,
                                        ops=tuple(ops)))
        for register, variables in binding.registers().items():
            self._add_node(DataPathNode(register, NodeKind.REGISTER,
                                        variables=tuple(variables)))
        for var in dfg.inputs():
            self._add_node(DataPathNode(f"PI_{var.name}", NodeKind.PORT_IN,
                                        variables=(var.name,)))
        for var in dfg.outputs():
            self._add_node(DataPathNode(f"PO_{var.name}", NodeKind.PORT_OUT,
                                        variables=(var.name,)))
        for name in dfg.condition_variables():
            self._add_node(DataPathNode(f"COND_{name}", NodeKind.COND,
                                        variables=(name,)))

        arcs: set[DataPathArc] = set()
        # Input ports load their registers.
        for var in dfg.inputs():
            register = self.binding.register_of.get(var.name)
            if register is not None:
                arcs.add(DataPathArc(f"PI_{var.name}", register, 0))
        # Operand and result connections per operation, merged per module.
        for op in dfg:
            module = binding.module_of[op.op_id]
            for port, operand in enumerate(op.srcs):
                if isinstance(operand, Const):
                    const_id = f"C_{operand.value}"
                    if const_id not in self.nodes:
                        self._add_node(DataPathNode(const_id, NodeKind.CONST,
                                                    value=operand.value))
                    arcs.add(DataPathArc(const_id, module, port))
                else:
                    source = binding.register_of.get(operand)
                    if source is None:
                        raise NetlistError(
                            f"operand {operand!r} of {op.op_id} has no "
                            f"register")
                    arcs.add(DataPathArc(source, module, port))
            if op.dst is not None:
                dst_var = dfg.variable(op.dst)
                if dst_var.is_condition:
                    arcs.add(DataPathArc(module, f"COND_{op.dst}", 0,
                                         is_condition=True))
                else:
                    register = binding.register_of[op.dst]
                    arcs.add(DataPathArc(module, register, 0))
        # Registers drive output ports.
        for var in dfg.outputs():
            register = self.binding.register_of.get(var.name)
            if register is not None:
                arcs.add(DataPathArc(register, f"PO_{var.name}", 0))
        self.arcs = sorted(arcs, key=lambda a: (a.src, a.dst, a.port))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def incoming(self, node_id: str) -> list[DataPathArc]:
        """Arcs entering ``node_id``."""
        return list(self._incoming[node_id])

    def outgoing(self, node_id: str) -> list[DataPathArc]:
        """Arcs leaving ``node_id``."""
        return list(self._outgoing[node_id])

    def sources_of_port(self, node_id: str, port: int) -> list[str]:
        """Distinct sources feeding one input port of a node."""
        return sorted({a.src for a in self._incoming[node_id]
                       if a.port == port})

    def input_ports(self, node_id: str) -> list[int]:
        """Distinct input-port indices of a node."""
        return sorted({a.port for a in self._incoming[node_id]})

    def mux_count(self) -> int:
        """Number of multiplexers implied by the connections.

        One mux per (node, input port) fed by two or more distinct
        sources — the ``#Mux`` column of the paper's tables.
        """
        count = 0
        for node_id in self.nodes:
            for port in self.input_ports(node_id):
                if len(self.sources_of_port(node_id, port)) > 1:
                    count += 1
        return count

    def mux_inputs_total(self) -> int:
        """Total mux data inputs (a proxy for interconnect area)."""
        total = 0
        for node_id in self.nodes:
            for port in self.input_ports(node_id):
                fanin = len(self.sources_of_port(node_id, port))
                if fanin > 1:
                    total += fanin
        return total

    def modules(self) -> list[DataPathNode]:
        """All MODULE nodes, sorted by id."""
        return self._of_kind(NodeKind.MODULE)

    def registers(self) -> list[DataPathNode]:
        """All REGISTER nodes, sorted by id."""
        return self._of_kind(NodeKind.REGISTER)

    def _of_kind(self, kind: NodeKind) -> list[DataPathNode]:
        return sorted((n for n in self.nodes.values() if n.kind == kind),
                      key=lambda n: n.node_id)

    def module_class(self, module_id: str) -> UnitClass:
        """Unit class of a module node."""
        node = self.nodes[module_id]
        classes = {unit_class(self.dfg.operation(o).kind) for o in node.ops}
        if len(classes) != 1:
            raise NetlistError(f"module {module_id!r} mixes classes")
        return classes.pop()

    def self_loops(self) -> list[tuple[str, str]]:
        """(module, register) pairs forming module→register→module loops.

        These are the structures high-level test synthesis tries to
        avoid (Mujumdar et al.): a unit whose output register feeds one
        of its own inputs is hard to test without breaking the loop.
        """
        loops = []
        for module in self.modules():
            feeds = {a.dst for a in self._outgoing[module.node_id]
                     if self.nodes[a.dst].kind == NodeKind.REGISTER}
            reads = {a.src for a in self._incoming[module.node_id]
                     if self.nodes[a.src].kind == NodeKind.REGISTER}
            for register in sorted(feeds & reads):
                loops.append((module.node_id, register))
        return loops

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"DataPath({self.dfg.name!r}, {len(self.nodes)} nodes, "
                f"{len(self.arcs)} arcs, {self.mux_count()} muxes)")
