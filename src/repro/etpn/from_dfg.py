"""Default scheduling/allocation (step 1 of Algorithm 1).

The paper starts from "a simple default scheduling/allocation": the
VHDL compiler maps each operation instance to its own data-path node
and each variable to its own register; the default schedule is ASAP.
"""

from __future__ import annotations

from ..alloc.binding import default_binding
from ..dfg import DFG
from ..dfg.analysis import asap_steps
from .design import Design


def default_design(dfg: DFG, label: str = "default") -> Design:
    """Build and validate the default design for ``dfg``."""
    design = Design(dfg, asap_steps(dfg), default_binding(dfg), label=label)
    design.validate()
    return design
