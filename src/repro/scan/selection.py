"""Partial-scan register selection.

The paper's related work (Mujumdar et al., Lee et al.) motivates two
selection heuristics, both of which fall out of machinery this library
already has:

* **loop breaking** — registers on module↔register cycles make
  sequential ATPG hard; a greedy minimum-feedback-vertex-set pass over
  the register dependency graph picks the registers whose scanning
  cuts every cycle;
* **depth reduction** — registers with the worst controllable→
  observable sequential depth (rule SR1's metric) benefit most from
  direct scan access.

Both return register ids of the data path; :mod:`repro.scan.expand`
threads the selected registers into a scan chain.
"""

from __future__ import annotations

from ..etpn.datapath import DataPath, NodeKind
from ..testability.depth import register_depths


def register_dependency_graph(datapath: DataPath) -> dict[str, set[str]]:
    """reg -> set(reg): an edge when a value can flow through one module.

    Register r feeds register s when some module reads r and writes s
    (combinational transfer within one clock).
    """
    graph: dict[str, set[str]] = {r.node_id: set()
                                  for r in datapath.registers()}
    for module in datapath.modules():
        reads = {a.src for a in datapath.incoming(module.node_id)
                 if datapath.nodes[a.src].kind == NodeKind.REGISTER}
        writes = {a.dst for a in datapath.outgoing(module.node_id)
                  if datapath.nodes[a.dst].kind == NodeKind.REGISTER}
        for src in reads:
            graph[src] |= writes
    return graph


def _has_cycle(graph: dict[str, set[str]], removed: set[str]) -> list[str]:
    """One cycle (as a node list) in graph minus ``removed``, or []."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {n: WHITE for n in graph if n not in removed}
    stack_path: list[str] = []

    def dfs(node: str) -> list[str]:
        colour[node] = GREY
        stack_path.append(node)
        for succ in sorted(graph[node]):
            if succ in removed:
                continue
            if colour[succ] == GREY:
                return stack_path[stack_path.index(succ):]
            if colour[succ] == WHITE:
                found = dfs(succ)
                if found:
                    return found
        colour[node] = BLACK
        stack_path.pop()
        return []

    for node in sorted(colour):
        if colour[node] == WHITE:
            cycle = dfs(node)
            if cycle:
                return list(cycle)
    return []


def select_loop_breaking(datapath: DataPath) -> list[str]:
    """Greedy feedback-vertex-set: scan registers until no cycle remains.

    Each round finds one remaining cycle and scans the cycle member
    with the highest degree in the dependency graph (ties by name), the
    classic Lee/Mujumdar-style greedy.
    """
    graph = register_dependency_graph(datapath)
    removed: set[str] = set()
    while True:
        cycle = _has_cycle(graph, removed)
        if not cycle:
            break
        chosen = max(cycle,
                     key=lambda r: (len(graph[r])
                                    + sum(r in graph[s] for s in graph), r))
        removed.add(chosen)
    return sorted(removed)


def select_by_depth(datapath: DataPath, budget: int) -> list[str]:
    """Scan the ``budget`` registers with the worst SR1 depth."""
    if budget <= 0:
        return []
    depths = register_depths(datapath)
    ranked = sorted(depths.values(),
                    key=lambda d: (-d.total, d.register))
    return sorted(d.register for d in ranked[:budget])


def select_full(datapath: DataPath) -> list[str]:
    """Every register (full scan)."""
    return sorted(r.node_id for r in datapath.registers())
