"""Full-scan combinational ATPG support.

With every register in the chain, a stuck-at test is the classic
load–capture–unload pattern: PODEM runs on a *combinational* model in
which flip-flop outputs are pseudo primary inputs and flip-flop D
inputs pseudo primary outputs; each generated test costs
``chain_length`` shift cycles to load, one capture cycle, and the
response shifts out while the next test shifts in.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gates.netlist import GateNetlist, GateType
from .expand import SCAN_ENABLE, SCAN_IN
from ..atpg.unroll import OP_PI, UnrolledCircuit, _CODE


def unroll_full_scan(netlist: GateNetlist) -> UnrolledCircuit:
    """One combinational frame with DFFs exposed as pseudo-PIs/POs.

    The scan-control inputs are forced to functional mode (scan_enable
    = 0) by modelling them as constants, so tests target the functional
    logic rather than the chain muxes.
    """
    netlist.check_complete()
    model = UnrolledCircuit(frames=1)

    def new_node(op: int, fanins: tuple[int, ...]) -> int:
        uid = len(model.ops)
        model.ops.append(op)
        model.fanins.append(fanins)
        model.fanouts.append([])
        model.depth.append(
            1 + max(model.depth[f] for f in fanins) if fanins else 0)
        for fin in fanins:
            model.fanouts[fin].append(uid)
        return uid

    input_name_of = {gid: name for name, gid in netlist.inputs.items()}
    uid_of: dict[int, int] = {}
    dff_gids = []
    for gate in netlist.gates:
        if gate.gtype == GateType.DFF:
            uid = new_node(OP_PI, ())
            model.pi_names[uid] = (0, f"ppi:{gate.name or gate.gid}")
            dff_gids.append(gate.gid)
        elif gate.gtype == GateType.INPUT:
            name = input_name_of[gate.gid]
            if name in (SCAN_ENABLE, SCAN_IN):
                # Functional mode during capture.
                from ..atpg.unroll import OP_CONST0
                uid = new_node(OP_CONST0, ())
            else:
                uid = new_node(OP_PI, ())
                model.pi_names[uid] = (0, name)
        else:
            mapped = tuple(uid_of[f] for f in gate.fanins)
            uid = new_node(_CODE[gate.gtype], mapped)
        uid_of[gate.gid] = uid
        model.site_uids.setdefault(gate.gid, []).append(uid)
    for name, gid in netlist.outputs.items():
        model.po_names[uid_of[gid]] = (0, name)
    # Pseudo-POs: every D input is observable through the chain.
    for dff_gid in dff_gids:
        driver = netlist.gates[dff_gid].fanins[0]
        uid = uid_of[driver]
        if uid not in model.po_names:
            model.po_names[uid] = (0, f"ppo:{dff_gid}")
    return model


@dataclass(frozen=True)
class ScanTestCost:
    """Cycle accounting of a scan test set."""

    tests: int
    chain_length: int

    @property
    def cycles(self) -> int:
        """Load/unload overlap: (n+1) shifts-loads of L cycles + n captures."""
        if self.tests == 0:
            return 0
        return (self.tests + 1) * self.chain_length + self.tests
