"""Partial/full scan: selection, chain insertion and evaluation.

An extension beyond the paper's non-scan setting, following its related
work (Mujumdar's loop elimination, Lee's sequential-depth rule): the
same structural metrics that drive the synthesis algorithm also tell a
DFT tool *which* registers to scan.
"""

from .atpg import ScanTestCost, unroll_full_scan
from .expand import (SCAN_ENABLE, SCAN_IN, SCAN_OUT, ScanChain,
                     chain_bits_for_registers, insert_scan_chain,
                     scan_load_sequence)
from .evaluate import ScanResult, evaluate_scan, scan_overhead_mm2
from .selection import (register_dependency_graph, select_by_depth,
                        select_full, select_loop_breaking)

__all__ = [
    "SCAN_ENABLE",
    "SCAN_IN",
    "SCAN_OUT",
    "ScanChain",
    "ScanResult",
    "ScanTestCost",
    "chain_bits_for_registers",
    "evaluate_scan",
    "insert_scan_chain",
    "register_dependency_graph",
    "scan_load_sequence",
    "scan_overhead_mm2",
    "select_by_depth",
    "select_full",
    "select_loop_breaking",
    "unroll_full_scan",
]
