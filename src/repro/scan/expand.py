"""Scan-chain insertion at the gate level.

Given an expanded netlist and a set of registers to scan, threads their
bits into one chain: every scanned flip-flop's D input becomes
``scan_enable ? previous_chain_bit : functional_D``, the chain head
reads the new ``scan_in`` input and the tail drives ``scan_out``.

Insertion happens *after* expansion, so it works identically for the
free-control and embedded-controller netlists.  The chain mux gates are
appended at the end of the gate list; that is legal because DFF D
values are only consumed at the clock edge (the compiled simulator
evaluates in id order and reads D drivers in its epilogue).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import NetlistError
from ..gates.netlist import Gate, GateNetlist, GateType

SCAN_ENABLE = "scan_enable"
SCAN_IN = "scan_in"
SCAN_OUT = "scan_out"


@dataclass(frozen=True)
class ScanChain:
    """The inserted chain: DFF gate ids in scan order."""

    bits: tuple[int, ...]

    @property
    def length(self) -> int:
        return len(self.bits)


def chain_bits_for_registers(netlist: GateNetlist,
                             registers: list[str]) -> list[int]:
    """DFF gate ids of the named registers, in chain order.

    Register bits are matched by the ``{register}[{i}]`` DFF naming the
    expander uses.
    """
    bits: list[int] = []
    for register in registers:
        prefix = f"{register}["
        register_bits = [g.gid for g in netlist.dffs()
                         if g.name.startswith(prefix)]
        if not register_bits:
            raise NetlistError(f"no DFF bits found for register "
                               f"{register!r}")
        bits.extend(sorted(register_bits,
                           key=lambda gid: netlist.gates[gid].name))
    return bits


def insert_scan_chain(netlist: GateNetlist,
                      registers: list[str]) -> ScanChain:
    """Thread the named registers into a scan chain (in place).

    Returns the chain; an empty register list is rejected.
    """
    if not registers:
        raise NetlistError("scan chain needs at least one register")
    if SCAN_ENABLE in netlist.inputs:
        raise NetlistError("netlist already has a scan chain")
    bits = chain_bits_for_registers(netlist, registers)
    enable = netlist.add_input(SCAN_ENABLE)
    scan_in = netlist.add_input(SCAN_IN)
    not_enable = netlist.add(GateType.NOT, (enable,))
    previous = scan_in
    for dff_gid in bits:
        gate = netlist.gates[dff_gid]
        if gate.gtype != GateType.DFF or not gate.fanins:
            raise NetlistError(f"gate {dff_gid} is not a connected DFF")
        functional_d = gate.fanins[0]
        shift = netlist.add(GateType.AND, (enable, previous))
        hold = netlist.add(GateType.AND, (not_enable, functional_d))
        new_d = netlist.add(GateType.OR, (shift, hold),
                            name=f"scan_d_{gate.name}")
        netlist.gates[dff_gid] = Gate(dff_gid, GateType.DFF, (new_d,),
                                      gate.name)
        previous = dff_gid
    netlist.set_output(SCAN_OUT, previous)
    return ScanChain(tuple(bits))


def scan_load_sequence(circuit_inputs: list[str], chain: ScanChain,
                       state_bits: list[int],
                       fill: dict[str, int] | None = None
                       ) -> list[dict[str, int]]:
    """Input vectors that shift ``state_bits`` into the chain.

    ``state_bits[i]`` is the value the i-th chain bit should hold after
    loading (chain order).  The last chain bit's value is shifted in
    first.  ``fill`` provides the values of all other inputs while
    shifting (default 0).
    """
    fill = fill or {}
    vectors = []
    for value in reversed(state_bits):
        cycle = {name: fill.get(name, 0) for name in circuit_inputs}
        cycle[SCAN_ENABLE] = 1
        cycle[SCAN_IN] = value & 1
        vectors.append(cycle)
    return vectors
