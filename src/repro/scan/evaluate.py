"""Scan-mode evaluation: coverage vs. hardware overhead.

Compares a design's testability without scan, with partial scan
(loop-breaking or depth-driven selection) and with full scan, pricing
the scan muxes with the same module library the synthesis flow uses.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from ..atpg import ATPGConfig, FaultSimulator, full_fault_list
from ..atpg.podem import PodemEngine
from ..atpg.random_tpg import random_phase
from ..cost import ModuleLibrary, DEFAULT_LIBRARY
from ..gates.netlist import GateNetlist
from ..gates.simulate import CompiledCircuit
from .atpg import ScanTestCost, unroll_full_scan
from .expand import insert_scan_chain


@dataclass
class ScanResult:
    """Outcome of one scan-mode ATPG evaluation."""

    scanned_registers: list[str] = field(default_factory=list)
    chain_length: int = 0
    total_faults: int = 0
    detected: int = 0
    test_cycles: int = 0
    effort: int = 0
    seconds: float = 0.0
    overhead_mm2: float = 0.0

    @property
    def fault_coverage(self) -> float:
        if not self.total_faults:
            return 0.0
        return 100.0 * self.detected / self.total_faults


def scan_overhead_mm2(chain_bits: int, library: ModuleLibrary | None = None,
                      bits: int = 1) -> float:
    """Area of the scan muxes: one 2-input mux bit per scanned flop."""
    library = library or DEFAULT_LIBRARY
    return chain_bits * library.mux_area(2, 1)


def evaluate_scan(netlist: GateNetlist, registers: list[str],
                  config: ATPGConfig | None = None) -> ScanResult:
    """Insert a chain over ``registers`` (mutates a copy) and run ATPG.

    The flow mirrors the engine: random sequences first (the chain is
    exercised by the weighted-random scan_enable bit), then full-scan
    combinational PODEM for the remainder, with scan cycle accounting.
    """
    import copy

    config = config or ATPGConfig()
    scanned = copy.deepcopy(netlist)
    chain = insert_scan_chain(scanned, registers)
    circuit = CompiledCircuit(scanned)
    faults = full_fault_list(scanned)
    result = ScanResult(scanned_registers=list(registers),
                        chain_length=chain.length,
                        total_faults=len(faults),
                        overhead_mm2=scan_overhead_mm2(chain.length))
    started = time.perf_counter()
    rng = random.Random(config.seed)

    simulator = FaultSimulator(circuit)
    random_result = random_phase(simulator, faults, config.random, rng)
    result.detected = len(random_result.detected)
    result.test_cycles = random_result.test_cycles
    result.effort += simulator.stats.cycles_simulated

    remaining = sorted(set(faults) - random_result.detected)
    if config.deterministic and remaining:
        engine = PodemEngine(unroll_full_scan(scanned),
                             max_backtracks=config.max_backtracks)
        deterministic_tests = 0
        for fault in remaining:
            outcome = engine.generate(fault)
            result.effort += outcome.stats.effort
            if outcome.success:
                deterministic_tests += 1
                result.detected += 1
        result.test_cycles += ScanTestCost(deterministic_tests,
                                           chain.length).cycles
    result.seconds = time.perf_counter() - started
    return result
