"""One-call whole-design verification: races + equivalence certificate.

:func:`analyze_design` runs the ``analysis`` lint layer over a design
point and packages the underlying analysis objects into an
:class:`AnalysisResult`; :func:`merger_preserves_semantics` is the
narrow boolean the synthesis kernel consults when
``SynthesisParams(verify_mergers=True)`` is set.

Lint is imported inside the functions: the analysis core must stay
importable from the lint rule module without a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..errors import ReproError
from .equivalence import EquivalenceCertificate
from .races import ConcurrencyAnalysis
from .reach_graph import DEFAULT_MAX_MARKINGS

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from ..lint.diagnostic import Diagnostic, LintReport


@dataclass
class AnalysisResult:
    """The outcome of analysing one design point.

    Attributes:
        name: design name.
        report: the ``analysis``-layer lint report (RAC/EQV findings).
        concurrency: the underlying MHP/race analysis, or None when the
            control net could not be explored.
        certificate: the symbolic equivalence certificate, or None when
            the design is not certifiable (incomplete schedule/binding).
    """

    name: str
    report: "LintReport"
    concurrency: Optional[ConcurrencyAnalysis] = None
    certificate: Optional[EquivalenceCertificate] = None

    @property
    def markings(self) -> int:
        """Distinct reachable markings of the control part (0 if unknown)."""
        if self.concurrency is None:
            return 0
        return len(self.concurrency.mhp.graph)

    @property
    def races(self) -> list["Diagnostic"]:
        """The RAC diagnostics of the report."""
        return [d for d in self.report if d.code.startswith("RAC")]

    @property
    def divergences(self) -> list["Diagnostic"]:
        """The EQV diagnostics of the report."""
        return [d for d in self.report if d.code.startswith("EQV")]

    @property
    def ok(self) -> bool:
        """True when the analysis produced no error-severity finding."""
        return self.report.ok()

    @property
    def verified(self) -> bool:
        """Strongest verdict: race-free *and* a valid certificate exists."""
        return (self.ok and self.certificate is not None
                and self.certificate.valid)

    def summary(self) -> str:
        """One line, e.g. ``"ex: 7 markings, 0 races, certificate valid"``."""
        races = len(self.races)
        if self.certificate is None:
            cert = "no certificate"
        elif self.certificate.valid:
            cert = "certificate valid"
        else:
            cert = f"{len(self.certificate.divergences)} divergences"
        return (f"{self.name}: {self.markings} markings, {races} race"
                f"{'s' if races != 1 else ''}, {cert}")


def analyze_design(design,
                   max_markings: int = DEFAULT_MAX_MARKINGS
                   ) -> AnalysisResult:
    """Run the full concurrency + equivalence analysis on a design.

    Args:
        design: a :class:`repro.etpn.design.Design` point.
        max_markings: bound on reachability-graph construction.

    The analysis itself never raises on a bad design — every problem
    becomes a diagnostic in ``result.report`` (derivation failures are
    ``LNT001``).
    """
    from ..lint.registry import LintContext
    from ..lint.runner import run_analysis_layer
    from ..lint.rules_analysis import cached_concurrency, cached_certificate

    ctx = LintContext(name=design.dfg.name, dfg=design.dfg,
                      steps=design.steps, binding=design.binding,
                      net=design.control_net)
    ctx.cache["analysis.max_markings"] = max_markings
    report = run_analysis_layer(ctx)
    return AnalysisResult(name=design.dfg.name, report=report,
                          concurrency=cached_concurrency(ctx),
                          certificate=cached_certificate(ctx))


def merger_preserves_semantics(design, max_markings: int = 20_000) -> bool:
    """May the synthesis kernel accept this merged design point?

    True when the design point is race-free under MHP analysis and its
    symbolic equivalence certificate is valid.  Conservative: any
    analysis failure (unexplorable net, uncertifiable design) rejects
    the merger rather than accepting it unverified.
    """
    try:
        return analyze_design(design, max_markings=max_markings).verified
    except ReproError:
        return False
