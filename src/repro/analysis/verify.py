"""One-call whole-design verification: races + equivalence certificate.

:func:`analyze_design` runs the ``analysis`` lint layer over a design
point and packages the underlying analysis objects into an
:class:`AnalysisResult`; :func:`merger_preserves_semantics` is the
narrow boolean the synthesis kernel consults when
``SynthesisParams(verify_mergers=True)`` is set.

The result also carries the two-tier safety/deadlock verdicts
(:mod:`repro.analysis.tiers`): the structural certificate is always
computed, and the enumerative fallback reuses the reachability graph
the MHP analysis already built — a full ``analyze_design`` performs at
most one BFS.

Lint is imported inside the functions: the analysis core must stay
importable from the lint rule module without a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..errors import ReproError
from ..runtime.budget import Budget
from .equivalence import EquivalenceCertificate
from .races import ConcurrencyAnalysis
from .reach_graph import DEFAULT_MAX_MARKINGS
from .structural import StructuralCertificate
from .tiers import Tier, TierDecision, TieredAnalysis

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from ..lint.diagnostic import Diagnostic, LintReport

#: CLI tier names -> :class:`~repro.analysis.tiers.Tier` pin.
TIER_NAMES: dict[str, Optional[Tier]] = {
    "auto": None,
    "structural": Tier.STRUCTURAL,
    "enumerative": Tier.ENUMERATIVE,
}


@dataclass
class AnalysisResult:
    """The outcome of analysing one design point.

    Attributes:
        name: design name.
        report: the ``analysis``-layer lint report (RAC/EQV findings).
        concurrency: the underlying MHP/race analysis, or None when the
            control net could not be explored.
        certificate: the symbolic equivalence certificate, or None when
            the design is not certifiable (incomplete schedule/binding).
        structural: the structural certificate of the control part, or
            None when no net could be derived.
        safe: the tiered safety decision (which tier proved it), or
            None when no net could be derived.
        deadlock_free: the tiered deadlock-freedom decision, likewise.
    """

    name: str
    report: "LintReport"
    concurrency: Optional[ConcurrencyAnalysis] = None
    certificate: Optional[EquivalenceCertificate] = None
    structural: Optional[StructuralCertificate] = None
    safe: Optional[TierDecision] = None
    deadlock_free: Optional[TierDecision] = None

    @property
    def markings(self) -> int:
        """Distinct reachable markings of the control part (0 if unknown
        or when the structural tier answered without enumerating)."""
        if self.concurrency is None or self.concurrency.mhp.graph is None:
            return 0
        return len(self.concurrency.mhp.graph)

    @property
    def races(self) -> list["Diagnostic"]:
        """The RAC diagnostics of the report."""
        return [d for d in self.report if d.code.startswith("RAC")]

    @property
    def divergences(self) -> list["Diagnostic"]:
        """The EQV diagnostics of the report."""
        return [d for d in self.report if d.code.startswith("EQV")]

    @property
    def ok(self) -> bool:
        """True when the analysis produced no error-severity finding."""
        return self.report.ok()

    @property
    def verified(self) -> bool:
        """Strongest verdict: race-free *and* a valid certificate exists."""
        return (self.ok and self.certificate is not None
                and self.certificate.valid)

    def summary(self) -> str:
        """One line, e.g. ``"ex: 7 markings, 0 races, certificate valid"``."""
        races = len(self.races)
        if self.certificate is None:
            cert = "no certificate"
        elif self.certificate.valid:
            cert = "certificate valid"
        else:
            cert = f"{len(self.certificate.divergences)} divergences"
        return (f"{self.name}: {self.markings} markings, {races} race"
                f"{'s' if races != 1 else ''}, {cert}")


def analyze_design(design,
                   max_markings: int = DEFAULT_MAX_MARKINGS,
                   budget: Optional[Budget] = None,
                   tier: str = "auto") -> AnalysisResult:
    """Run the full concurrency + equivalence analysis on a design.

    Args:
        design: a :class:`repro.etpn.design.Design` point.
        max_markings: bound on reachability-graph construction.
        budget: cooperative budget for the enumerative parts; when it
            drains the MHP relation degrades to the sound structural
            over-approximation and the tiered verdicts report
            ``inconclusive`` instead of truncated answers.
        tier: ``"auto"`` (structure first, enumerate when needed),
            ``"structural"`` (never enumerate) or ``"enumerative"``
            (classic exhaustive analysis).

    The analysis itself never raises on a bad design — every problem
    becomes a diagnostic in ``result.report`` (derivation failures are
    ``LNT001``).
    """
    from ..lint.registry import LintContext
    from ..lint.runner import run_analysis_layer
    from ..lint.rules_analysis import cached_concurrency, cached_certificate

    if tier not in TIER_NAMES:
        raise ValueError(f"unknown analysis tier {tier!r}")
    ctx = LintContext(name=design.dfg.name, dfg=design.dfg,
                      steps=design.steps, binding=design.binding,
                      net=design.control_net)
    ctx.cache["analysis.max_markings"] = max_markings
    ctx.cache["analysis.budget"] = budget
    ctx.cache["analysis.tier"] = tier
    report = run_analysis_layer(ctx)
    concurrency = cached_concurrency(ctx)
    structural = None
    safe = None
    deadlock_free = None
    net = design.control_net
    if net is not None:
        # Reuse the graph the MHP analysis built (None in the
        # structural tier) — at most one BFS per analyze_design call.
        graph = concurrency.mhp.graph if concurrency is not None else None
        tiered = TieredAnalysis(net, max_markings=max_markings,
                                budget=budget,
                                force_tier=TIER_NAMES[tier], graph=graph)
        structural = tiered.certificate
        safe = tiered.safe
        deadlock_free = tiered.deadlock_free
    return AnalysisResult(name=design.dfg.name, report=report,
                          concurrency=concurrency,
                          certificate=cached_certificate(ctx),
                          structural=structural, safe=safe,
                          deadlock_free=deadlock_free)


def merger_preserves_semantics(design, max_markings: int = 20_000) -> bool:
    """May the synthesis kernel accept this merged design point?

    True when the design point is race-free under MHP analysis and its
    symbolic equivalence certificate is valid.  Conservative: any
    analysis failure (unexplorable net, uncertifiable design) rejects
    the merger rather than accepting it unverified.
    """
    try:
        return analyze_design(design, max_markings=max_markings).verified
    except ReproError:
        return False
