"""Control-level race detection: MHP joined against the binding.

The schedule-level binding rules (``BND004``/``BND005``) see only the
linear control-step numbering, which under-approximates the concurrency
a forking or branching Petri-net control part actually permits: two
operations in *different* control steps can still execute at the same
time when their steps belong to concurrently-marked branches.  The
checks here join the op-level MHP relation with the module and register
binding and flag exactly those conflicts:

``RAC001``
    two operations bound to one module may execute concurrently;
``RAC002``
    two operations may concurrently write the same register
    (write-write race: the stored value depends on firing order);
``RAC003``
    one operation may read a register while another concurrently
    overwrites it (read-write race: the read value is undefined);
``RAC004``
    a multiplexed connection point may be asked to steer two different
    sources at the same time (interconnect contention; reported once
    per contended port).

Same-step conflicts stay the business of the ``BND`` rules — the RAC
rules report only pairs placed in *distinct* concurrently-marked
places, so the two families never duplicate each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Optional

from ..alloc.binding import Binding
from ..dfg import DFG
from ..dfg.graph import Const
from ..petri.builders import control_net_for_design, step_place
from ..petri.net import PetriNet
from ..runtime.budget import Budget
from .mhp import MHPAnalysis
from .reach_graph import DEFAULT_MAX_MARKINGS


@dataclass(frozen=True)
class RaceFinding:
    """One detected race, ready to be mapped onto a lint diagnostic."""

    code: str
    location: str
    message: str
    hint: str = ""


class ConcurrencyAnalysis:
    """MHP-based race analysis of one scheduled, bound design.

    Args:
        dfg: the data-flow graph.
        steps: the schedule (op_id -> control step).
        binding: the module/register allocation.
        net: the control Petri net; derived from the schedule when None.
        placement: op_id -> place id; derived from the schedule
            (``S<step>``) when None.  Pass both ``net`` and
            ``placement`` to analyse a hand-built control part whose
            concurrency the linear schedule cannot express.
        max_markings: bound on the reachability-graph construction.
        budget: cooperative budget for the MHP enumeration; when it
            drains, the MHP relation degrades to the sound structural
            over-approximation instead of a truncated prefix (see
            :class:`~repro.analysis.mhp.MHPAnalysis`).
        tier: forwarded to :class:`~repro.analysis.mhp.MHPAnalysis` —
            ``"auto"`` / ``"enumerative"`` / ``"structural"``.
    """

    def __init__(self, dfg: DFG, steps: dict[str, int], binding: Binding,
                 net: Optional[PetriNet] = None,
                 placement: Optional[dict[str, str]] = None,
                 max_markings: int = DEFAULT_MAX_MARKINGS,
                 budget: Optional[Budget] = None,
                 tier: str = "auto") -> None:
        self.dfg = dfg
        self.steps = dict(steps)
        self.binding = binding
        self.net = net if net is not None else control_net_for_design(dfg,
                                                                      steps)
        if placement is None:
            placement = {op: step_place(step) for op, step in steps.items()}
        self.placement = placement
        self.mhp = MHPAnalysis(self.net, max_markings,
                               budget=budget, tier=tier)

    @classmethod
    def of_design(cls, design,
                  max_markings: int = DEFAULT_MAX_MARKINGS,
                  budget: Optional[Budget] = None,
                  tier: str = "auto") -> "ConcurrencyAnalysis":
        """Analyse a :class:`repro.etpn.design.Design` point."""
        return cls(design.dfg, design.steps, design.binding,
                   net=design.control_net, max_markings=max_markings,
                   budget=budget, tier=tier)

    # ------------------------------------------------------------------
    def concurrent(self, op_a: str, op_b: str) -> bool:
        """May the two operations execute in *different* co-marked places?

        Same-place (same-step) pairs return False: those conflicts are
        the schedule-level rules' findings, not control-level races.
        """
        if op_a == op_b:
            return False
        pa = self.placement.get(op_a)
        pb = self.placement.get(op_b)
        if pa is None or pb is None or pa == pb:
            return False
        if pa not in self.net.places or pb not in self.net.places:
            return False
        return self.mhp.places_parallel(pa, pb)

    def concurrent_op_pairs(self) -> set[frozenset[str]]:
        """All strictly-concurrent (cross-place) operation pairs."""
        return self.mhp.op_pairs(self.placement, include_same_place=False)

    # ------------------------------------------------------------------
    def races(self) -> list[RaceFinding]:
        """Every detected race, ordered by code then location."""
        findings = (self._module_races() + self._register_races()
                    + self._contention())
        return sorted(findings,
                      key=lambda f: (f.code, f.location, f.message))

    def _describe(self, op_id: str) -> str:
        return f"{op_id} (in {self.placement.get(op_id, '?')})"

    def _module_races(self) -> list[RaceFinding]:
        out = []
        for module, ops in self.binding.modules().items():
            for a, b in combinations(ops, 2):
                if self.concurrent(a, b):
                    out.append(RaceFinding(
                        "RAC001", module,
                        f"module {module!r}: {self._describe(a)} and "
                        f"{self._describe(b)} may execute concurrently",
                        hint="unmerge the module or serialise the "
                             "control branches"))
        return out

    def _writers(self) -> dict[str, list[tuple[str, str]]]:
        """register -> [(op_id, variable written)] in program order."""
        writers: dict[str, list[tuple[str, str]]] = {}
        for op_id in self.dfg.op_order:
            op = self.dfg.operations[op_id]
            if op.dst is None:
                continue
            register = self.binding.register_of.get(op.dst)
            if register is not None:
                writers.setdefault(register, []).append((op_id, op.dst))
        return writers

    def _register_races(self) -> list[RaceFinding]:
        out = []
        writers = self._writers()
        readers: dict[str, list[tuple[str, str]]] = {}
        for op_id in self.dfg.op_order:
            for var in self.dfg.operations[op_id].src_variables():
                register = self.binding.register_of.get(var)
                if register is not None:
                    readers.setdefault(register, []).append((op_id, var))
        for register, writes in sorted(writers.items()):
            for (a, va), (b, vb) in combinations(writes, 2):
                if self.concurrent(a, b):
                    out.append(RaceFinding(
                        "RAC002", register,
                        f"register {register!r}: {self._describe(a)} "
                        f"writes {va!r} and {self._describe(b)} writes "
                        f"{vb!r} concurrently",
                        hint="the stored value depends on firing order"))
            seen: set[tuple[str, str]] = set()
            for (r, vr) in readers.get(register, []):
                for (w, vw) in writes:
                    if r == w or (r, w) in seen:
                        continue
                    if self.concurrent(r, w):
                        seen.add((r, w))
                        out.append(RaceFinding(
                            "RAC003", register,
                            f"register {register!r}: {self._describe(r)} "
                            f"reads {vr!r} while {self._describe(w)} "
                            f"concurrently overwrites it with {vw!r}",
                            hint="the read value is undefined"))
        return out

    def _contention(self) -> list[RaceFinding]:
        """One RAC004 per multiplexed port with a concurrent select conflict."""
        users: dict[tuple[str, int], list[tuple[str, str]]] = {}
        for op_id in self.dfg.op_order:
            op = self.dfg.operations[op_id]
            module = self.binding.module_of.get(op.op_id)
            if module is not None:
                for port, operand in enumerate(op.srcs):
                    if isinstance(operand, Const):
                        source: Optional[str] = f"C_{operand.value}"
                    else:
                        source = self.binding.register_of.get(operand)
                    if source is not None:
                        users.setdefault((module, port), []).append(
                            (source, op_id))
            if op.dst is not None and module is not None:
                register = self.binding.register_of.get(op.dst)
                if register is not None:
                    users.setdefault((register, 0), []).append(
                        (module, op_id))
        out = []
        for (node, port), drive in sorted(users.items()):
            if len({source for source, _ in drive}) < 2:
                continue  # single source: a wire, not a mux
            for (sa, a), (sb, b) in combinations(drive, 2):
                if sa != sb and self.concurrent(a, b):
                    out.append(RaceFinding(
                        "RAC004", f"{node}.in{port}",
                        f"mux at {node!r} input {port}: "
                        f"{self._describe(a)} needs {sa!r} while "
                        f"{self._describe(b)} concurrently needs {sb!r}",
                        hint="one multiplexer cannot steer two sources "
                             "at once"))
                    break  # one finding per contended port is enough
        return out
