"""Two-tier safety/liveness analysis: structure first, BFS on demand.

The structural tier (:func:`~repro.analysis.structural.structural_certificate`)
answers in polynomial time from the incidence matrix; the enumerative
tier (:class:`~repro.analysis.reach_graph.ReachabilityGraph`) is exact
but walks the marking space and is the first thing an exhausted
:class:`~repro.runtime.budget.Budget` truncates.  :class:`TieredAnalysis`
dispatches between them per property:

1. compute the structural certificate (always — it is cheap);
2. every property the certificate *decides* is reported with
   ``tier == "structural"`` and never touches the state space;
3. undecided properties fall back to one shared BFS (budgeted); a
   truncated BFS yields ``tier == "inconclusive"`` with the structural
   partial evidence attached instead of a silently wrong answer.

:func:`cross_check` runs both tiers to completion and reports any
disagreement — the blocking CI gate that keeps the fast tier honest.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..errors import PetriNetError
from ..petri.net import PetriNet
from ..runtime.budget import Budget
from .reach_graph import DEFAULT_MAX_MARKINGS, ReachabilityGraph
from .structural import StructuralCertificate, Verdict, structural_certificate


class Tier(enum.Enum):
    """Which analysis level settled (or failed to settle) a property."""

    STRUCTURAL = "structural"
    ENUMERATIVE = "enumerative"
    INCONCLUSIVE = "inconclusive"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class TierDecision:
    """One property verdict and the tier that produced it.

    Attributes:
        prop: property name (``"safe"`` / ``"deadlock_free"``).
        value: True/False when decided, None when both tiers gave up.
        tier: the deciding tier.
        detail: one-line human explanation of the evidence.
    """

    prop: str
    value: Optional[bool]
    tier: Tier
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - debug helper
        shown = {True: "yes", False: "NO", None: "unknown"}[self.value]
        return f"{self.prop}={shown} [{self.tier}]"


def stuck_markings(net: PetriNet,
                   graph: ReachabilityGraph) -> list[frozenset[str]]:
    """Reachable non-final markings with no enabled transition.

    This is the enumerative twin of the structural deadlock verdict:
    the intended final markings do *not* count (termination is the
    control part's job, not a failure), and enabledness follows
    :meth:`~repro.petri.net.PetriNet.enabled` — a marking whose only
    firings would be unsafe still counts as live, exactly as in the
    siphon/trap argument.
    """
    return [marking for marking in graph.markings
            if not net.is_final(marking) and not net.enabled(marking)]


class TieredAnalysis:
    """Structure-first safety/deadlock analysis of one control part.

    Args:
        net: the control Petri net.
        max_markings: bound for the enumerative fallback.
        budget: cooperative budget charged by the fallback BFS; when it
            drains mid-walk the affected properties come back
            ``inconclusive`` instead of silently truncated.
        force_tier: pin the analysis to one tier — ``Tier.STRUCTURAL``
            never builds the graph, ``Tier.ENUMERATIVE`` ignores the
            certificate's verdicts (it is still computed; it is cheap
            and carries the invariants).  None picks automatically.
        graph: a reachability graph someone already paid for (e.g. the
            MHP analysis of the same net); reused for the enumerative
            fallback instead of a second BFS.

    Attributes:
        certificate: the structural certificate (always present).
        graph: the reachability graph, or None when the structural
            tier decided everything (the whole point of the fast path).
    """

    def __init__(self, net: PetriNet,
                 max_markings: int = DEFAULT_MAX_MARKINGS,
                 budget: Optional[Budget] = None,
                 force_tier: Optional[Tier] = None,
                 graph: Optional[ReachabilityGraph] = None) -> None:
        self.net = net
        self.certificate: StructuralCertificate = structural_certificate(net)
        self.graph: Optional[ReachabilityGraph] = graph
        self._max_markings = max_markings
        self._budget = budget
        self._force = force_tier
        self.safe = self._decide(
            "safe", self.certificate.safe,
            structural_detail=self._safety_detail(),
            enumerate_value=self._enumerative_safe)
        self.deadlock_free = self._decide(
            "deadlock_free", self.certificate.deadlock_free,
            structural_detail=self._deadlock_detail(),
            enumerate_value=self._enumerative_deadlock_free)

    # ------------------------------------------------------------------
    def _decide(self, prop: str, verdict: Verdict, structural_detail: str,
                enumerate_value) -> TierDecision:
        if verdict.decided and self._force is not Tier.ENUMERATIVE:
            return TierDecision(prop, verdict is Verdict.PROVED,
                                Tier.STRUCTURAL, structural_detail)
        if self._force is Tier.STRUCTURAL:
            return TierDecision(prop, None, Tier.INCONCLUSIVE,
                                f"structure inconclusive: "
                                f"{structural_detail}; enumeration disabled")
        try:
            graph = self._ensure_graph()
        except PetriNetError as exc:
            return TierDecision(prop, None, Tier.INCONCLUSIVE,
                                f"structure inconclusive and enumeration "
                                f"impossible: {exc}")
        if graph.truncated:
            return TierDecision(
                prop, None, Tier.INCONCLUSIVE,
                f"structure inconclusive and the reachability budget "
                f"drained after {graph.marking_count} markings "
                f"({graph.truncation_reason})")
        value, detail = enumerate_value(graph)
        return TierDecision(prop, value, Tier.ENUMERATIVE, detail)

    def _ensure_graph(self) -> ReachabilityGraph:
        if self.graph is None:
            self.graph = ReachabilityGraph(self.net, self._max_markings,
                                           budget=self._budget)
        return self.graph

    # ------------------------------------------------------------------
    def _safety_detail(self) -> str:
        cert = self.certificate
        if cert.safe is Verdict.PROVED:
            units = len(cert.unit_invariants)
            return (f"every place covered by one of {units} 1-token "
                    f"P-invariant{'s' if units != 1 else ''}")
        return (f"{len(cert.uncovered_places)} place(s) without a 1-token "
                f"invariant cover: {list(cert.uncovered_places[:4])}")

    def _deadlock_detail(self) -> str:
        cert = self.certificate
        if cert.deadlock_free is Verdict.PROVED:
            count = len(cert.siphons)
            return (f"all {count} minimal siphon"
                    f"{'s' if count != 1 else ''} of the short-circuited "
                    f"net contain an initially-marked trap")
        if cert.deadlock_free is Verdict.REFUTED:
            return "the initial marking is already stuck"
        if not cert.siphons_complete:
            return "siphon enumeration capped"
        return (f"{len(cert.uncontrolled_siphons)} siphon(s) without a "
                f"marked trap: {[list(s) for s in cert.uncontrolled_siphons[:2]]}")

    def _enumerative_safe(self, graph: ReachabilityGraph):
        if graph.is_safe():
            return True, f"no unsafe firing in {graph.marking_count} markings"
        firing = graph.unsafe_firings[0]
        return False, (f"firing {firing.trans_id!r} double-marks "
                       f"{list(firing.places)}")

    def _enumerative_deadlock_free(self, graph: ReachabilityGraph):
        stuck = stuck_markings(self.net, graph)
        if not stuck:
            return True, (f"no stuck marking among {graph.marking_count} "
                          f"reachable markings")
        return False, (f"{len(stuck)} stuck marking(s), e.g. "
                       f"{sorted(stuck[0])}")

    # ------------------------------------------------------------------
    def decisions(self) -> tuple[TierDecision, TierDecision]:
        """The (safety, deadlock-freedom) decisions."""
        return self.safe, self.deadlock_free

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"TieredAnalysis({self.net.name!r}, {self.safe}, "
                f"{self.deadlock_free})")


# ----------------------------------------------------------------------
def cross_check(net: PetriNet,
                max_markings: int = DEFAULT_MAX_MARKINGS) -> list[str]:
    """Compare structural and enumerative verdicts; [] when they agree.

    Soundness contract being asserted: a *decided* structural verdict
    must match exact enumeration, and every structurally-dead
    transition must indeed never fire.  Inconclusive structural
    verdicts constrain nothing (that is what the fallback tier is for).
    """
    cert = structural_certificate(net)
    graph = ReachabilityGraph(net, max_markings)
    mismatches: list[str] = []

    enum_safe = graph.is_safe()
    if cert.safe.decided and (cert.safe is Verdict.PROVED) != enum_safe:
        mismatches.append(
            f"{net.name}: structural safety={cert.safe} but enumeration "
            f"says safe={enum_safe}")

    enum_live = not stuck_markings(net, graph)
    if cert.deadlock_free.decided and \
            (cert.deadlock_free is Verdict.PROVED) != enum_live:
        mismatches.append(
            f"{net.name}: structural deadlock_free={cert.deadlock_free} "
            f"but enumeration says deadlock_free={enum_live}")

    fired = {edge.trans_id for edge in graph.edges}
    lying = sorted(set(cert.dead_transitions) & fired)
    if lying:
        mismatches.append(
            f"{net.name}: transitions {lying} proved statically dead "
            f"yet fire in the reachability graph")

    problems = cert.check(net)
    if problems:
        mismatches.append(f"{net.name}: certificate fails its own check: "
                          f"{problems[0]}")
    return mismatches
