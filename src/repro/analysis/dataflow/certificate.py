"""The dataflow certificate: derived facts plus independent re-checking.

Like the structural certificate of PR 5, a
:class:`DataflowCertificate` is *checkable evidence*, not a bare
verdict: it records every fact the engine derived (one
:class:`~repro.analysis.dataflow.domain.AbstractValue` per operation
result, operand position and variable) together with the model the
facts are relative to — the input assumptions and the loop-feedback
map.  :meth:`DataflowCertificate.check` re-verifies the facts without
consulting the engine: it draws random concrete input vectors inside
the assumptions, executes the DFG with the reference word semantics
(:func:`repro.rtl.semantics.apply_op`), iterates the recorded feedback
for looping behaviours, and reports every simulated value that escapes
its abstraction.  A sound engine yields an empty problem list for any
vector count; a transfer-function bug shows up as a concrete
counterexample naming the operation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from ...dfg.graph import Const, DFG
from ...rtl.semantics import apply_op, mask
from .domain import AbstractValue

#: Loop rounds simulated per check vector (drawn uniformly in 1..N).
MAX_CHECK_ROUNDS = 4

#: Serialised format tag.
CERT_FORMAT = "repro.dataflow-cert/v1"


@dataclass
class DataflowCertificate:
    """Every fact the dataflow fixpoint derived for one DFG.

    Attributes:
        name: the analysed DFG's name.
        bits: word width the facts hold at.
        assumptions: entry interval per primary input — the model's
            precondition.  Inputs not listed are unconstrained.
        feedback: loop-carried value map ``output var -> input var``;
            empty for straight-line behaviour.  Together with
            ``assumptions`` this *is* the model the facts are sound
            against: each loop round feeds the mapped outputs back and
            holds the remaining inputs invariant.
        loop_iterations: body passes until the entry state stabilised.
        widened: True when widening fired before convergence.
        op_facts: abstraction of each operation's result.
        op_operands: abstraction of each operand position (post-entry,
            pre-operation) — what the overflow rules reason over.
        var_facts: abstraction of each variable over its whole
            lifetime: entry value (inputs) joined with every definition.
        elapsed_seconds: analysis wall time (excluded from equality).
    """

    name: str
    bits: int
    assumptions: dict[str, tuple[int, int]]
    feedback: dict[str, str]
    loop_iterations: int
    widened: bool
    op_facts: dict[str, AbstractValue]
    op_operands: dict[str, tuple[AbstractValue, ...]]
    var_facts: dict[str, AbstractValue]
    elapsed_seconds: float = field(default=0.0, compare=False)

    # ------------------------------------------------------------------
    # Queries the downstream layers consume
    # ------------------------------------------------------------------
    def op_width(self, op_id: str) -> int:
        """Bits a module must provide to execute ``op_id``: enough for
        the result and for every operand it reads."""
        widths = [self.op_facts[op_id].required_width()]
        widths += [v.required_width() for v in self.op_operands[op_id]]
        return max(widths)

    def var_width(self, var: str) -> int:
        """Bits a register must provide to hold ``var``'s every value."""
        fact = self.var_facts.get(var)
        return fact.required_width() if fact is not None else self.bits

    def constant_ops(self) -> dict[str, int]:
        """Operations whose result is proved constant, with the value."""
        return {o: f.const_value for o, f in sorted(self.op_facts.items())
                if f.is_const}

    def max_required_width(self) -> int:
        """Widest proved requirement across every variable and result."""
        widths = [f.required_width() for f in self.var_facts.values()]
        widths += [f.required_width() for f in self.op_facts.values()]
        return max(widths, default=1)

    def known_bit_total(self) -> int:
        """Total proved bit positions across all operation results."""
        return sum(f.known_bit_count() for f in self.op_facts.values())

    # ------------------------------------------------------------------
    # Independent re-verification
    # ------------------------------------------------------------------
    def check(self, dfg: DFG, vectors: int = 64,
              seed: int = 2026) -> list[str]:
        """Re-verify every fact by random concrete simulation.

        Returns a list of problems (empty = every simulated value lay
        inside its abstraction).  The simulation uses only the
        reference semantics — never the engine — so it is an
        independent witness.
        """
        problems: list[str] = []
        rng = random.Random(seed)
        m = mask(self.bits)
        for _ in range(vectors):
            entry: dict[str, int] = {}
            for var in dfg.inputs():
                lo, hi = self.assumptions.get(var.name, (0, m))
                entry[var.name] = rng.randint(lo, hi)
            rounds = rng.randint(1, MAX_CHECK_ROUNDS) if self.feedback else 1
            for _round in range(rounds):
                # Each round restarts the body from the entry state with
                # only the fed-back inputs updated — the exact model the
                # engine's fixpoint iterates.
                values = dict(entry)
                for name, value in values.items():
                    fact = self.var_facts.get(name)
                    if fact is not None and not fact.contains(value):
                        problems.append(
                            f"input {name}={value} escapes {fact}")
                self._check_one_pass(dfg, values, problems)
                if not self.feedback:
                    break
                entry.update({in_var: values[out_var]
                              for out_var, in_var in self.feedback.items()
                              if out_var in values})
            if len(problems) >= 20:
                break
        return problems

    def _check_one_pass(self, dfg: DFG, values: dict[str, int],
                        problems: list[str]) -> None:
        """Execute one loop body, checking each op and assignment."""
        for op_id in dfg.op_order:
            op = dfg.operation(op_id)
            operands = []
            for src in op.srcs:
                if isinstance(src, Const):
                    operands.append(src.value & mask(self.bits))
                else:
                    operands.append(values[src])
            facts = self.op_operands.get(op_id, ())
            for pos, (value, fact) in enumerate(zip(operands, facts)):
                if not fact.contains(value):
                    problems.append(f"{op_id} operand {pos}={value} "
                                    f"escapes {fact}")
            if len(operands) == 1:
                operands.append(0)
            result = apply_op(op.kind, operands[0], operands[1], self.bits)
            fact = self.op_facts.get(op_id)
            if fact is not None and not fact.contains(result):
                problems.append(f"{op_id} result {result} escapes {fact}")
            if op.dst is not None:
                values[op.dst] = result
                vfact = self.var_facts.get(op.dst)
                if vfact is not None and not vfact.contains(result):
                    problems.append(f"{op.dst}={result} (def {op_id}) "
                                    f"escapes {vfact}")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One line for CLI output and logs."""
        const = len(self.constant_ops())
        loop = (f", loop fixpoint in {self.loop_iterations} pass(es)"
                f"{' (widened)' if self.widened else ''}"
                if self.feedback else "")
        return (f"{self.name}@{self.bits}b: {len(self.op_facts)} ops, "
                f"{const} proved constant, "
                f"{self.known_bit_total()} known bits, "
                f"max required width {self.max_required_width()}/"
                f"{self.bits}{loop}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (abstract values as 4-int tuples)."""
        return {
            "format": CERT_FORMAT,
            "name": self.name,
            "bits": self.bits,
            "assumptions": {k: list(v) for k, v in
                            sorted(self.assumptions.items())},
            "feedback": dict(sorted(self.feedback.items())),
            "loop_iterations": self.loop_iterations,
            "widened": self.widened,
            "op_facts": {o: list(f.to_tuple())
                         for o, f in sorted(self.op_facts.items())},
            "op_operands": {o: [list(f.to_tuple()) for f in fs]
                            for o, fs in sorted(self.op_operands.items())},
            "var_facts": {v: list(f.to_tuple())
                          for v, f in sorted(self.var_facts.items())},
            "elapsed_seconds": round(self.elapsed_seconds, 6),
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "DataflowCertificate":
        """Rebuild a certificate from :meth:`to_dict` output."""
        return DataflowCertificate(
            name=data["name"],
            bits=data["bits"],
            assumptions={k: (v[0], v[1])
                         for k, v in data["assumptions"].items()},
            feedback=dict(data["feedback"]),
            loop_iterations=data["loop_iterations"],
            widened=data["widened"],
            op_facts={o: AbstractValue.from_tuple(f)
                      for o, f in data["op_facts"].items()},
            op_operands={o: tuple(AbstractValue.from_tuple(f) for f in fs)
                         for o, fs in data["op_operands"].items()},
            var_facts={v: AbstractValue.from_tuple(f)
                       for v, f in data["var_facts"].items()},
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
        )


__all__ = ["DataflowCertificate", "CERT_FORMAT", "MAX_CHECK_ROUNDS"]
