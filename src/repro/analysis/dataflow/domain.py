"""The abstract domain of the dataflow engine: intervals × known bits.

An :class:`AbstractValue` over-approximates the set of unsigned words a
signal can carry as the *product* of two lattices:

* an **interval** ``[lo, hi]`` (``0 <= lo <= hi <= 2**bits - 1``);
* **known bits**: a ternary word where each bit position is proved 0,
  proved 1, or unknown (``X``), encoded as a ``(known_mask,
  known_value)`` pair with ``known_value & ~known_mask == 0``.

The two components exchange information through :func:`reduce` (leading
zeros of ``hi`` become known-0 bits; the known-bit pattern clamps the
interval), so each transfer function only has to be precise in the
component where it is naturally strong — carry propagation for the
interval of ADD, bit masking for AND/OR — and reduction spreads the
precision to the other component.

Every transfer function here is *sound* with respect to
:func:`repro.rtl.semantics.apply_op`, the single source of truth for
word semantics: if concrete operands lie inside the operand abstract
values, the concrete result lies inside the transferred abstract value.
The property-based tests brute-force this contract at small widths and
sample it with Hypothesis at large ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...dfg.ops import OpKind, arity, is_comparison
from ...rtl.semantics import apply_op, mask

#: Ternary bit: 0, 1 or None (unknown / X).
TernaryBit = int | None


@dataclass(frozen=True)
class AbstractValue:
    """One signal's abstraction: interval × known bits.

    Attributes:
        lo: smallest possible value (unsigned).
        hi: largest possible value (unsigned).
        known_mask: bit positions whose value is proved.
        known_value: the proved bit values (subset of ``known_mask``).
    """

    lo: int
    hi: int
    known_mask: int
    known_value: int

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def top(bits: int) -> "AbstractValue":
        """The unconstrained value at the given width."""
        return AbstractValue(0, mask(bits), 0, 0)

    @staticmethod
    def const(value: int, bits: int) -> "AbstractValue":
        """The singleton abstraction of one concrete word."""
        value &= mask(bits)
        return AbstractValue(value, value, mask(bits), value)

    @staticmethod
    def range(lo: int, hi: int, bits: int) -> "AbstractValue":
        """The abstraction of an interval (reduced against its bits)."""
        m = mask(bits)
        lo = max(0, min(lo, m))
        hi = max(lo, min(hi, m))
        return reduce(lo, hi, 0, 0, bits)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_const(self) -> bool:
        """True when the abstraction pins a single concrete value."""
        return self.lo == self.hi

    @property
    def const_value(self) -> int:
        """The pinned value (meaningful only when :attr:`is_const`)."""
        return self.lo

    def contains(self, value: int) -> bool:
        """True when ``value`` is consistent with every derived fact."""
        return (self.lo <= value <= self.hi
                and (value & self.known_mask) == self.known_value)

    def required_width(self) -> int:
        """Bits needed to represent every value the abstraction admits."""
        return max(1, self.hi.bit_length())

    def known_bit_count(self) -> int:
        """Number of bit positions proved 0 or 1."""
        return bin(self.known_mask).count("1")

    def bit(self, i: int) -> TernaryBit:
        """The ternary value of bit ``i`` (None when unknown)."""
        if (self.known_mask >> i) & 1:
            return (self.known_value >> i) & 1
        return None

    def to_tuple(self) -> tuple[int, int, int, int]:
        """Compact serialisable form ``(lo, hi, known_mask, known_value)``."""
        return (self.lo, self.hi, self.known_mask, self.known_value)

    @staticmethod
    def from_tuple(data: tuple[int, int, int, int] | list[int]
                   ) -> "AbstractValue":
        lo, hi, km, kv = data
        return AbstractValue(lo, hi, km, kv)

    def __str__(self) -> str:  # pragma: no cover - debug helper
        if self.is_const:
            return f"={self.lo}"
        return f"[{self.lo},{self.hi}] k={self.known_mask:x}/" \
               f"{self.known_value:x}"


# ----------------------------------------------------------------------
# Reduction, join, widening
# ----------------------------------------------------------------------
def reduce(lo: int, hi: int, known_mask: int, known_value: int,
           bits: int) -> AbstractValue:
    """Mutually refine an interval and a known-bits pair.

    Leading zeros of ``hi`` prove high bits 0; the known-bit pattern's
    min/max clamp the interval; a collapsed interval pins every bit.
    Iterates to a local fixpoint (at most a few rounds — each round
    either tightens or stops).  An inconsistent input (empty meet) falls
    back to TOP, which is always sound; transfer functions never
    produce one on reachable inputs.
    """
    m = mask(bits)
    lo = max(0, min(lo, m))
    hi = min(hi, m)
    known_value &= known_mask
    for _ in range(bits + 1):
        # interval -> bits: everything above hi's top bit is zero.
        high_zero = m & ~mask(hi.bit_length())
        if high_zero & known_value:  # pragma: no cover - defensive
            return AbstractValue.top(bits)  # bit proved 1 above hi
        known_mask |= high_zero
        # bits -> interval: min sets unknowns to 0, max sets them to 1.
        kmin = known_value
        kmax = known_value | (~known_mask & m)
        new_lo = max(lo, kmin)
        new_hi = min(hi, kmax)
        if new_lo > new_hi:  # pragma: no cover - defensive
            return AbstractValue.top(bits)
        if new_lo == new_hi:
            return AbstractValue.const(new_lo, bits)
        if (new_lo, new_hi) == (lo, hi):
            break
        lo, hi = new_lo, new_hi
    return AbstractValue(lo, hi, known_mask, known_value)


def join(a: AbstractValue, b: AbstractValue, bits: int) -> AbstractValue:
    """Least upper bound: admits every value either operand admits."""
    agree = a.known_mask & b.known_mask & ~(a.known_value ^ b.known_value)
    return reduce(min(a.lo, b.lo), max(a.hi, b.hi),
                  agree, a.known_value & agree, bits)


def widen(old: AbstractValue, new: AbstractValue, bits: int
          ) -> AbstractValue:
    """Widening: any still-growing interval bound jumps to its extreme.

    Known bits use the plain join — that lattice has height ``bits`` so
    it needs no acceleration.  Guarantees the loop fixpoint terminates
    in a handful of iterations regardless of width.
    """
    joined = join(old, new, bits)
    lo = old.lo if joined.lo >= old.lo else 0
    hi = old.hi if joined.hi <= old.hi else mask(bits)
    return reduce(lo, hi, joined.known_mask, joined.known_value, bits)


# ----------------------------------------------------------------------
# Ternary ripple-carry addition (known-bits component of ADD/SUB)
# ----------------------------------------------------------------------
def _ternary_add(a: AbstractValue, b_mask: int, b_value: int,
                 carry: TernaryBit, bits: int) -> tuple[int, int]:
    """Known bits of ``a + b + carry`` by ternary full-adder ripple.

    ``b`` arrives as a raw (mask, value) pair so SUB can pass the
    bitwise complement without building an intermediate value.
    """
    known_mask = 0
    known_value = 0
    for i in range(bits):
        abit = a.bit(i)
        bbit = (b_value >> i) & 1 if (b_mask >> i) & 1 else None
        total = [abit, bbit, carry]
        if None not in total:
            s = abit + bbit + carry  # type: ignore[operator]
            known_mask |= 1 << i
            known_value |= (s & 1) << i
            carry = s >> 1
        else:
            ones = sum(1 for t in total if t == 1)
            zeros = sum(1 for t in total if t == 0)
            # The sum bit is unknown, but the carry-out may still be
            # decided: two known 1s force it, two known 0s forbid it.
            carry = 1 if ones >= 2 else 0 if zeros >= 2 else None
    return known_mask, known_value


# ----------------------------------------------------------------------
# Per-kind transfer functions
# ----------------------------------------------------------------------
def _transfer_add(a: AbstractValue, b: AbstractValue,
                  bits: int) -> AbstractValue:
    m = mask(bits)
    lo, hi = a.lo + b.lo, a.hi + b.hi
    if hi <= m:
        pass  # no wrap possible
    elif lo > m:
        lo, hi = lo - (m + 1), hi - (m + 1)  # always wraps exactly once
    else:
        lo, hi = 0, m  # may or may not wrap
    km, kv = _ternary_add(a, b.known_mask, b.known_value, 0, bits)
    return reduce(lo, hi, km, kv, bits)


def _transfer_sub(a: AbstractValue, b: AbstractValue,
                  bits: int) -> AbstractValue:
    m = mask(bits)
    lo, hi = a.lo - b.hi, a.hi - b.lo
    if lo >= 0:
        pass  # never borrows
    elif hi < 0:
        lo, hi = lo + (m + 1), hi + (m + 1)  # always borrows exactly once
    else:
        lo, hi = 0, m
    # a - b == a + ~b + 1 in two's complement at this width.
    b_flipped = ~b.known_value & b.known_mask & m
    km, kv = _ternary_add(a, b.known_mask, b_flipped, 1, bits)
    return reduce(lo, hi, km, kv, bits)


def _transfer_mul(a: AbstractValue, b: AbstractValue,
                  bits: int) -> AbstractValue:
    m = mask(bits)
    if a.hi * b.hi <= m:
        lo, hi = a.lo * b.lo, a.hi * b.hi
    else:
        lo, hi = 0, m
    # The low k bits of a product depend only on the low k bits of the
    # factors, so a shared run of known low bits survives multiplication.
    ta = _trailing_known(a, bits)
    tb = _trailing_known(b, bits)
    k = min(ta, tb)
    km = kv = 0
    if k:
        low = (a.known_value & mask(k)) * (b.known_value & mask(k))
        km, kv = mask(k), low & mask(k)
    return reduce(lo, hi, km, kv, bits)


def _trailing_known(v: AbstractValue, bits: int) -> int:
    """Length of the contiguous known-bit run starting at bit 0."""
    n = 0
    while n < bits and (v.known_mask >> n) & 1:
        n += 1
    return n


def _transfer_div(a: AbstractValue, b: AbstractValue,
                  bits: int) -> AbstractValue:
    m = mask(bits)
    if b.lo >= 1:
        return reduce(a.lo // b.hi, a.hi // b.lo, 0, 0, bits)
    if b.hi == 0:  # divisor provably zero: the divider saturates
        return AbstractValue.const(m, bits)
    # Divisor may be zero (result m) or positive (result <= a.hi).
    return reduce(a.lo // b.hi if b.hi else m, m, 0, 0, bits)


def _compare_verdict(kind: OpKind, a: AbstractValue,
                     b: AbstractValue) -> TernaryBit:
    """Decide a comparison from intervals and known bits, if possible."""
    if kind is OpKind.LT:
        return 1 if a.hi < b.lo else 0 if a.lo >= b.hi else None
    if kind is OpKind.GT:
        return 1 if a.lo > b.hi else 0 if a.hi <= b.lo else None
    if kind is OpKind.LE:
        return 1 if a.hi <= b.lo else 0 if a.lo > b.hi else None
    if kind is OpKind.GE:
        return 1 if a.lo >= b.hi else 0 if a.hi < b.lo else None
    common = a.known_mask & b.known_mask
    bits_conflict = bool((a.known_value ^ b.known_value) & common)
    disjoint = a.hi < b.lo or b.hi < a.lo
    equal = a.is_const and b.is_const and a.lo == b.lo
    if kind is OpKind.EQ:
        return 0 if disjoint or bits_conflict else 1 if equal else None
    if kind is OpKind.NE:
        return 1 if disjoint or bits_conflict else 0 if equal else None
    return None  # pragma: no cover - exhaustive over comparisons


def _transfer_shl(a: AbstractValue, b: AbstractValue,
                  bits: int) -> AbstractValue:
    m = mask(bits)
    if b.is_const:
        s = b.const_value % bits
        # Bit i of the result is bit i-s of a (and the low s bits are
        # zero) — exact per-bit even when the interval wraps.
        km = ((a.known_mask << s) & m) | mask(s)
        kv = (a.known_value << s) & m
        if a.hi << s <= m:
            return reduce(a.lo << s, a.hi << s, km, kv, bits)
        return reduce(0, m, km, kv, bits)
    # Unknown shift: zeros below the operand's known-zero run persist.
    tz = 0
    while tz < bits and a.bit(tz) == 0:
        tz += 1
    return reduce(0, m if a.hi else 0, mask(tz), 0, bits)


def _transfer_shr(a: AbstractValue, b: AbstractValue,
                  bits: int) -> AbstractValue:
    m = mask(bits)
    if b.is_const:
        s = b.const_value % bits
        # Bit i of the result is bit i+s of a; the top s bits are zero.
        km = (a.known_mask >> s) | (m & ~mask(bits - s))
        return reduce(a.lo >> s, a.hi >> s, km, a.known_value >> s, bits)
    return reduce(0, a.hi, 0, 0, bits)


def transfer(kind: OpKind, a: AbstractValue, b: AbstractValue,
             bits: int) -> AbstractValue:
    """The abstract semantics of one operation.

    Mirrors :func:`repro.rtl.semantics.apply_op` (unary kinds ignore
    ``b``; callers conventionally pad with ``const(0)``).  Constant
    operands short-circuit to the concrete semantics, so the two can
    never disagree on fully-known inputs.
    """
    m = mask(bits)
    if a.is_const and (arity(kind) == 1 or b.is_const):
        return AbstractValue.const(
            apply_op(kind, a.const_value, b.const_value, bits), bits)
    if kind is OpKind.ADD:
        return _transfer_add(a, b, bits)
    if kind is OpKind.SUB:
        return _transfer_sub(a, b, bits)
    if kind is OpKind.MUL:
        return _transfer_mul(a, b, bits)
    if kind is OpKind.DIV:
        return _transfer_div(a, b, bits)
    if is_comparison(kind):
        verdict = _compare_verdict(kind, a, b)
        if verdict is not None:
            return AbstractValue.const(verdict, bits)
        return reduce(0, 1, m & ~1, 0, bits)
    if kind is OpKind.AND:
        known0 = (a.known_mask & ~a.known_value) | \
                 (b.known_mask & ~b.known_value)
        known1 = a.known_mask & a.known_value & b.known_mask & b.known_value
        return reduce(0, min(a.hi, b.hi), (known0 | known1) & m,
                      known1 & m, bits)
    if kind is OpKind.OR:
        known1 = (a.known_mask & a.known_value) | \
                 (b.known_mask & b.known_value)
        known0 = (a.known_mask & ~a.known_value) & \
                 (b.known_mask & ~b.known_value)
        hi = min(m, mask(max(a.hi.bit_length(), b.hi.bit_length())))
        return reduce(max(a.lo, b.lo), hi, (known0 | known1) & m,
                      known1 & m, bits)
    if kind is OpKind.XOR:
        km = a.known_mask & b.known_mask
        hi = min(m, mask(max(a.hi.bit_length(), b.hi.bit_length())))
        return reduce(0, hi, km, (a.known_value ^ b.known_value) & km, bits)
    if kind is OpKind.NOT:
        return reduce(m - a.hi, m - a.lo, a.known_mask,
                      ~a.known_value & a.known_mask, bits)
    if kind is OpKind.SHL:
        return _transfer_shl(a, b, bits)
    if kind is OpKind.SHR:
        return _transfer_shr(a, b, bits)
    if kind is OpKind.MOVE:
        return a
    raise ValueError(f"unknown operation kind {kind!r}")  # pragma: no cover
