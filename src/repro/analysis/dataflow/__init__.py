"""repro.analysis.dataflow — abstract-interpretation value analysis.

A forward fixpoint over the DFG on the product lattice of unsigned
intervals and known bits (:mod:`~repro.analysis.dataflow.domain`), with
loop-carried feedback and widening
(:mod:`~repro.analysis.dataflow.engine`), packaged as an independently
re-checkable :class:`~repro.analysis.dataflow.certificate.
DataflowCertificate`.  Three layers consume the facts: width narrowing
in :mod:`repro.cost.narrow`, the ``DFA0xx`` lint rules, and the
untestable-fault pruning in :mod:`repro.atpg.prune`.
"""

from .certificate import CERT_FORMAT, DataflowCertificate
from .domain import AbstractValue, join, reduce, transfer, widen
from .engine import (MAX_ITERATIONS, WIDEN_DELAY, analyze_dataflow,
                     infer_feedback)

__all__ = [
    "AbstractValue",
    "CERT_FORMAT",
    "DataflowCertificate",
    "MAX_ITERATIONS",
    "WIDEN_DELAY",
    "analyze_dataflow",
    "infer_feedback",
    "join",
    "reduce",
    "transfer",
    "widen",
]
