"""Forward abstract-interpretation fixpoint over the DFG.

The DFG is one straight-line loop body (the loop structure lives in the
ETPN control part, signalled by ``dfg.loop_condition``), so the engine
has exactly one merge point: the loop header, where the values fed back
across the ETPN back-edge join the entry state.  The analysis:

1. seeds every primary input from its entry assumption (full range by
   default);
2. runs the body once in program order, transferring each operation
   through :func:`~repro.analysis.dataflow.domain.transfer` — multiple
   definitions of one variable resolve exactly like the reference
   interpreter, by program order;
3. for looping behaviours, joins the fed-back output values into the
   entry state and repeats, **widening** after :data:`WIDEN_DELAY`
   passes so convergence never depends on the word width;
4. once the entry state is stable, runs one final collection pass whose
   per-operation facts are sound for *every* loop round (the stable
   entry over-approximates each round's entry by induction).

The benchmark DFGs carry loop-carried values by the 1998 papers' naming
convention (``x1`` is next-state ``x``); :func:`infer_feedback` derives
that map and the certificate records it, so the claim the certificate
checks is exactly the claim the engine proved.
"""

from __future__ import annotations

import time
from typing import Mapping, Optional

from ...dfg.graph import Const, DFG
from ...rtl.semantics import mask
from .certificate import DataflowCertificate
from .domain import AbstractValue, join, transfer, widen

#: Fixpoint passes before widening accelerates convergence.
WIDEN_DELAY = 3

#: Hard ceiling on fixpoint passes (reached only on engine bugs; the
#: engine then falls back to TOP entries, which is always sound).
MAX_ITERATIONS = 48


def infer_feedback(dfg: DFG) -> dict[str, str]:
    """Derive the loop-carried value map from the naming convention.

    The 1998 benchmarks write next-state values to ``<var>1`` (Diffeq:
    ``x1 = x + dx`` feeds ``x`` in the next iteration).  An output
    ``v1`` whose stem ``v`` is a primary input is a loop-carried pair;
    anything else (e.g. Diffeq's input ``a1``) is left alone.  Returns
    an empty map for straight-line behaviour.
    """
    if dfg.loop_condition is None:
        return {}
    inputs = {v.name for v in dfg.inputs()}
    return {out.name: out.name[:-1] for out in dfg.outputs()
            if out.name.endswith("1") and out.name[:-1] in inputs}


def _entry_state(dfg: DFG, bits: int,
                 assumptions: Mapping[str, tuple[int, int]]
                 ) -> dict[str, AbstractValue]:
    """The abstract value of each primary input at loop entry."""
    m = mask(bits)
    state = {}
    for var in dfg.inputs():
        lo, hi = assumptions.get(var.name, (0, m))
        state[var.name] = AbstractValue.range(lo, hi, bits)
    return state


def _run_body(dfg: DFG, bits: int, entry: dict[str, AbstractValue]
              ) -> tuple[dict[str, AbstractValue],
                         dict[str, tuple[AbstractValue, ...]],
                         dict[str, AbstractValue],
                         dict[str, AbstractValue]]:
    """One abstract pass over the body in program order.

    Returns ``(op_facts, op_operands, final_values, var_facts)`` where
    ``final_values`` is each variable's last abstraction (what feeds
    back) and ``var_facts`` joins the entry value with *every*
    definition — the register-lifetime abstraction.
    """
    values: dict[str, AbstractValue] = dict(entry)
    var_facts: dict[str, AbstractValue] = dict(entry)
    op_facts: dict[str, AbstractValue] = {}
    op_operands: dict[str, tuple[AbstractValue, ...]] = {}
    for op_id in dfg.op_order:
        op = dfg.operation(op_id)
        operands = []
        for src in op.srcs:
            if isinstance(src, Const):
                operands.append(AbstractValue.const(src.value, bits))
            else:
                operands.append(values.get(src, AbstractValue.top(bits)))
        op_operands[op_id] = tuple(operands)
        if len(operands) == 1:
            operands.append(AbstractValue.const(0, bits))
        result = transfer(op.kind, operands[0], operands[1], bits)
        op_facts[op_id] = result
        if op.dst is not None:
            values[op.dst] = result
            prior = var_facts.get(op.dst)
            var_facts[op.dst] = (result if prior is None
                                 else join(prior, result, bits))
    return op_facts, op_operands, values, var_facts


def analyze_dataflow(dfg: DFG, bits: int,
                     assumptions: Optional[Mapping[str, tuple[int, int]]]
                     = None,
                     feedback: Optional[Mapping[str, str]] = None
                     ) -> DataflowCertificate:
    """Run the dataflow fixpoint and package the facts as a certificate.

    Args:
        dfg: the behaviour to analyse.
        bits: word width.
        assumptions: entry interval per input name; unlisted inputs get
            the full range.  Recorded in the certificate — the facts
            are sound *relative to* these preconditions.
        feedback: loop-carried ``output -> input`` map; None derives it
            with :func:`infer_feedback`, an empty mapping forces
            straight-line analysis.

    Returns:
        A :class:`DataflowCertificate` whose facts hold for every
        concrete execution of the recorded model.
    """
    t0 = time.perf_counter()
    m = mask(bits)
    clamped: dict[str, tuple[int, int]] = {}
    for name, (lo, hi) in dict(assumptions or {}).items():
        lo = max(0, min(lo, m))
        clamped[name] = (lo, max(lo, min(hi, m)))
    fb = dict(infer_feedback(dfg) if feedback is None else feedback)
    fb = {o: i for o, i in fb.items()
          if o in dfg.variables and i in dfg.variables}

    entry = _entry_state(dfg, bits, clamped)
    iterations = 0
    widened = False
    if fb:
        for iterations in range(1, MAX_ITERATIONS + 1):
            _, _, finals, _ = _run_body(dfg, bits, entry)
            new_entry = dict(entry)
            for out_var, in_var in fb.items():
                fed = finals.get(out_var)
                if fed is None:
                    continue
                merged = join(entry[in_var], fed, bits)
                if iterations > WIDEN_DELAY:
                    accelerated = widen(entry[in_var], merged, bits)
                    widened = widened or accelerated != merged
                    merged = accelerated
                new_entry[in_var] = merged
            if new_entry == entry:
                break
            entry = new_entry
        else:  # pragma: no cover - widening prevents this in practice
            entry = {name: AbstractValue.top(bits) for name in entry}
            widened = True

    op_facts, op_operands, _, var_facts = _run_body(dfg, bits, entry)
    return DataflowCertificate(
        name=dfg.name, bits=bits, assumptions=clamped, feedback=fb,
        loop_iterations=max(1, iterations), widened=widened,
        op_facts=op_facts, op_operands=op_operands, var_facts=var_facts,
        elapsed_seconds=time.perf_counter() - t0)
