"""The may-happen-in-parallel (MHP) relation of a control part.

Derived from the memoised :class:`~repro.analysis.reach_graph.ReachabilityGraph`:

* two *places* may happen in parallel when some reachable marking holds
  tokens in both (a place is trivially parallel with itself once it is
  ever marked — everything resting in it happens within one control
  step);
* two *transitions* are concurrently enabled when both are enabled in
  one reachable marking.  Pairs with disjoint input places are true
  concurrency (they can fire independently); pairs sharing an input
  place are in *conflict* (a choice, e.g. the guarded loop/exit pair);
* two *operations* may happen in parallel when the places they execute
  in may — this is the relation the race detector
  (:mod:`repro.analysis.races`) joins against the binding.

For the linear control nets built from a schedule the op-level MHP
relation degenerates to "same control step", which is exactly what the
schedule-level lint rules already see.  Its value is on control parts
with forks, guarded branches and loops, where the linear schedule view
under-approximates concurrency.
"""

from __future__ import annotations

from itertools import combinations

from ..petri.net import PetriNet
from .reach_graph import DEFAULT_MAX_MARKINGS, ReachabilityGraph


class MHPAnalysis:
    """MHP relations over places and transitions of one net."""

    def __init__(self, net: PetriNet,
                 max_markings: int = DEFAULT_MAX_MARKINGS) -> None:
        self.net = net
        self.graph = ReachabilityGraph(net, max_markings)
        #: Places that hold a token in at least one reachable marking.
        self.marked_places: set[str] = set()
        #: Unordered pairs of distinct places co-marked somewhere.
        self.place_pairs: set[frozenset[str]] = set()
        #: Unordered pairs of distinct transitions enabled together.
        self.enabled_pairs: set[frozenset[str]] = set()
        #: The subset of ``enabled_pairs`` with disjoint input places.
        self.concurrent_pairs: set[frozenset[str]] = set()
        self._compute()

    def _compute(self) -> None:
        for marking in self.graph.markings:
            self.marked_places |= marking
            for p, q in combinations(sorted(marking), 2):
                self.place_pairs.add(frozenset((p, q)))
            enabled = [t for t in self.net.enabled(marking) if t.inputs]
            for a, b in combinations(enabled, 2):
                pair = frozenset((a.trans_id, b.trans_id))
                self.enabled_pairs.add(pair)
                if not set(a.inputs) & set(b.inputs):
                    self.concurrent_pairs.add(pair)

    # ------------------------------------------------------------------
    def conflict_pairs(self) -> set[frozenset[str]]:
        """Transition pairs enabled together but competing for a token."""
        return self.enabled_pairs - self.concurrent_pairs

    def places_parallel(self, p: str, q: str) -> bool:
        """May places ``p`` and ``q`` hold tokens at the same time?"""
        if p == q:
            return p in self.marked_places
        return frozenset((p, q)) in self.place_pairs

    def transitions_parallel(self, a: str, b: str) -> bool:
        """May transitions ``a`` and ``b`` fire truly concurrently?"""
        return a != b and frozenset((a, b)) in self.concurrent_pairs

    # ------------------------------------------------------------------
    def op_pairs(self, placement: dict[str, str],
                 include_same_place: bool = True) -> set[frozenset[str]]:
        """Unordered MHP pairs of operations under ``placement``.

        Args:
            placement: op_id -> place the operation executes in.  Ops
                placed in unknown places are ignored (defensive: a
                broken schedule is reported by the schedule rules).
            include_same_place: also count two operations resting in the
                same (reachable) place — they execute within one control
                step.  Set False for strictly cross-step concurrency.
        """
        pairs: set[frozenset[str]] = set()
        placed = sorted(o for o, p in placement.items()
                        if p in self.net.places)
        for a, b in combinations(placed, 2):
            pa, pb = placement[a], placement[b]
            if pa == pb:
                if include_same_place and pa in self.marked_places:
                    pairs.add(frozenset((a, b)))
            elif frozenset((pa, pb)) in self.place_pairs:
                pairs.add(frozenset((a, b)))
        return pairs

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"MHPAnalysis({self.net.name!r}, "
                f"{len(self.graph)} markings, "
                f"{len(self.place_pairs)} parallel place pairs)")
