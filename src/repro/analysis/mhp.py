"""The may-happen-in-parallel (MHP) relation of a control part.

Derived from the memoised :class:`~repro.analysis.reach_graph.ReachabilityGraph`:

* two *places* may happen in parallel when some reachable marking holds
  tokens in both (a place is trivially parallel with itself once it is
  ever marked — everything resting in it happens within one control
  step);
* two *transitions* are concurrently enabled when both are enabled in
  one reachable marking.  Pairs with disjoint input places are true
  concurrency (they can fire independently); pairs sharing an input
  place are in *conflict* (a choice, e.g. the guarded loop/exit pair);
* two *operations* may happen in parallel when the places they execute
  in may — this is the relation the race detector
  (:mod:`repro.analysis.races`) joins against the binding.

For the linear control nets built from a schedule the op-level MHP
relation degenerates to "same control step", which is exactly what the
schedule-level lint rules already see.  Its value is on control parts
with forks, guarded branches and loops, where the linear schedule view
under-approximates concurrency.

When the enumeration is *truncated* (an exhausted
:class:`~repro.runtime.budget.Budget` or an explicit
``tier="structural"``), the relations are rebuilt as a **sound
over-approximation** from the structural certificate instead of being
left as an unsound prefix: any pair the structural tier cannot prove
mutually exclusive is treated as parallel.  A race detector joining
against that over-approximation can report spurious races but can never
miss one — the safe direction for a checker.  :attr:`MHPAnalysis.tier`
and :attr:`MHPAnalysis.approximate` say which mode produced the result.
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional

from ..petri.net import PetriNet
from ..runtime.budget import Budget
from .reach_graph import DEFAULT_MAX_MARKINGS, ReachabilityGraph
from .structural import StructuralCertificate, structural_certificate


class MHPAnalysis:
    """MHP relations over places and transitions of one net.

    Args:
        net: the control Petri net.
        max_markings: bound on the reachability-graph construction.
        budget: cooperative budget charged per expanded marking; when
            it drains the analysis switches to the structural
            over-approximation instead of returning a truncated (and
            therefore unsound) relation.
        tier: ``"auto"`` (enumerate, fall back on truncation),
            ``"enumerative"`` (never fall back; a truncated graph then
            yields the legacy under-approximating prefix relation) or
            ``"structural"`` (never enumerate — :attr:`graph` stays
            None and every relation is the over-approximation).

    Attributes:
        graph: the reachability graph, or None in the structural tier.
        certificate: the structural certificate backing the
            over-approximation (None while the exact tier suffices).
        tier: ``"enumerative"`` or ``"structural"`` — which engine
            produced the relations actually stored.
        approximate: True when the relations over- (structural tier) or
            under-approximate (truncated enumerative tier) the exact
            MHP relation.
    """

    def __init__(self, net: PetriNet,
                 max_markings: int = DEFAULT_MAX_MARKINGS,
                 budget: Optional[Budget] = None,
                 tier: str = "auto") -> None:
        if tier not in ("auto", "enumerative", "structural"):
            raise ValueError(f"unknown MHP tier {tier!r}")
        self.net = net
        self.graph: Optional[ReachabilityGraph] = None
        self.certificate: Optional[StructuralCertificate] = None
        self.approximate = False
        #: Places that hold a token in at least one reachable marking.
        self.marked_places: set[str] = set()
        #: Unordered pairs of distinct places co-marked somewhere.
        self.place_pairs: set[frozenset[str]] = set()
        #: Unordered pairs of distinct transitions enabled together.
        self.enabled_pairs: set[frozenset[str]] = set()
        #: The subset of ``enabled_pairs`` with disjoint input places.
        self.concurrent_pairs: set[frozenset[str]] = set()
        if tier != "structural":
            self.graph = ReachabilityGraph(net, max_markings, budget=budget)
        if tier == "structural" or (tier == "auto" and self.graph is not None
                                    and self.graph.truncated):
            self.tier = "structural"
            self.approximate = True
            self._compute_structural()
        else:
            self.tier = "enumerative"
            assert self.graph is not None
            self.approximate = self.graph.truncated
            self._compute()

    def _compute(self) -> None:
        assert self.graph is not None
        for marking in self.graph.markings:
            self.marked_places |= marking
            for p, q in combinations(sorted(marking), 2):
                self.place_pairs.add(frozenset((p, q)))
            enabled = [t for t in self.net.enabled(marking) if t.inputs]
            for a, b in combinations(enabled, 2):
                pair = frozenset((a.trans_id, b.trans_id))
                self.enabled_pairs.add(pair)
                if not set(a.inputs) & set(b.inputs):
                    self.concurrent_pairs.add(pair)

    def _compute_structural(self) -> None:
        """Sound over-approximation of the relations, no enumeration.

        A pair of places is *excluded* only when the certificate proves
        it (shared 1-token invariant or closure-unreachability); every
        other pair of structurally-reachable places is kept as may-be
        parallel.  Transitions count as jointly enabled unless some
        pair among their combined input places is proved exclusive —
        whenever both really are enabled at one marking, all those
        inputs are co-marked there, so no sound proof of exclusion can
        exist and the pair survives the filter.
        """
        cert = structural_certificate(self.net)
        self.certificate = cert
        reachable = sorted(cert.structurally_reachable)
        self.marked_places = set(reachable)
        for p, q in combinations(reachable, 2):
            if not cert.mutually_exclusive(p, q):
                self.place_pairs.add(frozenset((p, q)))
        live = [t for t in self.net.transitions.values()
                if t.inputs and t.trans_id in cert.structurally_fireable
                and t.trans_id not in cert.dead_transitions]
        for a, b in combinations(live, 2):
            inputs = set(a.inputs) | set(b.inputs)
            if any(cert.mutually_exclusive(p, q)
                   for p, q in combinations(sorted(inputs), 2)):
                continue
            pair = frozenset((a.trans_id, b.trans_id))
            self.enabled_pairs.add(pair)
            if not set(a.inputs) & set(b.inputs):
                self.concurrent_pairs.add(pair)

    # ------------------------------------------------------------------
    def conflict_pairs(self) -> set[frozenset[str]]:
        """Transition pairs enabled together but competing for a token."""
        return self.enabled_pairs - self.concurrent_pairs

    def places_parallel(self, p: str, q: str) -> bool:
        """May places ``p`` and ``q`` hold tokens at the same time?"""
        if p == q:
            return p in self.marked_places
        return frozenset((p, q)) in self.place_pairs

    def transitions_parallel(self, a: str, b: str) -> bool:
        """May transitions ``a`` and ``b`` fire truly concurrently?"""
        return a != b and frozenset((a, b)) in self.concurrent_pairs

    # ------------------------------------------------------------------
    def op_pairs(self, placement: dict[str, str],
                 include_same_place: bool = True) -> set[frozenset[str]]:
        """Unordered MHP pairs of operations under ``placement``.

        Args:
            placement: op_id -> place the operation executes in.  Ops
                placed in unknown places are ignored (defensive: a
                broken schedule is reported by the schedule rules).
            include_same_place: also count two operations resting in the
                same (reachable) place — they execute within one control
                step.  Set False for strictly cross-step concurrency.
        """
        pairs: set[frozenset[str]] = set()
        placed = sorted(o for o, p in placement.items()
                        if p in self.net.places)
        for a, b in combinations(placed, 2):
            pa, pb = placement[a], placement[b]
            if pa == pb:
                if include_same_place and pa in self.marked_places:
                    pairs.add(frozenset((a, b)))
            elif frozenset((pa, pb)) in self.place_pairs:
                pairs.add(frozenset((a, b)))
        return pairs

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        markings = "no" if self.graph is None else len(self.graph)
        return (f"MHPAnalysis({self.net.name!r}, {self.tier}, "
                f"{markings} markings, "
                f"{len(self.place_pairs)} parallel place pairs)")
