"""repro.analysis — whole-design static analysis of ETPN designs.

Four analyses that together prove (or refute) the paper's claim that
merger transformations are semantics-preserving:

* :class:`ReachabilityGraph` — the reachable markings of the control
  part with *global* marking deduplication (unlike
  :class:`repro.petri.reachability.ReachabilityTree`, which only prunes
  duplicates along one root path and blows up exponentially on
  concurrent control structures);
* :mod:`repro.analysis.structural` — the enumeration-free tier:
  P/T-invariants, siphons/traps and the bundled
  :class:`~repro.analysis.structural.StructuralCertificate` proving
  safety, conservation and deadlock-freedom in polynomial time;
* :class:`MHPAnalysis` / :class:`ConcurrencyAnalysis` — the
  may-happen-in-parallel relation over places, transitions and bound
  operations, joined against the binding to detect control-level races
  (``RAC0xx`` lint rules); degrades to a *sound over-approximation*
  built from the structural certificate when the enumeration budget
  drains;
* :func:`certify` — a symbolic value-flow certifier that executes the
  scheduled + bound data path control step by control step and proves
  every DFG output computes the original behavioural expression
  (``EQV0xx`` lint rules on divergence).

:class:`TieredAnalysis` dispatches safety/deadlock questions structure-
first with enumerative fallback, and :func:`cross_check` asserts the
two tiers agree.  :func:`analyze_design` bundles everything for one
design point; the ``repro-hlts analyze`` CLI subcommand, the
``analysis`` lint layer and ``SynthesisParams(verify_mergers=True)``
all go through it.

:mod:`repro.analysis.timing` extends the family below the RTL:
:func:`analyze_timing` runs deterministic static timing analysis over
the expanded gate netlist (arrivals, slack, false-path pruning,
incremental :class:`ConeCache`), the ``timing`` lint layer and
``repro-hlts timing`` expose it, and
``SynthesisParams(check_timing=True)`` gates module mergers on
:func:`merged_module_fits`.
"""

from .dataflow import (AbstractValue, DataflowCertificate, analyze_dataflow,
                       infer_feedback)
from .equivalence import (COMMUTATIVE, Divergence, EquivalenceCertificate,
                          ValueNumbering, certify)
from .mhp import MHPAnalysis
from .races import ConcurrencyAnalysis, RaceFinding
from .reach_graph import GraphEdge, ReachabilityGraph, UnsafeFiring
from .structural import (Invariant, SiphonWitness, StructuralCertificate,
                         Verdict, structural_certificate)
from .tiers import (Tier, TierDecision, TieredAnalysis, cross_check,
                    stuck_markings)
from .timing import (ConeCache, DEFAULT_TABLE, DelayTable, TimingReport,
                     analyze_timing, default_period, merged_module_fits)
from .verify import AnalysisResult, analyze_design, merger_preserves_semantics

__all__ = [
    "AbstractValue",
    "AnalysisResult",
    "COMMUTATIVE",
    "ConeCache",
    "DEFAULT_TABLE",
    "DelayTable",
    "TimingReport",
    "ConcurrencyAnalysis",
    "DataflowCertificate",
    "Divergence",
    "EquivalenceCertificate",
    "GraphEdge",
    "Invariant",
    "MHPAnalysis",
    "RaceFinding",
    "ReachabilityGraph",
    "SiphonWitness",
    "StructuralCertificate",
    "Tier",
    "TierDecision",
    "TieredAnalysis",
    "UnsafeFiring",
    "ValueNumbering",
    "Verdict",
    "analyze_dataflow",
    "analyze_design",
    "analyze_timing",
    "certify",
    "cross_check",
    "default_period",
    "infer_feedback",
    "merged_module_fits",
    "merger_preserves_semantics",
    "stuck_markings",
    "structural_certificate",
]
