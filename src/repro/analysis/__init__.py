"""repro.analysis — whole-design static analysis of ETPN designs.

Three analyses that together prove (or refute) the paper's claim that
merger transformations are semantics-preserving:

* :class:`ReachabilityGraph` — the reachable markings of the control
  part with *global* marking deduplication (unlike
  :class:`repro.petri.reachability.ReachabilityTree`, which only prunes
  duplicates along one root path and blows up exponentially on
  concurrent control structures);
* :class:`MHPAnalysis` / :class:`ConcurrencyAnalysis` — the
  may-happen-in-parallel relation over places, transitions and bound
  operations, joined against the binding to detect control-level races
  (``RAC0xx`` lint rules);
* :func:`certify` — a symbolic value-flow certifier that executes the
  scheduled + bound data path control step by control step and proves
  every DFG output computes the original behavioural expression
  (``EQV0xx`` lint rules on divergence).

:func:`analyze_design` bundles all three for one design point; the
``repro-hlts analyze`` CLI subcommand, the ``analysis`` lint layer and
``SynthesisParams(verify_mergers=True)`` all go through it.
"""

from .equivalence import (COMMUTATIVE, Divergence, EquivalenceCertificate,
                          ValueNumbering, certify)
from .mhp import MHPAnalysis
from .races import ConcurrencyAnalysis, RaceFinding
from .reach_graph import GraphEdge, ReachabilityGraph, UnsafeFiring
from .verify import AnalysisResult, analyze_design, merger_preserves_semantics

__all__ = [
    "AnalysisResult",
    "COMMUTATIVE",
    "ConcurrencyAnalysis",
    "Divergence",
    "EquivalenceCertificate",
    "GraphEdge",
    "MHPAnalysis",
    "RaceFinding",
    "ReachabilityGraph",
    "UnsafeFiring",
    "ValueNumbering",
    "analyze_design",
    "certify",
    "merger_preserves_semantics",
]
