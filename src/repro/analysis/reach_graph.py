"""Memoised reachability graph of a safe timed Petri net.

:class:`repro.petri.reachability.ReachabilityTree` follows Peterson's
construction: a branch stops only when its marking repeats *on the path
from the root*.  Two concurrently-marked chains of length ``n`` then
enumerate every interleaving — ``O(2^n)`` tree nodes for a state space
of ``O(n^2)`` distinct markings.  The graph here deduplicates markings
globally: each reachable marking is visited exactly once (BFS from the
initial marking), so its size is bounded by the number of *distinct*
reachable markings, which is what the may-happen-in-parallel analysis
(:mod:`repro.analysis.mhp`) needs to stay polynomial on forking control
parts.

Firings that would put a second token into a place (safeness
violations) are recorded in :attr:`ReachabilityGraph.unsafe_firings`
instead of raising, so one construction yields both the state space and
the safeness audit (lint rule ``NET007``).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

from ..errors import PetriNetError
from ..petri.net import PetriNet
from ..runtime.budget import Budget

#: Default bound on distinct markings before construction aborts.
DEFAULT_MAX_MARKINGS = 100_000


@dataclass(frozen=True)
class UnsafeFiring:
    """A reachable firing that would double-mark one or more places."""

    marking: frozenset[str]
    trans_id: str
    places: tuple[str, ...]

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return (f"{self.trans_id} in {sorted(self.marking)} double-marks "
                f"{list(self.places)}")


@dataclass(frozen=True)
class GraphEdge:
    """One firing: ``src`` marking --trans_id--> ``dst`` marking."""

    src: frozenset[str]
    trans_id: str
    dst: frozenset[str]


class ReachabilityGraph:
    """The globally-deduplicated marking graph of a Petri net.

    Attributes:
        markings: distinct reachable markings in BFS order (the initial
            marking first).
        edges: every firing between reachable markings.
        unsafe_firings: enabled firings skipped because they would
            double-mark a place (the net is unsafe iff non-empty).
        truncated: True when an exhausted :class:`Budget` stopped the
            BFS early; the graph is then a well-formed *prefix* of the
            state space (every listed marking is reachable, frontier
            markings keep empty successor lists).
        elapsed_seconds: wall-clock cost of the BFS construction, so
            the two-tier dispatcher and the ``BENCH_analysis`` capture
            can report it without re-walking (or re-timing) the graph.
    """

    def __init__(self, net: PetriNet,
                 max_markings: int = DEFAULT_MAX_MARKINGS,
                 budget: Budget | None = None) -> None:
        self.net = net
        self.markings: list[frozenset[str]] = []
        self.edges: list[GraphEdge] = []
        self.unsafe_firings: list[UnsafeFiring] = []
        self.truncated = False
        self.truncation_reason = ""
        self._succ: dict[frozenset[str], list[GraphEdge]] = {}
        started = time.perf_counter()
        self._build(max_markings, budget)
        self.elapsed_seconds = time.perf_counter() - started

    def _build(self, max_markings: int,
               budget: Budget | None = None) -> None:
        net = self.net
        seen: set[frozenset[str]] = {net.initial_marking}
        queue: deque[frozenset[str]] = deque([net.initial_marking])
        while queue:
            marking = queue.popleft()
            self.markings.append(marking)
            self._succ[marking] = []
            if budget is not None and not budget.charge():
                # Budget drained: keep the already-discovered frontier
                # visible (unexpanded, no successors) and stop cleanly.
                self.truncated = True
                self.truncation_reason = "budget_exhausted"
                while queue:
                    frontier = queue.popleft()
                    self.markings.append(frontier)
                    self._succ[frontier] = []
                return
            if net.is_final(marking):
                continue  # the computation has terminated; do not expand
            for transition in net.enabled(marking):
                if not transition.inputs:
                    continue  # sourceless transitions are NET006 errors
                clash = set(transition.outputs) & (marking
                                                   - set(transition.inputs))
                if clash:
                    self.unsafe_firings.append(UnsafeFiring(
                        marking, transition.trans_id, tuple(sorted(clash))))
                    continue
                after = net.fire(marking, transition)
                edge = GraphEdge(marking, transition.trans_id, after)
                self.edges.append(edge)
                self._succ[marking].append(edge)
                if after not in seen:
                    if len(seen) >= max_markings:
                        raise PetriNetError(
                            f"{net.name}: reachability graph exceeds "
                            f"{max_markings} markings")
                    seen.add(after)
                    queue.append(after)

    # ------------------------------------------------------------------
    def successors(self, marking: frozenset[str]) -> list[GraphEdge]:
        """Firings leaving ``marking`` (empty for unknown markings)."""
        return list(self._succ.get(marking, []))

    def contains(self, marking: frozenset[str]) -> bool:
        """True when ``marking`` is reachable."""
        return marking in self._succ

    def is_safe(self) -> bool:
        """True when no reachable firing would double-mark a place."""
        return not self.unsafe_firings

    @property
    def marking_count(self) -> int:
        """Distinct markings discovered (result-object counter)."""
        return len(self.markings)

    @property
    def edge_count(self) -> int:
        """Firings recorded between discovered markings."""
        return len(self.edges)

    def __len__(self) -> int:
        return len(self.markings)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"ReachabilityGraph({self.net.name!r}, "
                f"{len(self.markings)} markings, {len(self.edges)} edges)")
