"""Timing analysis result types: endpoints, paths, the report."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass(slots=True)
class EndpointTiming:
    """Worst-case timing of one endpoint (a DFF D input or a PO).

    ``arrival`` is None for an *unconstrained* endpoint: no timed
    launch (input or register output) reaches it — it is fed entirely
    by constants, so it carries no transition to time.  ``cone_size``
    and ``pruned`` count the distinct gate structures *evaluated* for
    this endpoint — incremental evaluation examines only the changed
    suffix of a cone, and a cache hit examines none (the stored counts
    are served with the summary).
    """

    name: str
    kind: str                       # "output" | "dff"
    gid: int                        # PO driver gid, or the DFF's gid
    arrival: Optional[float] = None
    required: Optional[float] = None
    slack: Optional[float] = None
    levels: int = 0                 # logic levels on the worst path
    cone_size: int = 0              # combinational gates in the cone
    pruned: int = 0                 # cone gates proved constant
    cached: bool = False            # served from the cone cache
    analysed: bool = True
    skip_reason: str = ""

    @property
    def violated(self) -> bool:
        return self.slack is not None and self.slack < 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name, "kind": self.kind, "gid": self.gid,
            "arrival": self.arrival, "required": self.required,
            "slack": self.slack, "levels": self.levels,
            "cone_size": self.cone_size, "pruned": self.pruned,
            "cached": self.cached, "analysed": self.analysed,
            "skip_reason": self.skip_reason,
        }


@dataclass(frozen=True, slots=True)
class PathStep:
    """One gate on a critical path, with the arrival at its output."""

    gid: int
    gtype: str
    name: str
    arrival: float

    def to_dict(self) -> dict[str, Any]:
        return {"gid": self.gid, "gtype": self.gtype, "name": self.name,
                "arrival": self.arrival}


@dataclass
class TimingPath:
    """One worst path, launch point first, endpoint driver last."""

    endpoint: str
    arrival: float
    slack: Optional[float]
    steps: tuple[PathStep, ...]

    def to_dict(self) -> dict[str, Any]:
        return {"endpoint": self.endpoint, "arrival": self.arrival,
                "slack": self.slack,
                "steps": [s.to_dict() for s in self.steps]}

    def format(self) -> str:
        chain = " -> ".join(
            f"{s.gtype}#{s.gid}" + (f"({s.name})" if s.name else "")
            for s in self.steps)
        slack = "-" if self.slack is None else f"{self.slack:+.2f}"
        return (f"{self.endpoint}: arrival {self.arrival:.2f} "
                f"slack {slack}: {chain}")


@dataclass
class TimingReport:
    """The full result of one static timing analysis.

    Always well-formed: a blocked analysis (combinational cycle, broken
    delay table) or a starved one (budget) still yields a report whose
    fields say exactly what was and was not computed.
    """

    name: str
    bits: int
    period: float
    period_is_default: bool
    chain_allowance: float
    endpoints: list[EndpointTiming] = field(default_factory=list)
    paths: list[TimingPath] = field(default_factory=list)
    cycle: list[int] = field(default_factory=list)
    table_problems: list[str] = field(default_factory=list)
    library_problems: list[str] = field(default_factory=list)
    degraded: bool = False
    budget_exhausted: bool = False
    budget_reason: Optional[str] = None
    cones_total: int = 0
    cone_hits: int = 0
    cone_misses: int = 0
    gates_total: int = 0
    pruned_total: int = 0

    # ------------------------------------------------------------------
    def violations(self) -> list[EndpointTiming]:
        """Endpoints with negative slack, worst first."""
        bad = [e for e in self.endpoints if e.violated]
        bad.sort(key=lambda e: (e.slack, e.name))  # type: ignore[arg-type]
        return bad

    def unconstrained(self) -> list[EndpointTiming]:
        """Analysed endpoints no timed launch reaches."""
        return [e for e in self.endpoints
                if e.analysed and e.arrival is None]

    def skipped(self) -> list[EndpointTiming]:
        """Endpoints the analysis could not evaluate."""
        return [e for e in self.endpoints if not e.analysed]

    def wns(self) -> Optional[float]:
        """Worst negative slack (the minimum slack over all endpoints)."""
        slacks = [e.slack for e in self.endpoints if e.slack is not None]
        return min(slacks) if slacks else None

    def tns(self) -> float:
        """Total negative slack (0.0 when timing closes)."""
        return sum(e.slack for e in self.endpoints
                   if e.slack is not None and e.slack < 0.0)

    @property
    def ok(self) -> bool:
        """Timing closes and nothing blocked the analysis."""
        return (not self.violations() and not self.cycle
                and not self.table_problems and not self.library_problems
                and not self.degraded and not self.budget_exhausted)

    def summary(self) -> str:
        wns = self.wns()
        parts = [f"{self.name}: {len(self.endpoints)} endpoints at period "
                 f"{self.period:g}" + (" (default)" if self.period_is_default
                                       else ""),
                 f"wns {wns:+.2f}" if wns is not None else "wns -",
                 f"{len(self.violations())} violation(s)",
                 f"{self.cone_hits}/{self.cones_total} cones cached",
                 f"{self.pruned_total} constant gates pruned"]
        if self.cycle:
            parts.append(f"BLOCKED by combinational cycle "
                         f"({len(self.cycle) - 1} gates)")
        if self.budget_exhausted:
            parts.append(f"budget exhausted ({self.budget_reason})")
        if self.degraded:
            parts.append(f"{len(self.skipped())} endpoint(s) skipped")
        return ", ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name, "bits": self.bits, "period": self.period,
            "period_is_default": self.period_is_default,
            "chain_allowance": self.chain_allowance,
            "ok": self.ok, "wns": self.wns(), "tns": self.tns(),
            "violations": len(self.violations()),
            "unconstrained": len(self.unconstrained()),
            "endpoints": [e.to_dict() for e in self.endpoints],
            "paths": [p.to_dict() for p in self.paths],
            "cycle": list(self.cycle),
            "table_problems": list(self.table_problems),
            "library_problems": list(self.library_problems),
            "degraded": self.degraded,
            "budget_exhausted": self.budget_exhausted,
            "budget_reason": self.budget_reason,
            "cones_total": self.cones_total,
            "cone_hits": self.cone_hits,
            "cone_misses": self.cone_misses,
            "gates_total": self.gates_total,
            "pruned_total": self.pruned_total,
        }
