"""Static timing analysis over gate netlists.

See DESIGN.md §15.  Public surface:

* :func:`analyze_timing` / :class:`TimingReport` — the engine;
* :class:`DelayTable` / :func:`default_period` — the delay model and
  its derivation from the module library;
* :class:`ConeCache` — persistent cone memoisation for incremental
  re-analysis;
* :func:`merged_module_fits` — the Algorithm 1 cost-model hook behind
  ``SynthesisParams(check_timing=True)``.
"""

from .delays import (DEFAULT_TABLE, DelayTable, chain_allowance,
                     class_depth, default_period, implied_steps,
                     kind_depth, library_disagreements, mux_depth,
                     step_overhead)
from .engine import ConeCache, analyze_timing
from .costcheck import merged_module_fits, module_depth
from .report import EndpointTiming, PathStep, TimingPath, TimingReport

__all__ = [
    "DEFAULT_TABLE", "DelayTable", "chain_allowance", "class_depth",
    "default_period", "implied_steps", "kind_depth",
    "library_disagreements", "mux_depth", "step_overhead",
    "ConeCache", "analyze_timing", "merged_module_fits", "module_depth",
    "EndpointTiming", "PathStep", "TimingPath", "TimingReport",
]
