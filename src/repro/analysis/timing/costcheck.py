"""The cost-model timing hook for Algorithm 1's merger loop.

A module merger makes one physical unit implement every op kind of the
two merged modules; the expander then builds each kind's logic, gates
it by the op select and ORs the results
(:meth:`repro.gates.expand._Expander._expand_unit`).  That structure is
deeper than either original module, and a period that closed timing
before the merger may no longer close it after.  With
``SynthesisParams(check_timing=True)`` the ΔC estimator consults
:func:`merged_module_fits` and rejects candidates whose merged module
would break the clock period — the slack-feedback loop of
Ye et al. (arXiv 2401.12343), here as a static gate per candidate.

:func:`module_depth` measures the merged structure on a scratch netlist
built with the *same* word-level constructions the expander uses, and
is memoised per ``(kinds, bits, table)`` — across a synthesis run the
handful of distinct kind sets is priced once, so the gate costs
microseconds per candidate, not a netlist expansion.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

from ...cost.library import DEFAULT_LIBRARY, ModuleLibrary
from ...dfg.ops import OpKind, unit_class
from ...gates.expand import _op_word
from ...gates.netlist import GateNetlist, SOURCE_TYPES
from ...gates.words import gated_word, input_word, or_words
from .delays import DEFAULT_TABLE, DelayTable, default_period, mux_depth


@lru_cache(maxsize=None)
def module_depth(kinds: frozenset[OpKind], bits: int,
                 table: DelayTable = DEFAULT_TABLE) -> float:
    """Longest path through a module implementing ``kinds``.

    Mirrors the expander: one result word per kind, each gated by its
    op-select enable, joined by a word-level OR — single-kind modules
    skip the gating, exactly like :meth:`_Expander._expand_unit`.
    """
    net = GateNetlist(f"module:{'/'.join(sorted(k.name for k in kinds))}")
    a = input_word(net, "a", bits)
    b = input_word(net, "b", bits)
    ordered = sorted(kinds, key=lambda k: k.name)
    if len(ordered) == 1:
        out = _op_word(net, ordered[0], a, b)
    else:
        results = []
        for kind in ordered:
            enable = net.add_input(f"op_{kind.name}")
            results.append(gated_word(net, enable,
                                      _op_word(net, kind, a, b)))
        out = or_words(net, results)
    depth = [0.0] * len(net.gates)
    for gate in net.gates:
        if gate.gtype in SOURCE_TYPES:
            continue
        depth[gate.gid] = (max(depth[f] for f in gate.fanins)
                           + table.gate_delay(gate.gtype, len(gate.fanins)))
    return max((depth[g] for g in out), default=0.0)


def _interconnect(sources: int, table: DelayTable) -> float:
    """Register-to-register overhead around the module: clk→Q, the
    operand and result one-hot muxes sized for ``sources`` inputs, the
    load 2:1 mux and the setup margin."""
    load_mux = table.and_ + table.or_
    return (table.clk_q + 2 * mux_depth(sources, table) + load_mux
            + table.setup)


def merged_module_fits(design, module: str, bits: int, *,
                       table: DelayTable = DEFAULT_TABLE,
                       library: ModuleLibrary = DEFAULT_LIBRARY,
                       period: Optional[float] = None) -> bool:
    """Does ``module``'s critical path close timing at ``period``?

    The budget is ``period × delay_steps`` of the slowest unit class
    the module's kinds span; ``period=None`` uses the library-derived
    default, at which every mergeable structure fits by construction —
    the hook then only bites when a caller supplies a real (tighter)
    clock.
    """
    ops = design.binding.ops_on(module)
    if not ops:
        return True
    kinds = frozenset(design.dfg.operation(op).kind for op in ops)
    if period is None:
        period = default_period(bits, table, library)
    steps = max(library.unit_delay(unit_class(k)) for k in kinds)
    depth = (module_depth(kinds, bits, table)
             + _interconnect(max(1, len(ops)), table))
    return depth <= period * steps + 1e-9
