"""Deterministic static timing analysis over a gate netlist.

The engine levelizes every combinational cone between launch points
(primary inputs, constants, DFF Q outputs) and capture points (DFF D
inputs, primary outputs), propagates arrival times forward with the
:class:`~repro.analysis.timing.delays.DelayTable`, derives required
times and slack from the clock period, and extracts the K worst paths
with named endpoints.

**False-path pruning.**  Before arrival propagation, each cone is
evaluated in ternary logic (the shared evaluator of
:mod:`repro.gates.ternary` — the gate-level counterpart of the PR-8
known-bits facts): inputs are X, constants are 0/1, and DFFs launch X
unless ``sequential_constants`` seeds them with the reset-reachable
constants of :func:`repro.atpg.prune.constant_lines`.  A gate whose
ternary value is decided carries no transition for *any* input/state
valuation, so it contributes no arrival and every path through it is
false — the constant-padded words and never-hot control cones the
expander emits drop out of the critical-path search instead of
dominating it.

**Incrementality.**  Cones are memoised in a :class:`ConeCache` keyed
on *cone content*: every gate carries a structural node id
(hash-consed at construction by :class:`~repro.gates.netlist
.GateNetlist`; type + sorted child ids, DFFs keyed on their seed only,
cutting the feedback), so an endpoint's cone key is invariant under
gate-id renumbering.  Two cache tiers hang off those ids: endpoint
summaries (a hit skips the cone entirely) and per-node facts (value,
arrival, level), at which the cone walk stops descending.
Re-expanding a design after one merger renumbers every gate, but
untouched cones intern to the same ids and are served whole, and even
the *changed* cones re-evaluate only the gates the merger actually
created — their unchanged sub-logic is a known frontier
(``repro-hlts bench-timing`` measures the effect).

**Degradation.**  The engine is budget-aware (cooperative
:meth:`~repro.runtime.budget.Budget.charge` in the id fallback, cone
evaluation and path enumeration) and carries a per-endpoint exception
barrier around the registered chaos seam ``timing.cone_eval``: a
starved or injected-faulty endpoint is tagged and skipped, and the
report stays well-formed with ``budget_exhausted``/``degraded``
provenance.
"""

from __future__ import annotations

from typing import Optional

from ...cost.library import DEFAULT_LIBRARY, ModuleLibrary
from ...gates.netlist import (STRUCT_DFF_KEYS, GateNetlist, GateType,
                              SOURCE_TYPES, combinational_cycle,
                              intern_structural, structural_key)
from ...gates.ternary import Ternary, eval_gate
from ...runtime.budget import Budget
from ...runtime.chaos import ChaosCrash, chaos_point
from .delays import (DEFAULT_TABLE, DelayTable, chain_allowance,
                     default_period, library_disagreements)
from .report import EndpointTiming, PathStep, TimingPath, TimingReport

#: A cone summary: (arrival, cone_size, pruned, levels).  ``cone_size``
#: counts the distinct gate structures *evaluated* for the endpoint —
#: under incremental evaluation that is the changed suffix, not the
#: full fanin cone.
Summary = tuple[Optional[float], int, int, int]

#: Per-node timing facts: (ternary value, arrival, logic level).
Fact = tuple[Ternary, Optional[float], int]


class _Exhausted(Exception):
    """Internal: the budget drained mid-cone (never escapes the engine)."""


class ConeCache:
    """Persistent per-cone memoisation, shared across analyses.

    Both tiers are keyed on the structural node ids of
    :mod:`repro.gates.netlist` — exact hash-consing, so a cache hit is
    equality of cone content by construction, never a collision
    gamble.  ``summaries`` maps an endpoint driver's node id to its
    cone summary; ``facts`` memoises every evaluated *interior* node,
    so a missed cone is re-evaluated only down to the already-known
    frontier — after one merger, that is the handful of gates the
    merger actually created.  Bound to one delay table and seed mode:
    binding a different configuration clears the cache instead of
    serving stale arrivals.
    """

    def __init__(self) -> None:
        self.summaries: dict[int, Summary] = {}
        self.facts: dict[int, Fact] = {}
        self.hits = 0
        self.misses = 0
        self._config: Optional[tuple] = None

    def bind(self, table: DelayTable, sequential_constants: bool) -> None:
        config = (table, sequential_constants)
        if self._config is not None and self._config != config:
            self.summaries.clear()
            self.facts.clear()
        self._config = config

    def clone(self) -> "ConeCache":
        """An independent copy (bench repeats re-warm from one state)."""
        other = ConeCache()
        other.summaries = dict(self.summaries)
        other.facts = dict(self.facts)
        other._config = self._config
        return other

    def __len__(self) -> int:
        return len(self.summaries)


# ----------------------------------------------------------------------
# Structural id resolution
# ----------------------------------------------------------------------
def _intern_pass(netlist: GateNetlist, seeds: dict[int, Ternary],
                 budget: Optional[Budget]
                 ) -> Optional[tuple[list[int], list]]:
    """(node id per gate, DFF gates) recomputed from scratch.

    The fallback for netlists whose construction-time ids are
    unusable: sequential-constant seeding changes DFF keys, and
    hand-assembled gate lists desync theirs.  Returns None when the
    budget drains (the pass is all-or-nothing — a partial map is
    unusable).  Raises IndexError when gates are not in topological
    (gid) order; the caller treats that as "check for cycles".
    """
    gates = netlist.gates
    if budget is not None and not budget.charge(len(gates)):
        return None
    nids: list[int] = []
    dffs: list = []
    for gate in gates:
        gtype = gate.gtype
        if gtype is GateType.DFF:
            dffs.append(gate)
            key: object = STRUCT_DFF_KEYS[seeds.get(gate.gid)]
        elif gtype in SOURCE_TYPES:
            key = structural_key(gtype)
        else:
            key = structural_key(gtype,
                                 tuple(nids[f] for f in gate.fanins))
        nids.append(intern_structural(key))
    return nids, dffs


def _intern_unordered(netlist: GateNetlist, seeds: dict[int, Ternary],
                      budget: Optional[Budget]
                      ) -> Optional[tuple[list[int], list]]:
    """Rare fallback for hand-assembled netlists whose combinational
    gates are not in gid order (but acyclic — the caller has already
    ruled cycles out): same keys, computed in an explicit topological
    order.  Out-of-range fanins (other lint layers flag those) are
    dropped from keys rather than crashing the analysis.  Clarity over
    speed here."""
    gates = netlist.gates
    n = len(gates)
    if budget is not None and not budget.charge(n):
        return None
    order: list[int] = []
    marked = [False] * n
    for root in range(n):
        if marked[root]:
            continue
        stack = [(root, False)]
        while stack:
            gid, expanded = stack.pop()
            if expanded:
                order.append(gid)
                continue
            if marked[gid]:
                continue
            marked[gid] = True
            stack.append((gid, True))
            gate = gates[gid]
            if gate.gtype is not GateType.DFF:
                stack.extend((f, False) for f in gate.fanins
                             if 0 <= f < n and not marked[f])
    nids = [0] * n
    for gid in order:
        gate = gates[gid]
        gtype = gate.gtype
        if gtype is GateType.DFF:
            key: object = STRUCT_DFF_KEYS[seeds.get(gid)]
        elif gtype in SOURCE_TYPES:
            key = structural_key(gtype)
        else:
            key = structural_key(gtype, tuple(nids[f] for f in gate.fanins
                                              if 0 <= f < n))
        nids[gid] = intern_structural(key)
    return nids, [g for g in gates if g.gtype is GateType.DFF]


# ----------------------------------------------------------------------
# Cone evaluation
# ----------------------------------------------------------------------
def _launch(gate, seeds: dict[int, Ternary],
            table: DelayTable) -> tuple[Ternary, Optional[float]]:
    """(ternary value, arrival) of one launch point."""
    if gate.gtype is GateType.INPUT:
        return None, 0.0
    if gate.gtype is GateType.CONST0:
        return 0, None
    if gate.gtype is GateType.CONST1:
        return 1, None
    # DFF Q: a seeded reset-constant register launches nothing.
    seed = seeds.get(gate.gid)
    return (seed, None) if seed is not None else (None, table.clk_q)


def _evaluate_cone(netlist: GateNetlist, driver: int, nids: list[int],
                   facts: dict[int, Fact], seeds: dict[int, Ternary],
                   table: DelayTable,
                   budget: Optional[Budget]) -> Summary:
    """Levelize one cone: ternary values, arrivals, levels.

    Iterative post-order DFS from the endpoint driver, with ``facts``
    as both the memo and the visited set: descent stops at any gate
    whose structural node id is already known, so incremental
    evaluation walks only the changed suffix of the cone — and
    isomorphic per-bit structures cost once even in a cold run,
    because the first bit's facts are every other bit's frontier.
    """
    gates = netlist.gates
    facts_get = facts.get
    evaluated = 0
    pruned = 0
    stack: list[int] = [driver]
    # A cone over V gates pushes at most one entry per fanin edge; a
    # stack beyond that bound means the netlist was mutated into a
    # cycle behind the GateNetlist API (the per-endpoint barrier turns
    # this into a skipped endpoint instead of a hang).
    guard = 8 * len(gates) + 64
    while stack:
        if len(stack) > guard:
            raise RuntimeError(
                "cone traversal exceeded its bound — netlist mutated "
                "outside the GateNetlist API?")
        gid = stack[-1]
        nid = nids[gid]
        if facts_get(nid) is not None:
            stack.pop()
            continue
        if budget is not None and not budget.charge():
            raise _Exhausted
        gate = gates[gid]
        gtype = gate.gtype
        if gtype in SOURCE_TYPES or gtype is GateType.DFF:
            val, arr = _launch(gate, seeds, table)
            facts[nid] = (val, arr, 0)
            stack.pop()
            continue
        ready = True
        for fin in gate.fanins:
            if facts_get(nids[fin]) is None:
                stack.append(fin)
                ready = False
        if not ready:
            continue
        stack.pop()
        fanin_facts = [facts[nids[f]] for f in gate.fanins]
        out = eval_gate(gtype, [ff[0] for ff in fanin_facts])
        evaluated += 1
        if out is not None:
            # Proved constant: every path through this gate is false.
            facts[nid] = (out, None, 0)
            pruned += 1
            continue
        # An X output needs an X input, and every X line has an arrival.
        best = max(ff[1] for ff in fanin_facts if ff[1] is not None)
        arr = best + table.gate_delay(gtype, len(gate.fanins))
        lvl = 1 + max(ff[2] for ff in fanin_facts if ff[1] is not None)
        facts[nid] = (None, arr, lvl)
    driver_fact = facts[nids[driver]]
    return driver_fact[1], evaluated, pruned, driver_fact[2]


def _worst_path(netlist: GateNetlist, endpoint: EndpointTiming,
                driver: int, nids: list[int],
                facts: dict[int, Fact]) -> Optional[TimingPath]:
    """Backtrack the arrival-defining chain of one endpoint.

    Pure dict walk over the memoised per-node facts — O(path length),
    no re-levelization: from the endpoint driver, follow the latest
    non-pruned fanin down to its launch point.  Ties break toward the
    lowest gate id, keeping the reported path deterministic.
    """
    fact = facts.get(nids[driver])
    if fact is None or fact[1] is None:
        return None
    gates = netlist.gates
    chain = [driver]
    current = driver
    while facts[nids[current]][2] > 0:
        best = None
        best_key: Optional[tuple[float, int]] = None
        for fin in gates[current].fanins:
            fin_fact = facts.get(nids[fin])
            if fin_fact is None or fin_fact[1] is None:
                continue
            key = (fin_fact[1], -fin)
            if best_key is None or key > best_key:
                best_key = key
                best = fin
        if best is None:  # pragma: no cover - facts always cover the cone
            return None
        current = best
        chain.append(current)
    chain.reverse()
    steps = tuple(
        PathStep(gid=g, gtype=gates[g].gtype.value, name=gates[g].name,
                 arrival=facts[nids[g]][1])  # type: ignore[arg-type]
        for g in chain)
    return TimingPath(endpoint=endpoint.name,
                      arrival=fact[1], slack=endpoint.slack, steps=steps)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def analyze_timing(netlist: GateNetlist, *, bits: int = 8,
                   table: Optional[DelayTable] = None,
                   period: Optional[float] = None,
                   library: ModuleLibrary = DEFAULT_LIBRARY,
                   cache: Optional[ConeCache] = None,
                   budget: Optional[Budget] = None,
                   k_paths: int = 4,
                   sequential_constants: bool = False) -> TimingReport:
    """Run static timing analysis on ``netlist``.

    Args:
        netlist: the gate-level netlist to time.
        bits: data-path width (prices the default period derivation).
        table: per-gate-type delays; defaults to :data:`DEFAULT_TABLE`.
        period: clock period in gate units; None derives the library's
            implied period via :func:`default_period`.
        library: the module library validated against (``TIM005``).
        cache: persistent :class:`ConeCache` for incremental re-analysis
            across netlists; None uses a throwaway cache.
        budget: cooperative budget; on exhaustion remaining endpoints
            are tagged and the partial report stays well-formed.
        k_paths: how many worst paths to extract with named gates.
        sequential_constants: seed DFF launches with the reset-reachable
            constants of :func:`repro.atpg.prune.constant_lines`
            (stronger false-path pruning, one extra fixpoint pass).

    Returns:
        A :class:`TimingReport`; never raises on degenerate input — a
        combinational cycle or broken delay table blocks propagation
        and is reported instead.
    """
    table = table if table is not None else DEFAULT_TABLE
    problems = table.validate()
    allowance = (chain_allowance(bits, table, library)
                 if not problems else 0.0)
    is_default = period is None
    if period is None:
        period = (default_period(bits, table, library)
                  if not problems else 0.0)
    report = TimingReport(name=netlist.name, bits=bits, period=period,
                          period_is_default=is_default,
                          chain_allowance=allowance,
                          gates_total=len(netlist.gates),
                          table_problems=problems)
    if problems:
        return report
    report.library_problems = library_disagreements(bits, period, table,
                                                    library)

    seeds: dict[int, Ternary] = {}
    if sequential_constants:
        from ...atpg.prune import constant_lines
        constants = constant_lines(netlist)
        seeds = {g.gid: constants[g.gid] for g in netlist.dffs()
                 if g.gid in constants}
    cache = cache if cache is not None else ConeCache()
    cache.bind(table, sequential_constants)

    # Structural ids: trust the construction-time ones when they are
    # in sync and unseeded; otherwise recompute.  The fallback doubles
    # as the topological-order check — a fanin that does not precede
    # its gate (impossible via GateNetlist.add) raises IndexError, and
    # only then is the explicit cycle search run.
    gates = netlist.gates
    nids: Optional[list[int]]
    if not seeds and len(netlist.nids) == len(gates):
        nids = netlist.nids
        dff_gates = [gates[g] for g in netlist.dff_gids]
    else:
        try:
            interned = _intern_pass(netlist, seeds, budget)
        except IndexError:
            report.cycle = combinational_cycle(netlist)
            if report.cycle:
                return report  # levelization impossible; TIM003 reports
            interned = _intern_unordered(netlist, seeds, budget)
        if interned is not None:
            nids, dff_gates = interned
        else:
            nids, dff_gates = None, netlist.dffs()

    # Endpoint order is deterministic: outputs by name, then DFFs by id.
    endpoints: list[tuple[EndpointTiming, int]] = []
    for name, gid in sorted(netlist.outputs.items()):
        endpoints.append((EndpointTiming(name=name, kind="output", gid=gid),
                          gid))
    for gate in dff_gates:
        name = gate.name or f"dff{gate.gid}"
        if not gate.fanins:
            ep = EndpointTiming(name=name, kind="dff", gid=gate.gid,
                                analysed=False,
                                skip_reason="floating DFF (no D input)")
            report.degraded = True
            report.endpoints.append(ep)
            continue
        endpoints.append((EndpointTiming(name=name, kind="dff",
                                         gid=gate.gid), gate.fanins[0]))

    summaries = cache.summaries
    facts = cache.facts
    dff_required = period - table.setup
    for ep, driver in endpoints:
        report.endpoints.append(ep)
        report.cones_total += 1
        if nids is None or (budget is not None and budget.exhausted()):
            ep.analysed = False
            ep.skip_reason = "budget_exhausted"
            continue
        try:
            chaos_point("timing.cone_eval", (ep.name, driver))
            key = nids[driver]
            summary = summaries.get(key)
            if summary is not None:
                ep.cached = True
                cache.hits += 1
                report.cone_hits += 1
            else:
                cache.misses += 1
                report.cone_misses += 1
                summary = _evaluate_cone(netlist, driver, nids, facts,
                                         seeds, table, budget)
                summaries[key] = summary
        except ChaosCrash:
            raise  # simulated process death must not be absorbed
        except _Exhausted:
            ep.analysed = False
            ep.skip_reason = "budget_exhausted"
            continue
        except Exception as exc:  # noqa: BLE001 - per-endpoint barrier
            ep.analysed = False
            ep.skip_reason = f"{type(exc).__name__}: {exc}"
            report.degraded = True
            continue
        ep.arrival, ep.cone_size, ep.pruned, ep.levels = summary
        report.pruned_total += ep.pruned
        ep.required = dff_required if ep.kind == "dff" else period
        if ep.arrival is not None:
            ep.slack = ep.required - ep.arrival

    # K worst paths, named gate by gate, worst slack first.
    if k_paths > 0 and nids is not None:
        timed = [(ep, driver) for ep, driver in endpoints
                 if ep.analysed and ep.arrival is not None]
        timed.sort(key=lambda item: (item[0].slack, item[0].name))
        for ep, driver in timed[:k_paths]:
            path = _worst_path(netlist, ep, driver, nids, facts)
            if path is not None:
                report.paths.append(path)

    if budget is not None and budget.exhausted():
        report.budget_exhausted = True
        report.budget_reason = budget.reason
    return report
