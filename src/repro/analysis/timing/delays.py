"""The gate delay table and its derivation from the module library.

The cost library (:mod:`repro.cost.library`) models every unit's delay
as a whole number of control steps (``ModuleParams.delay_steps``); the
gate netlists the expander emits carry no timing at all.  This module
closes the gap with a normalised per-gate-type delay table whose unit
is one "gate delay" (a 2-input AND = 1.0), and *derives* the clock
period the library's whole-step model implies: for every unit class,
the measured longest combinational path through the class's gate
structure (:func:`class_depth`, built with the exact word-level
constructions :mod:`repro.gates.expand` uses) plus the per-step
interconnect overhead (register clk→Q, operand/result one-hot muxes,
op-select gating, load mux, setup) must fit in
``delay_steps × period``.  :func:`default_period` is the smallest
period (plus a small headroom) that satisfies every class at a given
bit width — the period at which the library and the netlist *agree*.

:func:`library_disagreements` runs the same computation in reverse:
given a user-chosen period, it reports every unit class whose measured
depth implies more control steps than the library's ``delay_steps``
claims (lint rule ``TIM005``).

Depth measurements are memoised per ``(kind, bits, table)`` — the
table is a frozen, hashable dataclass — so repeated analyses price the
scratch netlists once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from ...cost.library import DEFAULT_LIBRARY, ModuleLibrary
from ...dfg.ops import OpKind, UnitClass, unit_class
from ...gates.expand import _op_word
from ...gates.netlist import GateNetlist, GateType, SOURCE_TYPES
from ...gates.words import input_word

#: Headroom multiplier on the derived minimum period, so float noise in
#: a measured depth never turns the derived default into a violation.
PERIOD_HEADROOM = 1.05

#: Operand/result one-hot muxes are priced for this many sources per
#: step (AND plus a chain of ``allowance - 1`` OR gates).  Merged
#: designs on the paper's benchmarks stay well under it.
MUX_FANIN_ALLOWANCE = 12

#: Result gating on a merged multi-kind module: the op-select AND plus
#: an OR join across this many kinds.
KIND_ALLOWANCE = 4


@dataclass(frozen=True)
class DelayTable:
    """Per-gate-type delays in normalised gate units (AND2 = 1.0).

    ``fanin_step`` is added once per input beyond the second;
    ``clk_q``/``setup`` bound the sequential ends of a path (launch
    delay of a DFF Q, latching margin at a DFF D).
    """

    buf: float = 0.30
    not_: float = 0.40
    and_: float = 1.00
    or_: float = 1.10
    nand: float = 0.70
    nor: float = 0.90
    xor: float = 1.60
    xnor: float = 1.70
    fanin_step: float = 0.15
    clk_q: float = 0.80
    setup: float = 0.50

    def base_delay(self, gtype: GateType) -> float:
        """The 2-input (or unary) delay of one combinational type."""
        if gtype is GateType.BUF:
            return self.buf
        if gtype is GateType.NOT:
            return self.not_
        if gtype is GateType.AND:
            return self.and_
        if gtype is GateType.OR:
            return self.or_
        if gtype is GateType.NAND:
            return self.nand
        if gtype is GateType.NOR:
            return self.nor
        if gtype is GateType.XOR:
            return self.xor
        if gtype is GateType.XNOR:
            return self.xnor
        raise ValueError(f"no delay for non-combinational {gtype}")

    def gate_delay(self, gtype: GateType, fanin_count: int = 2) -> float:
        """Propagation delay of one gate with ``fanin_count`` inputs."""
        return (self.base_delay(gtype)
                + self.fanin_step * max(0, fanin_count - 2))

    def validate(self) -> list[str]:
        """Problems that make longest-path analysis unsound.

        A zero or negative combinational delay admits zero-delay loops
        (a cycle of such gates accumulates no delay, so "longest path"
        stops bounding settling time); negative sequential margins make
        slack meaningless.
        """
        problems = []
        for gtype in GateType:
            if gtype in SOURCE_TYPES or gtype is GateType.DFF:
                continue
            if self.base_delay(gtype) <= 0.0:
                problems.append(
                    f"{gtype.value} delay {self.base_delay(gtype)} is not "
                    f"positive: zero-delay loops would be unbounded")
        if self.fanin_step < 0.0:
            problems.append(f"fanin_step {self.fanin_step} is negative")
        if self.clk_q < 0.0:
            problems.append(f"clk_q {self.clk_q} is negative")
        if self.setup < 0.0:
            problems.append(f"setup {self.setup} is negative")
        return problems


#: The table every analysis uses unless a caller overrides it.
DEFAULT_TABLE = DelayTable()

#: Operand shapes per kind: unary kinds read one word.
_UNARY_KINDS = frozenset({OpKind.NOT, OpKind.MOVE})


@lru_cache(maxsize=None)
def kind_depth(kind: OpKind, bits: int,
               table: DelayTable = DEFAULT_TABLE) -> float:
    """Longest combinational path, in gate units, through one op kind.

    Measured on a scratch netlist built with the *same* word-level
    constructions the RTL expander instantiates
    (:func:`repro.gates.expand._op_word`), so the number is the depth
    of the real hardware, not a model of it.
    """
    net = GateNetlist(f"depth:{kind.name}:{bits}")
    a = input_word(net, "a", bits)
    b = input_word(net, "b", bits)
    out = _op_word(net, kind, a, b)
    depth = [0.0] * len(net.gates)
    for gate in net.gates:
        if gate.gtype in SOURCE_TYPES:
            continue
        depth[gate.gid] = (max(depth[f] for f in gate.fanins)
                           + table.gate_delay(gate.gtype, len(gate.fanins)))
    return max((depth[g] for g in out), default=0.0)


@lru_cache(maxsize=None)
def class_depth(cls: UnitClass, bits: int,
                table: DelayTable = DEFAULT_TABLE) -> float:
    """Longest path through any op kind a unit of ``cls`` implements."""
    kinds = [k for k in OpKind if unit_class(k) is cls]
    return max(kind_depth(k, bits, table) for k in kinds)


def mux_depth(sources: int, table: DelayTable = DEFAULT_TABLE) -> float:
    """Data-path depth of a ``sources``-input one-hot mux.

    One select AND per source, then an OR chain joining the terms
    (:func:`repro.gates.words.onehot_mux_word` builds the chain
    linearly).  A single source is a plain wire.
    """
    if sources <= 1:
        return 0.0
    return table.and_ + (sources - 1) * table.or_


def step_overhead(table: DelayTable = DEFAULT_TABLE,
                  mux_fanin: int = MUX_FANIN_ALLOWANCE,
                  kinds: int = KIND_ALLOWANCE) -> float:
    """Non-unit delay of one register-to-register control step.

    clk→Q launch, the operand one-hot mux, op-select gating plus the
    result OR join of a merged ``kinds``-kind module, the register's
    source one-hot mux, the load 2:1 mux (AND + OR on the data path)
    and the setup margin.
    """
    gating = (table.and_ + (kinds - 1) * table.or_) if kinds > 1 else 0.0
    load_mux = table.and_ + table.or_
    return (table.clk_q + mux_depth(mux_fanin, table) + gating
            + mux_depth(mux_fanin, table) + load_mux + table.setup)


def chain_allowance(bits: int, table: DelayTable = DEFAULT_TABLE,
                    library: ModuleLibrary = DEFAULT_LIBRARY) -> float:
    """Gate units one control step must accommodate at ``bits``.

    The slowest single-step unit class (measured depth divided by the
    library's ``delay_steps`` for multi-cycle units) plus the step
    overhead.  Lint rule ``TIM006`` flags endpoints beyond this even
    when a generous user-chosen period hides the chaining.
    """
    worst = max(class_depth(cls, bits, table) / library.unit_delay(cls)
                for cls in library.units)
    return worst + step_overhead(table)


def default_period(bits: int, table: DelayTable = DEFAULT_TABLE,
                   library: ModuleLibrary = DEFAULT_LIBRARY) -> float:
    """The clock period the library's step model implies at ``bits``.

    The smallest period at which every unit class closes timing in its
    declared ``delay_steps``, with :data:`PERIOD_HEADROOM` margin.
    """
    return round(chain_allowance(bits, table, library) * PERIOD_HEADROOM, 3)


def implied_steps(cls: UnitClass, bits: int, period: float,
                  table: DelayTable = DEFAULT_TABLE) -> int:
    """Control steps one ``cls`` execution needs at ``period``."""
    if period <= 0.0:
        return 0
    total = class_depth(cls, bits, table) + step_overhead(table)
    return max(1, math.ceil(total / period - 1e-9))


def library_disagreements(bits: int, period: float,
                          table: DelayTable = DEFAULT_TABLE,
                          library: ModuleLibrary = DEFAULT_LIBRARY
                          ) -> list[str]:
    """Unit classes whose measured depth contradicts the library.

    At the configured period a class needing more steps than the
    library's ``delay_steps`` would be scheduled too optimistically —
    every design priced with that library is suspect (``TIM005``).
    """
    if period <= 0.0:
        return [f"period {period} is not positive"]
    found = []
    for cls in library.units:
        implied = implied_steps(cls, bits, period, table)
        declared = library.unit_delay(cls)
        if implied > declared:
            found.append(
                f"{cls.value}: measured depth implies {implied} step(s) at "
                f"period {period:g} but the library declares {declared}")
    return found
