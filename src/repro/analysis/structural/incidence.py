"""Incidence-matrix view of a safe timed Petri net.

The structural engine works on the classic linear-algebra picture of a
net: for places :math:`p` and transitions :math:`t`,

* ``Pre[p][t]``  — tokens ``t`` consumes from ``p``,
* ``Post[p][t]`` — tokens ``t`` produces into ``p``,
* ``C = Post - Pre`` — the incidence matrix.

Rows are indexed by place, columns by transition, both in sorted-id
order so the view (and everything derived from it) is deterministic.
Entries are small integers stored sparsely (dicts keyed by index);
arc multiplicity comes from repeating a place in a transition's
``inputs``/``outputs`` tuple, so ordinary control nets have all-ones
matrices.

:meth:`IncidenceMatrix.closed` adds one *reset* transition per final
place — consume the final place, reproduce the initial marking.  This
short-circuits the terminating control part into a cyclic net, the
standard workflow-net trick: a reachable marking of the original net is
*stuck* (non-final, nothing enabled) exactly when it is *dead* in the
closed net, which is what lets siphon/trap reasoning certify
"terminates or keeps running" without treating the intended final
marking as a deadlock.
"""

from __future__ import annotations

from ...petri.net import PetriNet

#: Prefix of the synthetic reset transitions added by :meth:`closed`.
RESET_PREFIX = "__reset__"


class IncidenceMatrix:
    """Sparse Pre/Post/C matrices of one Petri net.

    Attributes:
        places: place ids, sorted (row order).
        transitions: transition ids, sorted (column order).
        pre: per-column sparse maps ``{row: weight}`` of consumed tokens.
        post: per-column sparse maps ``{row: weight}`` of produced tokens.
        initial: sparse initial marking ``{row: tokens}``.
    """

    def __init__(self, places: tuple[str, ...],
                 transitions: tuple[str, ...],
                 pre: tuple[dict[int, int], ...],
                 post: tuple[dict[int, int], ...],
                 initial: dict[int, int]) -> None:
        self.places = places
        self.transitions = transitions
        self.pre = pre
        self.post = post
        self.initial = initial
        self.place_index = {p: i for i, p in enumerate(places)}
        self.transition_index = {t: j for j, t in enumerate(transitions)}

    # ------------------------------------------------------------------
    @classmethod
    def of(cls, net: PetriNet) -> "IncidenceMatrix":
        """The incidence view of ``net`` (deterministic sorted order)."""
        places = tuple(sorted(net.places))
        transitions = tuple(sorted(net.transitions))
        index = {p: i for i, p in enumerate(places)}
        pre: list[dict[int, int]] = []
        post: list[dict[int, int]] = []
        for tid in transitions:
            transition = net.transitions[tid]
            consumed: dict[int, int] = {}
            for pid in transition.inputs:
                row = index[pid]
                consumed[row] = consumed.get(row, 0) + 1
            produced: dict[int, int] = {}
            for pid in transition.outputs:
                row = index[pid]
                produced[row] = produced.get(row, 0) + 1
            pre.append(consumed)
            post.append(produced)
        initial = {index[p]: 1 for p in net.initial_marking}
        return cls(places, transitions, tuple(pre), tuple(post), initial)

    def closed(self, final_places: frozenset[str]) -> "IncidenceMatrix":
        """The short-circuited view: one reset transition per final place.

        Each reset consumes its final place and reproduces the initial
        marking, turning termination into repetition.  With no final
        places the view is returned unchanged.
        """
        finals = sorted(final_places & set(self.places))
        if not finals:
            return self
        transitions = list(self.transitions)
        pre = list(self.pre)
        post = list(self.post)
        for pid in finals:
            transitions.append(f"{RESET_PREFIX}{pid}")
            pre.append({self.place_index[pid]: 1})
            post.append(dict(self.initial))
        return IncidenceMatrix(self.places, tuple(transitions),
                               tuple(pre), tuple(post), dict(self.initial))

    # ------------------------------------------------------------------
    def column(self, j: int) -> dict[int, int]:
        """Sparse column ``j`` of ``C = Post - Pre`` (empty entries = 0)."""
        entries = dict(self.post[j])
        for row, weight in self.pre[j].items():
            value = entries.get(row, 0) - weight
            if value:
                entries[row] = value
            else:
                entries.pop(row, None)
        return entries

    def columns(self) -> list[dict[int, int]]:
        """All columns of ``C``, in transition order."""
        return [self.column(j) for j in range(len(self.transitions))]

    def rows(self) -> list[dict[int, int]]:
        """All rows of ``C`` (sparse ``{column: entry}``), in place order."""
        out: list[dict[int, int]] = [{} for _ in self.places]
        for j in range(len(self.transitions)):
            for row, value in self.column(j).items():
                out[row][j] = value
        return out

    def entry(self, place: str, transition: str) -> int:
        """One entry ``C[place][transition]``."""
        j = self.transition_index[transition]
        row = self.place_index[place]
        return self.post[j].get(row, 0) - self.pre[j].get(row, 0)

    # ------------------------------------------------------------------
    def pre_set(self, j: int) -> frozenset[int]:
        """Input places of transition ``j`` (as row indices)."""
        return frozenset(self.pre[j])

    def post_set(self, j: int) -> frozenset[int]:
        """Output places of transition ``j`` (as row indices)."""
        return frozenset(self.post[j])

    def is_ordinary(self) -> bool:
        """True when every arc has weight 1 (no repeated input/output)."""
        return all(w == 1
                   for column in (*self.pre, *self.post)
                   for w in column.values())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"IncidenceMatrix({len(self.places)} places x "
                f"{len(self.transitions)} transitions)")
