"""Minimal P/T-invariant bases by fraction-free Farkas elimination.

A *P-semiflow* is a nonnegative integer row vector :math:`y` with
:math:`y \\cdot C = 0`: the :math:`y`-weighted token count is the same
in every reachable marking, so :math:`y \\cdot M = y \\cdot M_0` is a
linear safety certificate obtained without visiting a single marking.
A *T-semiflow* is the column-space twin (:math:`C \\cdot x = 0`): a
firing-count vector that reproduces the marking it started from, the
algebraic shadow of the control part's loops.

The classic Farkas/Colom–Silva algorithm computes the (unique, finite)
basis of *minimal-support* semiflows: seed the working rows with
``[C | I]``, then cancel one column of the ``C`` part at a time by
taking every positive/negative row pair combination, normalising by the
gcd and discarding rows whose identity-part support strictly contains
another row's.  All arithmetic is exact integer arithmetic — the
"fraction-free" part — so the resulting certificates can be re-checked
with plain multiplication.

The number of minimal semiflows can be exponential in pathological
nets, so the elimination carries a row cap (and an optional cooperative
:class:`~repro.runtime.budget.Budget`); on overflow it returns whatever
fully-eliminated semiflows it already holds and reports the basis as
incomplete, which downstream verdicts treat as *inconclusive*, never as
evidence.
"""

from __future__ import annotations

from math import gcd
from typing import Optional

from ...runtime.budget import Budget
from .incidence import IncidenceMatrix

#: Default ceiling on simultaneously-live elimination rows.
DEFAULT_MAX_ROWS = 4096

#: One working row: sparse C-part (column -> coeff) and sparse
#: identity part (original row index -> nonnegative coeff).
_Row = tuple[dict[int, int], dict[int, int]]


def _normalise(combo: dict[int, int], support: dict[int, int]) -> None:
    """Divide both parts of a row by the gcd of their entries, in place."""
    divisor = 0
    for value in combo.values():
        divisor = gcd(divisor, value)
    for value in support.values():
        divisor = gcd(divisor, value)
    if divisor > 1:
        for key in combo:
            combo[key] //= divisor
        for key in support:
            support[key] //= divisor


def _combine(a: _Row, b: _Row, column: int) -> _Row:
    """The positive combination of ``a`` and ``b`` cancelling ``column``."""
    ca, ya = a
    cb, yb = b
    wa = abs(cb[column])
    wb = abs(ca[column])
    combo: dict[int, int] = {}
    for key, value in ca.items():
        combo[key] = wa * value
    for key, value in cb.items():
        entry = combo.get(key, 0) + wb * value
        if entry:
            combo[key] = entry
        else:
            combo.pop(key, None)
    support: dict[int, int] = {}
    for key, value in ya.items():
        support[key] = wa * value
    for key, value in yb.items():
        support[key] = support.get(key, 0) + wb * value
    _normalise(combo, support)
    return combo, support


def _minimal(rows: list[_Row]) -> list[_Row]:
    """Drop rows whose support *strictly* contains another row's support.

    Exact duplicates (same C-part and same identity part after gcd
    normalisation) are kept once.  Rows that merely share a support are
    both kept: mid-elimination they can still be different vectors and
    dropping one would lose minimal semiflows.
    """
    keyed = [(frozenset(row[1]), row) for row in rows]
    keyed.sort(key=lambda item: (len(item[0]), sorted(item[0])))
    kept: list[tuple[frozenset[int], _Row]] = []
    for support, row in keyed:
        dominated = any(
            small < support or (small == support and other == row)
            for small, other in kept)
        if not dominated:
            kept.append((support, row))
    return [row for _, row in kept]


def semiflows(columns: list[dict[int, int]], rows: int,
              max_rows: int = DEFAULT_MAX_ROWS,
              budget: Optional[Budget] = None
              ) -> tuple[list[dict[int, int]], bool]:
    """Minimal-support nonnegative solutions ``y`` of ``y . C = 0``.

    Args:
        columns: sparse columns of ``C`` (column -> {row: coeff}).
        rows: number of rows of ``C``.
        max_rows: elimination-width cap; exceeding it aborts.
        budget: optional cooperative budget charged per produced row.

    Returns:
        ``(basis, complete)`` where ``basis`` lists sparse semiflow
        vectors ``{row: weight > 0}`` and ``complete`` is False when the
        cap or the budget stopped the elimination early (the returned
        vectors are still genuine semiflows — just maybe not all of
        them).
    """
    work: list[_Row] = []
    for i in range(rows):
        c_part = {j: column[i] for j, column in enumerate(columns)
                  if i in column}
        work.append((c_part, {i: 1}))
    # Cheapest columns first keeps the intermediate row count small.
    order = sorted(range(len(columns)), key=lambda j: len(columns[j]))
    for column in order:
        plus = [row for row in work if row[0].get(column, 0) > 0]
        minus = [row for row in work if row[0].get(column, 0) < 0]
        rest = [row for row in work if column not in row[0]]
        if len(rest) + len(plus) * len(minus) > max_rows:
            return _finished(work), False
        for a in plus:
            for b in minus:
                rest.append(_combine(a, b, column))
                if budget is not None and not budget.charge():
                    return _finished(rest), False
        work = _minimal(rest)
    return _finished(work), True


def _finished(work: list[_Row]) -> list[dict[int, int]]:
    """The semiflows among the working rows (empty C-part), minimised."""
    done = [row for row in work if not row[0] and row[1]]
    return [dict(sorted(support.items())) for _, support in _minimal(done)]


# ----------------------------------------------------------------------
def p_semiflows(matrix: IncidenceMatrix,
                max_rows: int = DEFAULT_MAX_ROWS,
                budget: Optional[Budget] = None
                ) -> tuple[list[dict[int, int]], bool]:
    """Minimal P-semiflows of ``matrix`` (vectors over place rows)."""
    return semiflows(matrix.columns(), len(matrix.places),
                     max_rows=max_rows, budget=budget)


def t_semiflows(matrix: IncidenceMatrix,
                max_rows: int = DEFAULT_MAX_ROWS,
                budget: Optional[Budget] = None
                ) -> tuple[list[dict[int, int]], bool]:
    """Minimal T-semiflows of ``matrix`` (vectors over transitions)."""
    return semiflows(matrix.rows(), len(matrix.transitions),
                     max_rows=max_rows, budget=budget)
