"""Minimal siphons, maximal traps and the siphon–trap deadlock test.

A *siphon* is a place set ``S`` such that every transition producing
into ``S`` also consumes from ``S`` — once ``S`` is token-free it stays
token-free.  A *trap* is the dual: every transition consuming from a
trap also produces into it, so a marked trap can never be fully
emptied.  The two meet in the classic deadlock argument: at any dead
marking the set of unmarked places is a siphon, so if every siphon
contains an initially-marked trap, no dead marking is reachable
(Commoner's sufficient condition, quantified over *minimal* siphons —
every siphon contains a minimal one, and a trap keeps being a trap in
any superset).

Enumeration of minimal siphons is worst-case exponential, so the search
is a bounded DFS: siphons are generated grouped by their smallest
member (smaller places are excluded from the branch, so no siphon is
produced twice), each unsatisfied transition branches over which of its
input places joins the set, and a node/result cap turns overflow into
an explicit *incomplete* flag instead of a stall.
"""

from __future__ import annotations

from .incidence import IncidenceMatrix

#: Default cap on DFS nodes across the whole enumeration.
DEFAULT_MAX_NODES = 20_000

#: Default cap on collected candidate siphons.
DEFAULT_MAX_SIPHONS = 256


def maximal_trap(matrix: IncidenceMatrix,
                 subset: frozenset[int]) -> frozenset[int]:
    """The largest trap contained in ``subset`` (possibly empty).

    Standard fixpoint: repeatedly remove any place consumed by a
    transition that produces nothing back into the candidate set.
    """
    trap = set(subset)
    changed = True
    while changed and trap:
        changed = False
        for j in range(len(matrix.transitions)):
            consumed = matrix.pre_set(j) & trap
            if consumed and not (matrix.post_set(j) & trap):
                trap -= consumed
                changed = True
    return frozenset(trap)


def is_siphon(matrix: IncidenceMatrix, subset: frozenset[int]) -> bool:
    """True when every transition producing into ``subset`` consumes
    from it (the empty set counts, trivially)."""
    for j in range(len(matrix.transitions)):
        if matrix.post_set(j) & subset and not (matrix.pre_set(j) & subset):
            return False
    return True


def is_trap(matrix: IncidenceMatrix, subset: frozenset[int]) -> bool:
    """True when every transition consuming from ``subset`` produces
    into it."""
    for j in range(len(matrix.transitions)):
        if matrix.pre_set(j) & subset and not (matrix.post_set(j) & subset):
            return False
    return True


def minimal_siphons(matrix: IncidenceMatrix,
                    max_nodes: int = DEFAULT_MAX_NODES,
                    max_siphons: int = DEFAULT_MAX_SIPHONS
                    ) -> tuple[list[frozenset[int]], bool]:
    """Every minimal non-empty siphon of ``matrix`` (bounded search).

    Returns:
        ``(siphons, complete)``; when ``complete`` is False a cap fired
        and the list is a (still genuine, still minimal-among-found)
        subset of the minimal siphons.
    """
    n_transitions = len(matrix.transitions)
    found: list[frozenset[int]] = []
    nodes = 0
    complete = True

    def violation(current: frozenset[int]) -> frozenset[int] | None:
        """Input places of the first transition breaking the siphon
        condition for ``current`` (None when ``current`` is a siphon)."""
        for j in range(n_transitions):
            if (matrix.post_set(j) & current
                    and not (matrix.pre_set(j) & current)):
                return matrix.pre_set(j)
        return None

    def search(current: frozenset[int], floor: int) -> None:
        """Grow ``current`` into siphons whose members are all >= floor
        except for the seeds already chosen."""
        nonlocal nodes, complete
        if not complete:
            return
        nodes += 1
        if nodes > max_nodes or len(found) > max_siphons:
            complete = False
            return
        candidates = violation(current)
        if candidates is None:
            found.append(current)
            return
        for place in sorted(candidates):
            if place in current:
                continue  # cannot happen for a violated transition
            if place < floor:
                continue  # a smaller-seed branch owns that siphon
            search(current | {place}, floor)

    for seed in range(len(matrix.places)):
        search(frozenset({seed}), seed)
        if not complete:
            break

    # Keep only the minimal sets among those found.
    found.sort(key=lambda s: (len(s), sorted(s)))
    minimal: list[frozenset[int]] = []
    for siphon in found:
        if not any(kept < siphon or kept == siphon for kept in minimal):
            minimal.append(siphon)
    return minimal, complete
