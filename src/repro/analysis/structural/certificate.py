"""Structural certificates: polynomial safety/liveness verdicts.

:func:`structural_certificate` condenses the net's integer linear
algebra into one checkable object:

* **safety** — a place covered by a P-invariant whose initial token
  weight is at most 1 can never hold two tokens; if every place is
  covered (or statically unreachable) the net is *proved* safe without
  enumerating a single marking;
* **conservation / structural boundedness** — coverage by the minimal
  P-semiflow basis decides whether a strictly positive token-weighting
  exists (conservation) and bounds every covered place;
* **dead transitions** — a transition whose input bag outweighs an
  invariant's constant token count (or whose inputs the token-flow
  closure can never fill) is statically unfireable;
* **deadlock-freedom** — Commoner's siphon/trap condition applied to
  the *short-circuited* net (final places recycled into the initial
  marking), so the intended final marking does not count as a
  deadlock: *proved* means every reachable dead marking of the
  original net is a final marking.

Each verdict is three-valued (:class:`Verdict`): the structure either
*proves* the property, *refutes* it, or is *inconclusive* — structural
conditions are sufficient, not necessary, and the enumerative tier
(:class:`~repro.analysis.reach_graph.ReachabilityGraph`) remains the
fallback for inconclusive cases.  :meth:`StructuralCertificate.check`
re-verifies every witness against the net with plain integer
arithmetic, independently of the Farkas/DFS engines that produced it.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Optional

from ...petri.net import PetriNet
from ...runtime.budget import Budget
from .incidence import IncidenceMatrix
from .invariants import DEFAULT_MAX_ROWS, p_semiflows, t_semiflows
from .siphons import (DEFAULT_MAX_NODES, DEFAULT_MAX_SIPHONS, is_siphon,
                      is_trap, maximal_trap, minimal_siphons)


class Verdict(enum.Enum):
    """Outcome of one structural property check."""

    PROVED = "proved"
    REFUTED = "refuted"
    INCONCLUSIVE = "inconclusive"

    @property
    def decided(self) -> bool:
        """True when the structure settled the property either way."""
        return self is not Verdict.INCONCLUSIVE

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Invariant:
    """One P- or T-semiflow with named components.

    Attributes:
        kind: ``"P"`` (place weights) or ``"T"`` (firing counts).
        weights: ``(id, weight)`` pairs, sorted by id, weights > 0.
        tokens: the conserved quantity ``y . M0`` (P-invariants only).
    """

    kind: str
    weights: tuple[tuple[str, int], ...]
    tokens: int = 0

    @property
    def support(self) -> tuple[str, ...]:
        """The ids with non-zero weight."""
        return tuple(ident for ident, _ in self.weights)

    def weight(self, ident: str) -> int:
        """The component for ``ident`` (0 outside the support)."""
        for name, value in self.weights:
            if name == ident:
                return value
        return 0

    @property
    def unit(self) -> bool:
        """True for P-invariants enforcing at most one token overall."""
        return self.kind == "P" and self.tokens <= 1

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable form (deterministic ordering)."""
        return {"kind": self.kind,
                "weights": {ident: value for ident, value in self.weights},
                "tokens": self.tokens}

    def __str__(self) -> str:  # pragma: no cover - debug helper
        terms = " + ".join(f"{w}*{i}" if w != 1 else i
                           for i, w in self.weights)
        return f"{terms} = {self.tokens}" if self.kind == "P" else terms


@dataclass(frozen=True)
class SiphonWitness:
    """One minimal siphon of the short-circuited net with its trap."""

    places: tuple[str, ...]
    trap: tuple[str, ...]
    trap_marked: bool

    @property
    def controlled(self) -> bool:
        """True when the siphon contains an initially-marked trap."""
        return bool(self.trap) and self.trap_marked

    def to_dict(self) -> dict[str, object]:
        return {"places": list(self.places), "trap": list(self.trap),
                "trap_marked": self.trap_marked}


@dataclass
class StructuralCertificate:
    """Enumeration-free safety/liveness evidence for one control part.

    All sequences are sorted, so rendering a certificate (text or JSON)
    is byte-stable.  ``*_complete`` flags report whether the underlying
    bounded computation finished; an incomplete basis can still prove
    properties (its witnesses are genuine) but never refute them.
    """

    net_name: str
    places: tuple[str, ...]
    transitions: tuple[str, ...]
    p_invariants: tuple[Invariant, ...]
    t_invariants: tuple[Invariant, ...]
    siphons: tuple[SiphonWitness, ...]
    p_complete: bool
    t_complete: bool
    siphons_complete: bool
    safe: Verdict
    uncovered_places: tuple[str, ...]
    bounded: Verdict
    unbounded_places: tuple[str, ...]
    conservative: Verdict
    deadlock_free: Verdict
    uncontrolled_siphons: tuple[tuple[str, ...], ...]
    dead_transitions: tuple[str, ...]
    invariant_dead: tuple[str, ...]
    structurally_reachable: tuple[str, ...]
    structurally_fireable: tuple[str, ...]
    ordinary: bool
    elapsed_seconds: float = field(default=0.0, compare=False)

    # ------------------------------------------------------------------
    @property
    def unit_invariants(self) -> tuple[Invariant, ...]:
        """P-invariants whose conserved token count is at most 1."""
        return tuple(inv for inv in self.p_invariants if inv.unit)

    def covers(self, place: str) -> bool:
        """Is ``place`` covered by a 1-token P-invariant (proved safe)?"""
        return place not in self.uncovered_places and place in self.places

    def bound(self, place: str) -> Optional[int]:
        """Structural token bound for ``place`` (None when uncovered)."""
        if place not in self.structurally_reachable:
            return 0
        best: Optional[int] = None
        for inv in self.p_invariants:
            weight = inv.weight(place)
            if weight > 0:
                bound = inv.tokens // weight
                best = bound if best is None else min(best, bound)
        return best

    def mutually_exclusive(self, p: str, q: str) -> bool:
        """Can the structure rule out ``p`` and ``q`` being co-marked?

        True when some 1-token P-invariant weights both places (their
        weighted sum would exceed the conserved constant), or when
        either place is statically unreachable.  A False answer means
        "not excluded", not "co-markable".
        """
        if p == q:
            return False
        reachable = set(self.structurally_reachable)
        if p not in reachable or q not in reachable:
            return True
        return any(inv.weight(p) > 0 and inv.weight(q) > 0
                   for inv in self.unit_invariants)

    # ------------------------------------------------------------------
    def check(self, net: PetriNet) -> list[str]:
        """Re-verify every witness against ``net``; [] when sound.

        The check is independent of the engines that built the
        certificate: invariants are re-multiplied against the incidence
        matrix, siphons/traps re-tested against their defining
        conditions, and each *proved* verdict re-derived from the
        verified witnesses.  (Completeness of the bounded siphon
        enumeration is the one claim taken on trust; the enumerative
        tier cross-check covers it.)
        """
        problems: list[str] = []
        matrix = IncidenceMatrix.of(net)
        if tuple(sorted(net.places)) != self.places:
            problems.append("place set differs from the certified net")
            return problems
        if tuple(sorted(net.transitions)) != self.transitions:
            problems.append("transition set differs from the certified net")
            return problems
        for inv in self.p_invariants:
            problems.extend(self._check_p_invariant(matrix, inv))
        for inv in self.t_invariants:
            problems.extend(self._check_t_invariant(matrix, inv))
        closed = matrix.closed(net.final_places)
        for witness in self.siphons:
            problems.extend(self._check_siphon(closed, witness))
        reachable, fireable = _closure(matrix)
        reached = {self.places[i] for i in reachable}
        if set(self.structurally_reachable) != reached:
            problems.append("structural reachability closure differs")
        if self.safe is Verdict.PROVED:
            for place in self.places:
                if place in reached and not any(
                        inv.weight(place) > 0
                        for inv in self.unit_invariants):
                    problems.append(
                        f"safety proved but {place!r} has no 1-token "
                        f"invariant cover")
        for place in self.places:
            covered = any(inv.weight(place) > 0 for inv in self.p_invariants)
            if covered:
                continue
            if self.conservative is Verdict.PROVED:
                problems.append(f"conservation proved but {place!r} is "
                                f"not covered by any P-invariant")
            elif self.bounded is Verdict.PROVED and place in reached:
                problems.append(f"boundedness proved but reachable "
                                f"{place!r} is uncovered")
        if self.deadlock_free is Verdict.PROVED and (
                not self.siphons_complete
                or any(not w.controlled for w in self.siphons)):
            problems.append("deadlock-freedom proved without a complete "
                            "set of controlled siphons")
        for tid in self.dead_transitions:
            if tid not in self.transitions:
                problems.append(f"dead transition {tid!r} is not in the net")
            elif tid in self.invariant_dead:
                j = matrix.transition_index[tid]
                if not any(self._excludes(inv, matrix, j)
                           for inv in self.p_invariants):
                    problems.append(
                        f"transition {tid!r} marked invariant-dead but no "
                        f"invariant excludes its input bag")
            else:
                j = matrix.transition_index[tid]
                if j in fireable:
                    problems.append(
                        f"transition {tid!r} marked closure-dead but the "
                        f"token-flow closure fires it")
        return problems

    def _check_p_invariant(self, matrix: IncidenceMatrix,
                           inv: Invariant) -> list[str]:
        problems = []
        vector = dict(inv.weights)
        if not vector or any(w <= 0 for w in vector.values()):
            problems.append(f"P-invariant {inv} has a non-positive weight")
        unknown = set(vector) - set(self.places)
        if unknown:
            problems.append(f"P-invariant {inv} weights unknown places "
                            f"{sorted(unknown)}")
            return problems
        for j, tid in enumerate(matrix.transitions):
            total = sum(vector.get(matrix.places[row], 0) * value
                        for row, value in matrix.column(j).items())
            if total != 0:
                problems.append(f"P-invariant {inv} is not conserved by "
                                f"{tid!r} (y.C = {total})")
        tokens = sum(vector.get(matrix.places[row], 0) * count
                     for row, count in matrix.initial.items())
        if tokens != inv.tokens:
            problems.append(f"P-invariant {inv} records {inv.tokens} "
                            f"initial tokens, the marking holds {tokens}")
        return problems

    def _check_t_invariant(self, matrix: IncidenceMatrix,
                           inv: Invariant) -> list[str]:
        problems = []
        vector = dict(inv.weights)
        if not vector or any(w <= 0 for w in vector.values()):
            problems.append(f"T-invariant {inv} has a non-positive weight")
        unknown = set(vector) - set(self.transitions)
        if unknown:
            problems.append(f"T-invariant {inv} weights unknown "
                            f"transitions {sorted(unknown)}")
            return problems
        effect: dict[int, int] = {}
        for tid, count in vector.items():
            for row, value in matrix.column(
                    matrix.transition_index[tid]).items():
                effect[row] = effect.get(row, 0) + count * value
        nonzero = {row: v for row, v in effect.items() if v}
        if nonzero:
            problems.append(f"T-invariant {inv} changes the marking of "
                            f"{sorted(matrix.places[r] for r in nonzero)}")
        return problems

    def _check_siphon(self, closed: IncidenceMatrix,
                      witness: SiphonWitness) -> list[str]:
        problems = []
        rows = frozenset(closed.place_index[p] for p in witness.places
                         if p in closed.place_index)
        if len(rows) != len(witness.places):
            problems.append(f"siphon {list(witness.places)} names unknown "
                            f"places")
            return problems
        if not is_siphon(closed, rows):
            problems.append(f"{list(witness.places)} is not a siphon of "
                            f"the short-circuited net")
        trap_rows = frozenset(closed.place_index[p] for p in witness.trap
                              if p in closed.place_index)
        if not set(witness.trap) <= set(witness.places):
            problems.append(f"trap {list(witness.trap)} escapes its siphon")
        if witness.trap and not is_trap(closed, trap_rows):
            problems.append(f"{list(witness.trap)} is not a trap")
        marked = any(row in closed.initial for row in trap_rows)
        if witness.trap_marked != marked:
            problems.append(f"trap {list(witness.trap)} marking flag is "
                            f"wrong (recorded {witness.trap_marked})")
        return problems

    @staticmethod
    def _excludes(inv: Invariant, matrix: IncidenceMatrix, j: int) -> bool:
        """Does ``inv`` prove column ``j``'s input bag unfillable?"""
        demand = sum(inv.weight(matrix.places[row]) * weight
                     for row, weight in matrix.pre[j].items())
        return demand > inv.tokens

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable form (byte-stable; timings excluded)."""
        return {
            "net": self.net_name,
            "p_invariants": [inv.to_dict() for inv in self.p_invariants],
            "t_invariants": [inv.to_dict() for inv in self.t_invariants],
            "siphons": [w.to_dict() for w in self.siphons],
            "complete": {"p": self.p_complete, "t": self.t_complete,
                         "siphons": self.siphons_complete},
            "verdicts": {
                "safe": self.safe.value,
                "bounded": self.bounded.value,
                "conservative": self.conservative.value,
                "deadlock_free": self.deadlock_free.value,
            },
            "uncovered_places": list(self.uncovered_places),
            "unbounded_places": list(self.unbounded_places),
            "uncontrolled_siphons": [list(s)
                                     for s in self.uncontrolled_siphons],
            "dead_transitions": list(self.dead_transitions),
        }

    def summary(self) -> str:
        """One line, e.g. ``"ex: safe=proved deadlock_free=proved ..."``."""
        dead = len(self.dead_transitions)
        return (f"{self.net_name}: {len(self.p_invariants)} P-invariants, "
                f"{len(self.t_invariants)} T-invariants, "
                f"{len(self.siphons)} siphons | safe={self.safe} "
                f"bounded={self.bounded} conservative={self.conservative} "
                f"deadlock_free={self.deadlock_free} | {dead} dead "
                f"transition{'s' if dead != 1 else ''}")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"StructuralCertificate({self.summary()!r})"


# ----------------------------------------------------------------------
def _closure(matrix: IncidenceMatrix) -> tuple[set[int], set[int]]:
    """Token-flow closure: (reachable place rows, fireable columns).

    The same over-approximation the ``NET003``/``NET004`` lint rules
    use: a transition is fireable once all of its inputs have ever been
    producible.  Sound for negative facts — a place outside the closure
    is certainly never marked, a transition outside it never fires.
    """
    reachable = set(matrix.initial)
    fireable: set[int] = set()
    changed = True
    while changed:
        changed = False
        for j in range(len(matrix.transitions)):
            if j in fireable or not matrix.pre[j]:
                continue
            if matrix.pre_set(j) <= reachable:
                fireable.add(j)
                fresh = matrix.post_set(j) - reachable
                if fresh:
                    reachable |= fresh
                changed = True
    return reachable, fireable


def structural_certificate(net: PetriNet, *,
                           max_rows: int = DEFAULT_MAX_ROWS,
                           max_nodes: int = DEFAULT_MAX_NODES,
                           max_siphons: int = DEFAULT_MAX_SIPHONS,
                           budget: Optional[Budget] = None
                           ) -> StructuralCertificate:
    """Compute the structural certificate of ``net``.

    Pure integer linear algebra over the incidence matrix — no marking
    is ever enumerated, so the cost is polynomial in the net size for
    the control parts this library builds (worst-case caps turn
    pathological nets into *inconclusive* verdicts, never stalls).
    """
    started = time.perf_counter()
    matrix = IncidenceMatrix.of(net)
    places = matrix.places
    transitions = matrix.transitions

    p_raw, p_complete = p_semiflows(matrix, max_rows=max_rows, budget=budget)
    t_raw, t_complete = t_semiflows(matrix, max_rows=max_rows, budget=budget)
    p_invariants = tuple(sorted(
        (Invariant("P",
                   tuple(sorted((places[row], weight)
                                for row, weight in vector.items())),
                   tokens=sum(weight * matrix.initial.get(row, 0)
                              for row, weight in vector.items()))
         for vector in p_raw),
        key=lambda inv: inv.weights))
    t_invariants = tuple(sorted(
        (Invariant("T",
                   tuple(sorted((transitions[col], weight)
                                for col, weight in vector.items())))
         for vector in t_raw),
        key=lambda inv: inv.weights))

    reachable_rows, fireable_cols = _closure(matrix)
    reachable = tuple(sorted(places[i] for i in reachable_rows))
    fireable = tuple(sorted(transitions[j] for j in fireable_cols))

    # --- safety / boundedness / conservation --------------------------
    unit = [inv for inv in p_invariants if inv.unit]
    uncovered = tuple(sorted(
        p for p in places
        if p in set(reachable)
        and not any(inv.weight(p) > 0 for inv in unit)))
    safe = Verdict.PROVED if not uncovered else Verdict.INCONCLUSIVE

    unbounded = tuple(sorted(
        p for p in places
        if p in set(reachable)
        and not any(inv.weight(p) > 0 for inv in p_invariants)))
    bounded = Verdict.PROVED if not unbounded else Verdict.INCONCLUSIVE

    covered_all = all(any(inv.weight(p) > 0 for inv in p_invariants)
                      for p in places)
    if covered_all:
        conservative = Verdict.PROVED
    elif p_complete:
        conservative = Verdict.REFUTED
    else:
        conservative = Verdict.INCONCLUSIVE

    # --- statically dead transitions ----------------------------------
    closure_dead = [transitions[j] for j in range(len(transitions))
                    if matrix.pre[j] and j not in fireable_cols]
    invariant_dead = []
    for j in range(len(transitions)):
        if not matrix.pre[j] or transitions[j] in closure_dead:
            continue
        demand_beats = any(
            sum(inv.weight(places[row]) * weight
                for row, weight in matrix.pre[j].items()) > inv.tokens
            for inv in p_invariants)
        if demand_beats:
            invariant_dead.append(transitions[j])
    dead = tuple(sorted(set(closure_dead) | set(invariant_dead)))

    # --- deadlock-freedom on the short-circuited net ------------------
    ordinary = matrix.is_ordinary()
    closed = matrix.closed(net.final_places)
    witnesses: list[SiphonWitness] = []
    uncontrolled: list[tuple[str, ...]] = []
    siphons_complete = True
    if not ordinary:
        # Weighted arcs void the unmarked-set-is-a-siphon argument.
        deadlock = Verdict.INCONCLUSIVE
    elif not closed.transitions:
        deadlock = (Verdict.PROVED if net.is_final(net.initial_marking)
                    else Verdict.REFUTED)
    else:
        raw_siphons, siphons_complete = minimal_siphons(
            closed, max_nodes=max_nodes, max_siphons=max_siphons)
        for rows in raw_siphons:
            trap = maximal_trap(closed, rows)
            witness = SiphonWitness(
                places=tuple(sorted(places[i] for i in rows)),
                trap=tuple(sorted(places[i] for i in trap)),
                trap_marked=any(i in closed.initial for i in trap))
            witnesses.append(witness)
            if not witness.controlled:
                uncontrolled.append(witness.places)
        if siphons_complete and not uncontrolled:
            deadlock = Verdict.PROVED
        else:
            deadlock = Verdict.INCONCLUSIVE
    witnesses.sort(key=lambda w: w.places)
    uncontrolled.sort()

    return StructuralCertificate(
        net_name=net.name,
        places=places,
        transitions=transitions,
        p_invariants=p_invariants,
        t_invariants=t_invariants,
        siphons=tuple(witnesses),
        p_complete=p_complete,
        t_complete=t_complete,
        siphons_complete=siphons_complete,
        safe=safe,
        uncovered_places=uncovered,
        bounded=bounded,
        unbounded_places=unbounded,
        conservative=conservative,
        deadlock_free=deadlock,
        uncontrolled_siphons=tuple(tuple(s) for s in uncontrolled),
        dead_transitions=dead,
        invariant_dead=tuple(sorted(invariant_dead)),
        structurally_reachable=reachable,
        structurally_fireable=fireable,
        ordinary=ordinary,
        elapsed_seconds=time.perf_counter() - started,
    )
