"""repro.analysis.structural — enumeration-free net analysis.

The *fast tier* of the concurrency analysis: where
:class:`~repro.analysis.reach_graph.ReachabilityGraph` walks the
marking space (exponential in the worst case, and the first victim of
an exhausted :class:`~repro.runtime.budget.Budget`), the engines here
answer from the incidence matrix alone —

* :class:`IncidenceMatrix` — the ``C = Post - Pre`` linear-algebra view
  of a :class:`~repro.petri.net.PetriNet`;
* :func:`p_semiflows` / :func:`t_semiflows` — minimal P/T-invariant
  bases by fraction-free Farkas elimination;
* :func:`minimal_siphons` / :func:`maximal_trap` — the siphon/trap
  structure behind Commoner's deadlock condition;
* :func:`structural_certificate` — the bundled, independently
  checkable :class:`StructuralCertificate` with three-valued
  :class:`Verdict` fields for safety, boundedness, conservation,
  dead transitions and (termination-aware) deadlock-freedom.

The two-tier dispatcher (:mod:`repro.analysis.tiers`) consults these
certificates first and only falls back to reachability enumeration
when a verdict is :attr:`Verdict.INCONCLUSIVE`.
"""

from .certificate import (Invariant, SiphonWitness, StructuralCertificate,
                          Verdict, structural_certificate)
from .incidence import RESET_PREFIX, IncidenceMatrix
from .invariants import (DEFAULT_MAX_ROWS, p_semiflows, semiflows,
                         t_semiflows)
from .siphons import (DEFAULT_MAX_NODES, DEFAULT_MAX_SIPHONS, is_siphon,
                      is_trap, maximal_trap, minimal_siphons)

__all__ = [
    "DEFAULT_MAX_NODES",
    "DEFAULT_MAX_ROWS",
    "DEFAULT_MAX_SIPHONS",
    "IncidenceMatrix",
    "Invariant",
    "RESET_PREFIX",
    "SiphonWitness",
    "StructuralCertificate",
    "Verdict",
    "is_siphon",
    "is_trap",
    "maximal_trap",
    "minimal_siphons",
    "p_semiflows",
    "semiflows",
    "structural_certificate",
    "t_semiflows",
]
