"""Symbolic value-flow certification of a scheduled, bound data path.

The paper claims every merger is semantics-preserving.  This module
*proves* it for one design point: it executes the behavioural DFG
symbolically in program order (the reference), then executes the
implementation — the schedule plus the register/module binding —
control step by control step with registers as the only state, and
compares the two with hash-consed value numbering:

* reads happen during a step from the register contents at its start;
* results and primary-input loads are clocked into registers at the
  step's end (the unit-delay model of :func:`repro.dfg.analysis.edge_latency`);
* a primary output is sampled just after its final definition clocks
  in, the moment its lifetime guarantees the register still holds it.

Every divergence is reported with a stable ``EQV0xx`` code:

``EQV001``  an output (or condition) value is never computed/stored;
``EQV002``  an output reaches its port with the wrong expression;
``EQV003``  an operand read finds a stale or missing value in its
            register (the localised cause of most EQV002s);
``EQV004``  a condition feeds the controller the wrong expression;
``EQV005``  two live values are clocked into one register at the same
            edge (the stored value is nondeterministic).

Commutative operators are canonicalised (``a+b`` ≡ ``b+a``) and MOVE is
transparent, so rebindings that only rename or reorder still certify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..alloc.binding import Binding
from ..dfg import DFG
from ..dfg.graph import Const
from ..dfg.ops import OpKind
from ..errors import ScheduleError

#: Operators whose operand order does not change the value.
COMMUTATIVE = frozenset({OpKind.ADD, OpKind.MUL, OpKind.AND, OpKind.OR,
                         OpKind.XOR, OpKind.EQ, OpKind.NE})

#: Cap on rendered expression strings inside diagnostics.
MAX_RENDER = 80


class ValueNumbering:
    """Hash-consed symbolic expressions: equal ids iff equal values."""

    def __init__(self) -> None:
        self._ids: dict[tuple, int] = {}
        self._terms: list[tuple] = []

    def _intern(self, term: tuple) -> int:
        number = self._ids.get(term)
        if number is None:
            number = len(self._terms)
            self._ids[term] = number
            self._terms.append(term)
        return number

    def input(self, name: str) -> int:
        """The symbolic value carried by primary input ``name``."""
        return self._intern(("in", name))

    def const(self, value: int) -> int:
        """A literal operand."""
        return self._intern(("const", value))

    def apply(self, kind: OpKind, args: tuple[int, ...]) -> int:
        """The value produced by applying ``kind`` to numbered operands."""
        if kind is OpKind.MOVE:
            return args[0]
        if kind in COMMUTATIVE:
            args = tuple(sorted(args))
        return self._intern(("op", kind.value, args))

    def render(self, number: int, limit: int = MAX_RENDER) -> str:
        """Readable infix form of a value number, length-capped."""
        text = self._render(number)
        return text if len(text) <= limit else text[:limit - 1] + "…"

    def _render(self, number: int) -> str:
        term = self._terms[number]
        if term[0] == "in":
            return str(term[1])
        if term[0] == "const":
            return str(term[1])
        _, symbol, args = term
        if len(args) == 1:
            return f"{symbol}{self._render(args[0])}"
        return "(" + f" {symbol} ".join(self._render(a) for a in args) + ")"

    def __len__(self) -> int:
        return len(self._terms)


@dataclass(frozen=True)
class Divergence:
    """One certified difference between behaviour and implementation."""

    code: str
    location: str
    message: str
    hint: str = ""


@dataclass
class EquivalenceCertificate:
    """The result of certifying one design point.

    Attributes:
        name: design name.
        vn: the shared value-numbering table (render ids through it).
        outputs: output variable -> (reference id, implementation id or
            None when the implementation never produces the output).
        conditions: condition variable -> (reference id, implementation
            id or None).
        divergences: every detected difference; empty iff the design
            provably computes the original behaviour.
    """

    name: str
    vn: ValueNumbering
    outputs: dict[str, tuple[int, Optional[int]]] = field(default_factory=dict)
    conditions: dict[str, tuple[int, Optional[int]]] = field(
        default_factory=dict)
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def valid(self) -> bool:
        """True when the implementation provably matches the behaviour."""
        return not self.divergences

    def summary(self) -> str:
        """One line per certified output/condition plus the verdict."""
        lines = []
        for name, (ref, impl) in sorted(self.outputs.items()):
            status = "ok" if impl == ref else "DIVERGES"
            lines.append(f"output {name}: {status} = {self.vn.render(ref)}")
        for name, (ref, impl) in sorted(self.conditions.items()):
            status = "ok" if impl == ref else "DIVERGES"
            lines.append(f"condition {name}: {status} = "
                         f"{self.vn.render(ref)}")
        verdict = ("certificate valid" if self.valid else
                   f"{len(self.divergences)} divergences")
        lines.append(verdict)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by ``repro-hlts analyze``)."""
        return {
            "valid": self.valid,
            "outputs": {name: {"expr": self.vn.render(ref),
                               "matches": impl == ref}
                        for name, (ref, impl) in sorted(self.outputs.items())},
            "conditions": {name: {"expr": self.vn.render(ref),
                                  "matches": impl == ref}
                           for name, (ref, impl)
                           in sorted(self.conditions.items())},
            "divergences": [{"code": d.code, "location": d.location,
                             "message": d.message} for d in self.divergences],
        }


# ----------------------------------------------------------------------
def certify(dfg: DFG, steps: dict[str, int],
            binding: Binding) -> EquivalenceCertificate:
    """Symbolically certify one scheduled, bound design point.

    Raises:
        ScheduleError: when ``steps`` does not cover every operation
            (the certifier needs a complete schedule; incomplete ones
            are the schedule rules' findings).
    """
    missing = set(dfg.operations) - set(steps)
    if missing:
        raise ScheduleError(f"{dfg.name}: cannot certify with unscheduled "
                            f"operations {sorted(missing)}")
    vn = ValueNumbering()
    cert = EquivalenceCertificate(dfg.name, vn)
    ref_result, ref_operands = _reference_pass(dfg, vn)
    _implementation_pass(dfg, steps, binding, vn, cert, ref_result,
                         ref_operands)
    return cert


def _reference_pass(dfg: DFG, vn: ValueNumbering
                    ) -> tuple[dict[str, int], dict[tuple[str, int], int]]:
    """Program-order symbolic execution of the behavioural DFG."""
    ref_result: dict[str, int] = {}
    ref_operands: dict[tuple[str, int], int] = {}
    for op_id in dfg.op_order:
        op = dfg.operations[op_id]
        args = []
        for position, operand in enumerate(op.srcs):
            if isinstance(operand, Const):
                number = vn.const(operand.value)
            else:
                reaching = (op.reaching[position]
                            if position < len(op.reaching) else None)
                if reaching is not None and reaching in ref_result:
                    number = ref_result[reaching]
                else:
                    number = vn.input(operand)
            ref_operands[(op_id, position)] = number
            args.append(number)
        ref_result[op_id] = vn.apply(op.kind, tuple(args))
    return ref_result, ref_operands


def _live(dfg: DFG, var: str) -> bool:
    """A value worth preserving: read by someone or a primary output."""
    variable = dfg.variables.get(var)
    if variable is not None and variable.is_output:
        return True
    return bool(dfg.uses_of(var))


def _implementation_pass(dfg: DFG, steps: dict[str, int], binding: Binding,
                         vn: ValueNumbering, cert: EquivalenceCertificate,
                         ref_result: dict[str, int],
                         ref_operands: dict[tuple[str, int], int]) -> None:
    """Step-by-step symbolic execution of the schedule + binding."""
    register_of = binding.register_of
    by_step: dict[int, list[str]] = {}
    for op_id, step in steps.items():
        if op_id in dfg.operations:
            by_step.setdefault(step, []).append(op_id)
    # Primary inputs load their registers at the end of the step before
    # their first use (the lifetime model's birth).
    loads: dict[int, list[str]] = {}
    for var in dfg.inputs():
        if register_of.get(var.name) is None:
            continue
        uses = [steps[o] for o in dfg.uses_of(var.name) if o in steps]
        if uses:
            loads.setdefault(min(uses) - 1, []).append(var.name)
    # Primary outputs are sampled just after their last definition.
    sample_at: dict[int, list[str]] = {}
    impl_out: dict[str, Optional[int]] = {}
    for var in dfg.outputs():
        defs = dfg.defs_of(var.name)
        if defs:
            sample_at.setdefault(max(steps[o] for o in defs),
                                 []).append(var.name)
        else:
            impl_out[var.name] = vn.input(var.name)  # a port-to-port wire

    impl_cond: dict[str, int] = {}
    registers: dict[str, int] = {}
    relevant = (list(by_step) + list(loads) + list(sample_at)) or [0]
    for step in range(min(relevant), max(relevant) + 1):
        # (r, value, writer op/load, write is live)
        writes: list[tuple[str, int, str, bool]] = []
        for op_id in sorted(by_step.get(step, [])):
            op = dfg.operations[op_id]
            args = []
            for position, operand in enumerate(op.srcs):
                expected = ref_operands[(op_id, position)]
                if isinstance(operand, Const):
                    number = vn.const(operand.value)
                else:
                    number = _read_register(op_id, operand, expected,
                                            register_of, registers, vn, cert)
                args.append(number)
            result = vn.apply(op.kind, tuple(args))
            if op.dst is None:
                continue
            dst_var = dfg.variables.get(op.dst)
            if dst_var is not None and dst_var.is_condition:
                impl_cond[op.dst] = result
                continue
            register = register_of.get(op.dst)
            if register is None:
                cert.divergences.append(Divergence(
                    "EQV001", op_id,
                    f"{op_id}: result {op.dst!r} has no register; the "
                    f"value is lost",
                    hint="bind the variable to a register"))
                continue
            writes.append((register, result, op_id, _live(dfg, op.dst)))
        for name in loads.get(step, []):
            writes.append((register_of[name], vn.input(name), f"load({name})",
                           True))
        _apply_writes(writes, registers, cert)
        for name in sample_at.get(step, []):
            register = register_of.get(name)
            impl_out[name] = registers.get(register) if register else None

    _compare(dfg, vn, cert, ref_result, impl_out, impl_cond)


def _read_register(op_id: str, operand: str, expected: int,
                   register_of: dict[str, str], registers: dict[str, int],
                   vn: ValueNumbering, cert: EquivalenceCertificate) -> int:
    """One operand read; reports EQV003 on a stale or missing value."""
    register = register_of.get(operand)
    if register is None:
        # Condition-as-data or unbound variable: upstream rules
        # (DFG004/BND002) own that finding; assume the intended value.
        return expected
    actual = registers.get(register)
    if actual is None:
        cert.divergences.append(Divergence(
            "EQV003", op_id,
            f"{op_id}: reads {operand!r} from {register!r} before any "
            f"value was stored there",
            hint="the operation is scheduled too early"))
        return expected
    if actual != expected:
        cert.divergences.append(Divergence(
            "EQV003", op_id,
            f"{op_id}: reads {operand!r} from {register!r} but finds "
            f"{vn.render(actual)} instead of {vn.render(expected)}",
            hint="the register was overwritten before this use"))
    return actual


def _apply_writes(writes: list[tuple[str, int, str, bool]],
                  registers: dict[str, int],
                  cert: EquivalenceCertificate) -> None:
    """Clock one step's writes in; reports EQV005 on live clobbers.

    Dead-value writes (results nobody reads) are applied first so a
    live value deterministically wins the edge without a finding.
    """
    last_live: dict[str, str] = {}
    for register, number, writer, live in sorted(
            writes, key=lambda w: (w[0], w[3], w[2])):
        if live and register in last_live:
            cert.divergences.append(Divergence(
                "EQV005", register,
                f"register {register!r}: {last_live[register]} and "
                f"{writer} clock values in at the same edge",
                hint="the stored value is nondeterministic"))
        registers[register] = number
        if live:
            last_live[register] = writer


def _compare(dfg: DFG, vn: ValueNumbering, cert: EquivalenceCertificate,
             ref_result: dict[str, int], impl_out: dict[str, Optional[int]],
             impl_cond: dict[str, int]) -> None:
    """Final equivalence comparison of outputs and conditions."""
    for var in dfg.outputs():
        defs = dfg.defs_of(var.name)
        reference = (ref_result[defs[-1]] if defs else vn.input(var.name))
        implementation = impl_out.get(var.name)
        cert.outputs[var.name] = (reference, implementation)
        if implementation is None:
            cert.divergences.append(Divergence(
                "EQV001", var.name,
                f"output {var.name!r} is never stored in a register",
                hint="bind it and schedule its definition"))
        elif implementation != reference:
            cert.divergences.append(Divergence(
                "EQV002", var.name,
                f"output {var.name!r} computes {vn.render(implementation)} "
                f"instead of {vn.render(reference)}",
                hint="a register or module was rebound illegally"))
    for name in dfg.condition_variables():
        defs = dfg.defs_of(name)
        if not defs:
            continue  # DFG007 owns undefined conditions
        reference = ref_result[defs[-1]]
        implementation = impl_cond.get(name)
        cert.conditions[name] = (reference, implementation)
        if implementation is None:
            cert.divergences.append(Divergence(
                "EQV001", name,
                f"condition {name!r} is never computed",
                hint="schedule its comparison"))
        elif implementation != reference:
            cert.divergences.append(Divergence(
                "EQV004", name,
                f"condition {name!r} feeds the controller "
                f"{vn.render(implementation)} instead of "
                f"{vn.render(reference)}",
                hint="branch/loop decisions would diverge"))
