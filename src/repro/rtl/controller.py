"""The FSM controller: a control table derived from schedule + binding.

Phase 0 is the pre-load phase (input variables whose first use is in
step 0 are clocked into their registers); phase ``t+1`` drives control
step ``t`` of the schedule.  Each phase maps control-signal names (the
ones :meth:`RTLDesign.control_signals` lists) to 1; unlisted signals
are 0.  During test the ATPG drives these same signals directly — the
paper's assumption that the controller can be modified to support the
test plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..etpn.design import Design
from ..errors import NetlistError
from .components import RTLDesign, Ref, port_ref, unit_ref
from .generate import _operand_ref


@dataclass
class ControlTable:
    """Per-phase control-signal assignments."""

    phases: list[dict[str, int]] = field(default_factory=list)

    @property
    def phase_count(self) -> int:
        return len(self.phases)

    def signal(self, phase: int, name: str) -> int:
        """Value of a control signal in a phase (default 0)."""
        return self.phases[phase].get(name, 0)


def _source_index(sources: list[Ref], wanted: Ref, context: str) -> int:
    try:
        return sources.index(wanted)
    except ValueError:
        raise NetlistError(f"{context}: source {wanted} not in mux "
                           f"{[str(s) for s in sources]}") from None


def build_control_table(design: Design, rtl: RTLDesign) -> ControlTable:
    """Derive the controller's control table from the design."""
    dfg = design.dfg
    num_steps = design.num_steps
    phases: list[dict[str, int]] = [dict() for _ in range(num_steps + 1)]

    # Input-variable loads: an input is clocked into its register at the
    # end of the step before its first use (phase = birth step + 1).
    for var in dfg.inputs():
        register = design.binding.register_of.get(var.name)
        if register is None:
            continue
        uses = dfg.uses_of(var.name)
        if not uses:
            continue
        load_phase = min(design.steps[u] for u in uses)  # birth + 1
        spec = rtl.registers[register]
        assignment = phases[load_phase]
        assignment[spec.load_signal()] = 1
        if spec.needs_mux():
            index = _source_index(spec.sources, port_ref(f"in_{var.name}"),
                                  f"load of {var.name}")
            assignment[spec.select_signal(index)] = 1

    # Operation execution: unit op select + port muxes during the step,
    # destination register load at the step's end.
    for op_id, step in design.steps.items():
        op = dfg.operation(op_id)
        module = design.binding.module_of[op_id]
        unit = rtl.units[module]
        assignment = phases[step + 1]
        if unit.needs_op_select():
            assignment[unit.op_signal(op.kind)] = 1
        for port, operand in enumerate(op.srcs):
            sources = unit.port_sources[port]
            if len(sources) > 1:
                index = _source_index(sources, _operand_ref(design, operand),
                                      f"{op_id} port {port}")
                assignment[unit.select_signal(port, index)] = 1
        if op.dst is not None and not dfg.variables[op.dst].is_condition:
            register = design.binding.register_of[op.dst]
            spec = rtl.registers[register]
            assignment[spec.load_signal()] = 1
            if spec.needs_mux():
                index = _source_index(spec.sources, unit_ref(module),
                                      f"{op_id} writeback")
                assignment[spec.select_signal(index)] = 1

    return ControlTable(phases)
