"""Word-level RTL components generated from a synthesised design.

The RTL view sits between the ETPN data path and the gate level: every
register, functional unit and multiplexer becomes an explicit component
with named control signals.  Control signals are the interface the
controller (or, during test, the ATPG — the paper assumes the
controller can be modified to support the test plan) drives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dfg.ops import OpKind


@dataclass(frozen=True)
class Ref:
    """A reference to a word-level signal source.

    ``kind`` is ``"reg"`` (register output), ``"unit"`` (functional-unit
    result), ``"port"`` (primary data input) or ``"const"`` (literal,
    ``ident`` holds its value as a string).
    """

    kind: str
    ident: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.kind}:{self.ident}"


def reg_ref(reg: str) -> Ref:
    return Ref("reg", reg)


def unit_ref(unit: str) -> Ref:
    return Ref("unit", unit)


def port_ref(port: str) -> Ref:
    return Ref("port", port)


def const_ref(value: int) -> Ref:
    return Ref("const", str(value))


@dataclass
class RegisterSpec:
    """One data register with a one-hot-selected input mux.

    Control signals: ``{id}_load`` plus, when ``len(sources) > 1``,
    one select ``{id}_sel{i}`` per source.
    """

    reg_id: str
    sources: list[Ref] = field(default_factory=list)

    def load_signal(self) -> str:
        return f"{self.reg_id}_load"

    def select_signal(self, index: int) -> str:
        return f"{self.reg_id}_sel{index}"

    def needs_mux(self) -> bool:
        return len(self.sources) > 1


@dataclass
class UnitSpec:
    """One functional unit implementing a set of operations.

    Control signals: one ``{id}_op_{kind.name}`` per implemented kind
    when more than one, plus per-port one-hot mux selects
    ``{id}_p{port}_sel{i}`` when a port has several sources.
    """

    unit_id: str
    kinds: list[OpKind] = field(default_factory=list)
    port_sources: dict[int, list[Ref]] = field(default_factory=dict)

    def op_signal(self, kind: OpKind) -> str:
        return f"{self.unit_id}_op_{kind.name}"

    def select_signal(self, port: int, index: int) -> str:
        return f"{self.unit_id}_p{port}_sel{index}"

    def needs_op_select(self) -> bool:
        return len(self.kinds) > 1

    def port_needs_mux(self, port: int) -> bool:
        return len(self.port_sources.get(port, [])) > 1


@dataclass
class RTLDesign:
    """The complete word-level RTL of a synthesised design."""

    name: str
    bits: int
    registers: dict[str, RegisterSpec] = field(default_factory=dict)
    units: dict[str, UnitSpec] = field(default_factory=dict)
    #: Primary data-input port names (each ``bits`` wide).
    in_ports: list[str] = field(default_factory=list)
    #: Primary data-output port name -> register supplying it.
    out_ports: dict[str, str] = field(default_factory=dict)
    #: Condition output name -> unit producing it (1 bit wide).
    cond_ports: dict[str, str] = field(default_factory=dict)

    def control_signals(self) -> list[str]:
        """Every control signal name, sorted (the controller's output)."""
        signals: list[str] = []
        for reg in self.registers.values():
            signals.append(reg.load_signal())
            if reg.needs_mux():
                signals.extend(reg.select_signal(i)
                               for i in range(len(reg.sources)))
        for unit in self.units.values():
            if unit.needs_op_select():
                signals.extend(unit.op_signal(k) for k in unit.kinds)
            for port, sources in sorted(unit.port_sources.items()):
                if len(sources) > 1:
                    signals.extend(unit.select_signal(port, i)
                                   for i in range(len(sources)))
        return sorted(signals)
