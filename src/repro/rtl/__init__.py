"""Word-level RTL: generation, controller derivation and simulation."""

from .components import RTLDesign, Ref, RegisterSpec, UnitSpec
from .controller import ControlTable, build_control_table
from .generate import generate_rtl
from .semantics import apply_op, evaluate_dfg, mask
from .simulate import SimResult, simulate_rtl

__all__ = [
    "ControlTable",
    "RTLDesign",
    "Ref",
    "RegisterSpec",
    "SimResult",
    "UnitSpec",
    "apply_op",
    "build_control_table",
    "evaluate_dfg",
    "generate_rtl",
    "mask",
    "simulate_rtl",
]
