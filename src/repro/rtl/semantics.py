"""Reference word-level semantics of every operation kind.

Single source of truth shared by the DFG interpreter, the RTL
functional simulator and the gate-level equivalence tests: whatever
:func:`apply_op` computes is what the hardware must compute.

Conventions (all values unsigned, ``bits`` wide):

* arithmetic wraps modulo ``2**bits``;
* comparisons return 0 or 1;
* division by zero returns the all-ones word (the restoring divider's
  natural behaviour), and the remainder is discarded;
* shift amounts are taken modulo ``bits``.
"""

from __future__ import annotations

from ..dfg.ops import OpKind


def mask(bits: int) -> int:
    """The all-ones word at the given width."""
    return (1 << bits) - 1


def apply_op(kind: OpKind, a: int, b: int, bits: int) -> int:
    """Compute one operation on unsigned words."""
    m = mask(bits)
    a &= m
    b &= m
    if kind == OpKind.ADD:
        return (a + b) & m
    if kind == OpKind.SUB:
        return (a - b) & m
    if kind == OpKind.MUL:
        return (a * b) & m
    if kind == OpKind.DIV:
        return (a // b) & m if b else m
    if kind == OpKind.LT:
        return int(a < b)
    if kind == OpKind.GT:
        return int(a > b)
    if kind == OpKind.LE:
        return int(a <= b)
    if kind == OpKind.GE:
        return int(a >= b)
    if kind == OpKind.EQ:
        return int(a == b)
    if kind == OpKind.NE:
        return int(a != b)
    if kind == OpKind.AND:
        return a & b
    if kind == OpKind.OR:
        return a | b
    if kind == OpKind.XOR:
        return a ^ b
    if kind == OpKind.NOT:
        return (~a) & m
    if kind == OpKind.SHL:
        return (a << (b % bits)) & m
    if kind == OpKind.SHR:
        return (a >> (b % bits)) & m
    if kind == OpKind.MOVE:
        return a
    raise ValueError(f"unknown operation kind {kind!r}")


def evaluate_dfg(dfg, inputs: dict[str, int], bits: int) -> dict[str, int]:
    """Interpret a DFG once (one loop-body iteration) at word level.

    Args:
        dfg: the data-flow graph.
        inputs: value per primary-input variable.
        bits: word width.

    Returns:
        The final value of every variable (including conditions).

    Raises:
        KeyError: when an input variable is missing from ``inputs``.
    """
    from ..dfg.graph import Const

    values: dict[str, int] = {}
    for var in dfg.inputs():
        values[var.name] = inputs[var.name] & mask(bits)
    for op_id in dfg.op_order:
        op = dfg.operation(op_id)
        operands = []
        for src in op.srcs:
            if isinstance(src, Const):
                operands.append(src.value & mask(bits))
            else:
                operands.append(values[src])
        if len(operands) == 1:
            operands.append(0)
        result = apply_op(op.kind, operands[0], operands[1], bits)
        if op.dst is not None:
            values[op.dst] = result
    return values
