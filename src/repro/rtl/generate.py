"""Generate word-level RTL from a synthesised design."""

from __future__ import annotations

from ..dfg.graph import Const
from ..etpn.design import Design
from ..errors import NetlistError
from .components import (RTLDesign, Ref, RegisterSpec, UnitSpec, const_ref,
                         port_ref, reg_ref, unit_ref)


def _operand_ref(design: Design, operand) -> Ref:
    if isinstance(operand, Const):
        return const_ref(operand.value)
    register = design.binding.register_of.get(operand)
    if register is None:
        raise NetlistError(f"operand {operand!r} has no register")
    return reg_ref(register)


def generate_rtl(design: Design, bits: int) -> RTLDesign:
    """Build the RTL netlist of ``design`` at the given bit width.

    Source orderings inside register and unit-port muxes are sorted and
    therefore deterministic; the control table (see
    :mod:`repro.rtl.controller`) indexes into the same orderings.
    """
    dfg = design.dfg
    rtl = RTLDesign(name=dfg.name, bits=bits)

    for register, variables in design.binding.registers().items():
        spec = RegisterSpec(register)
        sources: set[Ref] = set()
        for var in variables:
            if dfg.variables[var].is_input:
                sources.add(port_ref(f"in_{var}"))
            for def_op in dfg.defs_of(var):
                sources.add(unit_ref(design.binding.module_of[def_op]))
        spec.sources = sorted(sources, key=str)
        rtl.registers[register] = spec

    for module, ops in design.binding.modules().items():
        spec = UnitSpec(module)
        kinds = sorted({dfg.operation(o).kind for o in ops},
                       key=lambda k: k.name)
        spec.kinds = kinds
        port_sources: dict[int, set[Ref]] = {}
        for op_id in ops:
            op = dfg.operation(op_id)
            for port, operand in enumerate(op.srcs):
                port_sources.setdefault(port, set()).add(
                    _operand_ref(design, operand))
        spec.port_sources = {port: sorted(refs, key=str)
                             for port, refs in sorted(port_sources.items())}
        rtl.units[module] = spec

    rtl.in_ports = [f"in_{v.name}" for v in dfg.inputs()]
    for var in dfg.outputs():
        register = design.binding.register_of.get(var.name)
        if register is not None:
            rtl.out_ports[f"out_{var.name}"] = register
    for cond in dfg.condition_variables():
        def_ops = dfg.defs_of(cond)
        if not def_ops:
            raise NetlistError(f"condition {cond!r} has no defining op")
        rtl.cond_ports[f"cond_{cond}"] = design.binding.module_of[def_ops[0]]
    return rtl
