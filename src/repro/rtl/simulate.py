"""Word-level functional simulation of generated RTL.

Drives the RTL purely from the control table — exactly what the FSM
controller would do — so a successful run validates RTL generation,
control-table derivation and mux orderings together.  The integration
tests compare the outputs against the reference DFG interpreter
(:func:`repro.rtl.semantics.evaluate_dfg`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import NetlistError
from ..etpn.design import Design
from .components import RTLDesign, Ref
from .controller import ControlTable
from .semantics import apply_op, mask


@dataclass
class SimResult:
    """Outputs of one RTL run (one schedule traversal)."""

    outputs: dict[str, int] = field(default_factory=dict)
    conditions: dict[str, int] = field(default_factory=dict)
    #: Register values after the final phase.
    registers: dict[str, int] = field(default_factory=dict)


def _resolve(ref: Ref, registers: dict[str, int], units: dict[str, int],
             inputs: dict[str, int], bits: int) -> int:
    if ref.kind == "reg":
        return registers[ref.ident]
    if ref.kind == "unit":
        return units.get(ref.ident, 0)
    if ref.kind == "port":
        name = ref.ident.removeprefix("in_")
        return inputs[name] & mask(bits)
    if ref.kind == "const":
        return int(ref.ident) & mask(bits)
    raise NetlistError(f"unknown ref kind {ref.kind!r}")


def simulate_rtl(design: Design, rtl: RTLDesign, table: ControlTable,
                 inputs: dict[str, int]) -> SimResult:
    """Run one traversal of the schedule through the RTL.

    Args:
        design: the synthesised design (for condition sampling phases).
        rtl: the generated RTL.
        table: the control table driving it.
        inputs: primary-input variable values (held constant).

    Returns:
        Primary outputs, condition values (sampled in the phase their
        comparison executes) and final register contents.
    """
    bits = rtl.bits
    registers = {r: 0 for r in rtl.registers}
    result = SimResult()

    cond_sample_phase: dict[str, int] = {}
    for cond_port, unit_id in rtl.cond_ports.items():
        cond = cond_port.removeprefix("cond_")
        def_op = design.dfg.defs_of(cond)[0]
        cond_sample_phase[cond_port] = design.steps[def_op] + 1

    # An output register may be reused by a later variable, so each
    # output port is sampled right after the phase that lands its value
    # (the environment captures the port while the value is live).
    out_sample_phase: dict[str, int] = {}
    for out_port in rtl.out_ports:
        var = out_port.removeprefix("out_")
        defs = design.dfg.defs_of(var)
        out_sample_phase[out_port] = (
            max(design.steps[d] for d in defs) + 1 if defs else 0)

    for phase in range(table.phase_count):
        assignment = table.phases[phase]
        unit_results: dict[str, int] = {}
        for unit_id, unit in rtl.units.items():
            words: list[int] = []
            for port in sorted(unit.port_sources):
                sources = unit.port_sources[port]
                if len(sources) == 1:
                    words.append(_resolve(sources[0], registers,
                                          unit_results, inputs, bits))
                else:
                    word = 0
                    for index, ref in enumerate(sources):
                        if assignment.get(unit.select_signal(port, index)):
                            word = _resolve(ref, registers, unit_results,
                                            inputs, bits)
                    words.append(word)
            while len(words) < 2:
                words.append(0)
            if unit.needs_op_select():
                value = 0
                for kind in unit.kinds:
                    if assignment.get(unit.op_signal(kind)):
                        value = apply_op(kind, words[0], words[1], bits)
                unit_results[unit_id] = value
            else:
                unit_results[unit_id] = apply_op(unit.kinds[0], words[0],
                                                 words[1], bits)
        for cond_port, unit_id in rtl.cond_ports.items():
            if cond_sample_phase[cond_port] == phase:
                result.conditions[cond_port] = unit_results[unit_id] & 1
        # Clock edge: registers with asserted load capture their input.
        updates: dict[str, int] = {}
        for reg_id, spec in rtl.registers.items():
            if not assignment.get(spec.load_signal()):
                continue
            if spec.needs_mux():
                value = 0
                for index, ref in enumerate(spec.sources):
                    if assignment.get(spec.select_signal(index)):
                        value = _resolve(ref, registers, unit_results,
                                         inputs, bits)
            else:
                value = _resolve(spec.sources[0], registers, unit_results,
                                 inputs, bits)
            updates[reg_id] = value
        registers.update(updates)
        for out_port, reg_id in rtl.out_ports.items():
            if out_sample_phase[out_port] == phase:
                result.outputs[out_port] = registers[reg_id]

    result.registers = dict(registers)
    return result
