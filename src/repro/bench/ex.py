"""The Ex benchmark (Lee et al. 1992), reconstructed.

The original drawing from [6, 7] is not reproduced in the DATE'98 paper,
so this DFG is reconstructed to be consistent with Table 1 and Figure 2:

* operation nodes N21, N22, N24, N28 are multiplications and N25, N27,
  N29 subtractions with N30 an addition (the table's module rows);
* the variable set is exactly {a..f, u..z} — six primary inputs and six
  computed values, two of which (z, u) accumulate (are defined twice),
  matching the CAMAD row's twelve registers;
* the paper's "Ours" module groups (N21,N24), (N22,N28),
  (N25,N27,N29), (N30) are chain-ordered and therefore schedulable in
  distinct steps, as Figure 2 shows.
"""

from __future__ import annotations

from ..dfg import DFG, DFGBuilder


def build() -> DFG:
    """Build the Ex data-flow graph."""
    b = DFGBuilder("ex")
    b.inputs("a", "b", "c", "d", "e", "f")
    b.op("N21", "*", "x", "a", "b")
    b.op("N22", "*", "v", "c", "d")
    b.op("N24", "*", "y", "x", "e")
    b.op("N28", "*", "w", "v", "f")
    b.op("N25", "-", "z", "x", "v")
    b.op("N27", "-", "u", "y", "w")
    b.op("N29", "-", "z", "z", "u")
    b.op("N30", "+", "u", "z", "w")
    b.outputs("z", "u")
    return b.build()


#: The module groups Table 1 reports for the paper's algorithm.
PAPER_OURS_MODULE_GROUPS = [
    ("N21", "N24"),
    ("N22", "N28"),
    ("N25", "N27", "N29"),
    ("N30",),
]

#: The register groups Table 1 reports for the paper's algorithm.
PAPER_OURS_REGISTER_GROUPS = [
    ("a", "c", "x"),
    ("u",),
    ("b", "f", "v"),
    ("d", "e", "z"),
    ("y", "w"),
]
