"""The Tseng benchmark (Tseng & Siewiorek's FACET example).

Reconstruction of the small mixed arithmetic/logic example used by the
FACET data-path synthesis paper: a handful of additions, a subtraction,
a multiplication, a division and bitwise operations — the classic
exercise for register/unit sharing with heterogeneous operations.
"""

from __future__ import annotations

from ..dfg import DFG, DFGBuilder


def build() -> DFG:
    """Build the Tseng data-flow graph."""
    b = DFGBuilder("tseng")
    b.inputs("a", "b", "c", "d", "e")
    b.op("N1", "+", "t1", "a", "b")
    b.op("N2", "-", "t2", "c", "d")
    b.op("N3", "*", "t3", "t1", "t2")
    b.op("N4", "|", "t4", "t1", "e")
    b.op("N5", "&", "t5", "t3", "t4")
    b.op("N6", "/", "t6", "t3", "c")
    b.op("N7", "+", "out", "t5", "t6")
    b.outputs("out")
    return b.build()
