"""The paper's benchmark suite (§5), reconstructed and documented."""

from .registry import (EXTENSION_BENCHMARKS, EXTRA_BENCHMARKS,
                       TABLE_BENCHMARKS, load, names)

__all__ = ["EXTENSION_BENCHMARKS", "EXTRA_BENCHMARKS", "TABLE_BENCHMARKS",
           "load", "names"]
