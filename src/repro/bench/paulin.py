"""The Paulin benchmark (HAL, Paulin/Knight/Girczyc DAC'86).

The paper cites [12] for this benchmark but shows no table for it
(§5: "tested ... on Paulin").  This reconstruction is the straight-line
arithmetic kernel commonly used under that name: a multiply-heavy
expression tree with a balanced add/subtract reduction, sized between
Ex and Dct.
"""

from __future__ import annotations

from ..dfg import DFG, DFGBuilder


def build() -> DFG:
    """Build the Paulin data-flow graph."""
    b = DFGBuilder("paulin")
    b.inputs("a", "b", "c", "d", "e", "f", "g", "h")
    b.op("N1", "*", "t1", "a", "b")
    b.op("N2", "*", "t2", "c", "d")
    b.op("N3", "*", "t3", "e", "f")
    b.op("N4", "*", "t4", "t1", "t2")
    b.op("N5", "-", "t5", "t4", "t3")
    b.op("N6", "+", "t6", "t5", "g")
    b.op("N7", "-", "t7", "t6", "h")
    b.op("N8", "+", "out", "t7", "t1")
    b.outputs("out")
    return b.build()
