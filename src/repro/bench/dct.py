"""The Dct benchmark: a portion of an 8-point DCT signal-flow graph.

Reconstructed to be consistent with Table 2 of the paper (the original
is from Krishnamoorthy & Nestor 1992): thirteen operations — additions
N27, N29, N37, N42, N43, N44; subtractions N28, N30; multiplications
N31, N33, N35, N38, N40 — over exactly the seventeen variables
{a..j, p1..p4, q2..q4} of the CAMAD register row.  The structure is the
natural DCT shape: an add/subtract butterfly stage (p values),
coefficient multiplications (i, j carry the cosine factors) and an
accumulation stage into the q outputs.
"""

from __future__ import annotations

from ..dfg import DFG, DFGBuilder


def build() -> DFG:
    """Build the Dct data-flow graph."""
    b = DFGBuilder("dct")
    b.inputs("a", "b", "c", "d", "e", "f", "g", "h", "i", "j")
    # Butterfly stage.
    b.op("N27", "+", "p1", "a", "b")
    b.op("N28", "-", "p2", "c", "d")
    b.op("N29", "+", "p3", "e", "f")
    b.op("N30", "-", "p4", "g", "h")
    # Coefficient multiplications.
    b.op("N31", "*", "q2", "p1", "i")
    b.op("N33", "*", "q3", "p2", "j")
    b.op("N35", "*", "q4", "p3", "i")
    b.op("N38", "*", "p3", "p4", "j")   # p3 reused as a product temp
    b.op("N40", "*", "p1", "p2", "i")   # p1 reused as a product temp
    # Accumulation stage.
    b.op("N37", "+", "q2", "q2", "p3")
    b.op("N42", "+", "q3", "q3", "p1")
    b.op("N43", "+", "q4", "q4", "p4")
    b.op("N44", "+", "q2", "q2", "q3")
    b.outputs("q2", "q3", "q4")
    return b.build()


#: Module groups Table 2 reports for the paper's algorithm.
PAPER_OURS_MODULE_GROUPS = [
    ("N31", "N40"),
    ("N33", "N38"),
    ("N35",),
    ("N27", "N44"),
    ("N29", "N37", "N43"),
    ("N42",),
    ("N28",),
    ("N30",),
]

#: Register groups Table 2 reports for the paper's algorithm.
PAPER_OURS_REGISTER_GROUPS = [
    ("a", "j", "q2"),
    ("c", "h", "q3"),
    ("f", "p1"),
    ("e", "p2"),
    ("b", "i", "p3"),
    ("d", "g", "p4", "q4"),
]
