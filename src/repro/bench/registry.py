"""Benchmark registry: build any §5 benchmark by name."""

from __future__ import annotations

from typing import Callable

from ..dfg import DFG
from . import dct, diffeq, ewf, ex, extra, paulin, tseng

_BUILDERS: dict[str, Callable[[], DFG]] = {
    "ex": ex.build,
    "dct": dct.build,
    "diffeq": diffeq.build,
    "ewf": ewf.build,
    "paulin": paulin.build,
    "tseng": tseng.build,
    "fir8": extra.build_fir8,
    "iir": extra.build_iir_biquad,
    "ar": extra.build_ar_lattice,
}

#: The three benchmarks with full tables in the paper.
TABLE_BENCHMARKS = ("ex", "dct", "diffeq")

#: The additional benchmarks §5 mentions testing.
EXTRA_BENCHMARKS = ("ewf", "paulin", "tseng")

#: Benchmarks beyond the paper (library extensions).
EXTENSION_BENCHMARKS = ("fir8", "iir", "ar")


def names() -> list[str]:
    """All registered benchmark names."""
    return sorted(_BUILDERS)


def load(name: str) -> DFG:
    """Build the named benchmark DFG.

    Raises:
        KeyError: for an unknown name.
    """
    try:
        return _BUILDERS[name]()
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; "
                       f"choose from {names()}") from None
