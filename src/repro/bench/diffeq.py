"""The Diffeq benchmark: the HAL differential-equation loop (Paulin).

The classic second-order differential-equation solver::

    while (x < a):
        x1 = x + dx
        u1 = u - 3*x*u*dx - 3*y*dx
        y1 = y + u*dx
        x, u, y = x1, u1, y1

Node numbering and variable names follow Table 3 of the paper: six
multiplications N26, N27, N29, N31, N33, N35 producing the temporaries
b..g; ALU operations N25, N30 (the u1 accumulation), N34, N36; and the
loop comparison N24 against the bound a1.  u1 is defined twice — one
register holds the accumulating value, as in the paper's register rows.
The loop back-edge lives in the control part (``loop('cond')``).
"""

from __future__ import annotations

from ..dfg import DFG, DFGBuilder


def build() -> DFG:
    """Build the Diffeq data-flow graph (one loop-body iteration)."""
    b = DFGBuilder("diffeq")
    b.inputs("x", "y", "u", "dx", "a1")
    b.op("N26", "*", "b", 3, "x")
    b.op("N27", "*", "c", "u", "dx")
    b.op("N29", "*", "d", 3, "y")
    b.op("N31", "*", "e", "b", "c")
    b.op("N33", "*", "f", "d", "dx")
    b.op("N35", "*", "g", "u", "dx")
    b.op("N25", "-", "u1", "u", "e")
    b.op("N30", "-", "u1", "u1", "f")
    b.op("N34", "+", "y1", "y", "g")
    b.op("N36", "+", "x1", "x", "dx")
    b.compare("N24", "<", "cond", "x1", "a1")
    b.outputs("x1", "y1", "u1")
    b.loop("cond")
    return b.build()


#: Module groups Table 3 reports for the paper's algorithm.
PAPER_OURS_MODULE_GROUPS = [
    ("N26", "N31", "N35"),
    ("N27", "N29", "N33"),
    ("N25", "N36"),
    ("N30", "N34"),
    ("N24",),
]

#: Register groups Table 3 reports for the paper's algorithm.
PAPER_OURS_REGISTER_GROUPS = [
    ("u", "u1", "e"),
    ("x", "a1", "d", "g"),
    ("y",),
    ("y1", "b", "c", "f"),
    ("x1",),
]
