"""Additional classic HLS benchmarks beyond the paper's six.

These widen the evaluation surface for the extension benches and give
downstream users ready-made inputs: an FIR filter tap, an IIR biquad
section and an auto-regressive (AR) lattice stage — the other standard
1990s high-level synthesis workloads.
"""

from __future__ import annotations

from ..dfg import DFG, DFGBuilder


def build_fir8() -> DFG:
    """8-tap FIR filter: out = Σ x_i · k_i (8 mults, 7 adds)."""
    b = DFGBuilder("fir8")
    xs = [f"x{i}" for i in range(8)]
    ks = [f"k{i}" for i in range(8)]
    b.inputs(*xs, *ks)
    for i in range(8):
        b.op(f"M{i}", "*", f"p{i}", xs[i], ks[i])
    b.op("A0", "+", "s0", "p0", "p1")
    b.op("A1", "+", "s1", "p2", "p3")
    b.op("A2", "+", "s2", "p4", "p5")
    b.op("A3", "+", "s3", "p6", "p7")
    b.op("A4", "+", "t0", "s0", "s1")
    b.op("A5", "+", "t1", "s2", "s3")
    b.op("A6", "+", "out", "t0", "t1")
    b.outputs("out")
    return b.build()


def build_iir_biquad() -> DFG:
    """Direct-form-II biquad: 4 mults, 4 adds, 1 state update chain."""
    b = DFGBuilder("iir")
    b.inputs("x", "w1", "w2", "b0", "b1", "a1")
    b.op("M1", "*", "t1", "a1", "w1")
    b.op("M2", "*", "t2", "b1", "w1")
    b.op("A1", "-", "w0", "x", "t1")
    b.op("M3", "*", "t3", "b0", "w0")
    b.op("A2", "+", "t4", "t3", "t2")
    b.op("M4", "*", "t5", "a1", "w2")
    b.op("A3", "-", "w0", "w0", "t5")
    b.op("A4", "+", "y", "t4", "w2")
    b.outputs("y", "w0")
    return b.build()


def build_ar_lattice() -> DFG:
    """One AR lattice stage: the standard 4-mult/2-add recursion."""
    b = DFGBuilder("ar")
    b.inputs("f_in", "g_in", "kf", "kg")
    b.op("M1", "*", "t1", "kf", "g_in")
    b.op("M2", "*", "t2", "kg", "f_in")
    b.op("A1", "-", "f_out", "f_in", "t1")
    b.op("A2", "-", "g_out", "g_in", "t2")
    b.op("M3", "*", "t3", "kf", "f_out")
    b.op("M4", "*", "t4", "kg", "g_out")
    b.op("A3", "+", "e1", "t3", "g_in")
    b.op("A4", "+", "e2", "t4", "f_in")
    b.outputs("f_out", "g_out", "e1", "e2")
    return b.build()
