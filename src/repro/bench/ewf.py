"""The EWF benchmark: fifth-order elliptic wave filter.

The standard HLS benchmark has 34 operations (26 additions, 8
multiplications) arranged in the characteristic long addition chains
with multiplicative feedback taps.  The paper only mentions EWF in
passing (§5, "We have tested our synthesis algorithm ... on EWF"),
so this module provides a size- and shape-faithful reconstruction: 26
adds, 8 mults, seven filter-state inputs (sv*), two coefficient-class
inputs and a critical path of comparable depth to the published graph.
"""

from __future__ import annotations

from ..dfg import DFG, DFGBuilder


def build() -> DFG:
    """Build the EWF data-flow graph."""
    b = DFGBuilder("ewf")
    b.inputs("inp", "sv2", "sv13", "sv18", "sv26", "sv33", "sv38", "sv39",
             "k1", "k2")
    # Input section.
    b.op("A1", "+", "t1", "inp", "sv2")
    b.op("A2", "+", "t2", "t1", "sv13")
    b.op("A3", "+", "t3", "t2", "sv26")
    b.op("M1", "*", "t4", "t3", "k1")
    b.op("A4", "+", "t5", "t4", "sv13")
    b.op("A5", "+", "t6", "t4", "sv26")
    # Left biquad.
    b.op("M2", "*", "t7", "t5", "k2")
    b.op("A6", "+", "t8", "t7", "sv2")
    b.op("A7", "+", "t9", "t8", "t1")
    b.op("M3", "*", "t10", "t9", "k1")
    b.op("A8", "+", "t11", "t10", "sv2")
    b.op("A9", "+", "nsv2", "t11", "t8")
    # Centre section.
    b.op("A10", "+", "t12", "t6", "sv18")
    b.op("M4", "*", "t13", "t12", "k2")
    b.op("A11", "+", "t14", "t13", "sv18")
    b.op("A12", "+", "nsv13", "t14", "t5")
    b.op("A13", "+", "t15", "t14", "sv33")
    b.op("M5", "*", "t16", "t15", "k1")
    b.op("A14", "+", "nsv18", "t16", "t12")
    # Right biquad.
    b.op("A15", "+", "t17", "sv33", "sv38")
    b.op("M6", "*", "t18", "t17", "k2")
    b.op("A16", "+", "t19", "t18", "sv26")
    b.op("A17", "+", "t20", "t19", "t15")
    b.op("M7", "*", "t21", "t20", "k1")
    b.op("A18", "+", "nsv26", "t21", "t19")
    b.op("A19", "+", "t22", "t21", "sv39")
    # Output section.
    b.op("M8", "*", "t23", "t22", "k2")
    b.op("A20", "+", "t24", "t23", "sv38")
    b.op("A21", "+", "nsv33", "t24", "t17")
    b.op("A22", "+", "t25", "t24", "sv39")
    b.op("A23", "+", "nsv38", "t25", "t22")
    b.op("A24", "+", "t26", "t25", "t23")
    b.op("A25", "+", "nsv39", "t26", "sv39")
    b.op("A26", "+", "outp", "t26", "t24")
    b.outputs("outp", "nsv2", "nsv13", "nsv18", "nsv26", "nsv33", "nsv38",
              "nsv39")
    return b.build()
