"""repro — integrated scheduling and allocation for high-level test synthesis.

A complete reimplementation of Yang & Peng (DATE 1998): the ETPN design
representation, CC/SC/CO/SO testability analysis, the C/O balance
allocation principle, merge-sort rescheduling with the SR1/SR2
enhancement strategy, the integrated synthesis algorithm, the CAMAD /
FDS / mobility-path comparison flows, and the full downstream substrate
(RTL generation, gate expansion, stuck-at fault simulation, random +
PODEM ATPG) needed to regenerate the paper's tables and figures.

Typical use::

    from repro import load_benchmark, synthesize, SynthesisParams

    dfg = load_benchmark("diffeq")
    result = synthesize(dfg, SynthesisParams(k=3, alpha=2, beta=1))
    print(result.design.summary())
"""

from .bench import load as load_benchmark
from .bench import names as benchmark_names
from .cost import CostModel, ModuleLibrary
from .dfg import DFG, DFGBuilder, OpKind
from .etpn import Design, default_design
from .lint import Diagnostic, LintReport, Severity, lint_design, lint_pipeline
from .synth import (SynthesisParams, SynthesisResult, run_approach1,
                    run_approach2, run_camad, run_flow, run_ours, synthesize)
from .testability import TestabilityAnalysis, analyze

__version__ = "1.0.0"

__all__ = [
    "DFG",
    "DFGBuilder",
    "CostModel",
    "Design",
    "Diagnostic",
    "LintReport",
    "ModuleLibrary",
    "OpKind",
    "Severity",
    "SynthesisParams",
    "SynthesisResult",
    "TestabilityAnalysis",
    "analyze",
    "benchmark_names",
    "default_design",
    "lint_design",
    "lint_pipeline",
    "load_benchmark",
    "run_approach1",
    "run_approach2",
    "run_camad",
    "run_flow",
    "run_ours",
    "synthesize",
]
