"""Durable synthesis-as-a-service: spool + WAL ledger + supervisor.

The service turns the one-shot experiment harness into a
crash-recoverable job queue (DESIGN.md §16):

* :mod:`repro.service.spool` — a filesystem spool directory is the
  whole transport; job ids are content hashes, so resubmission is
  idempotent and results are shared.
* :mod:`repro.service.ledger` — every state transition is one fsynced
  line in a write-ahead JSONL ledger; replaying it reconstructs the
  queue after a kill at any instant.
* :mod:`repro.service.supervisor` — FIFO dispatch with per-job
  budgets, capped-exponential retry with deterministic jitter, a
  consecutive-failure quarantine circuit breaker, hung-worker reaping
  in process mode, and SIGTERM graceful drain.
* :mod:`repro.service.metrics` — WAL-derived operator stats
  (``repro-hlts serve --stats``).
"""

from .ledger import (CANCELLED, DONE, FAILED, QUARANTINED, RUNNING,
                     SUBMITTED, JobState, Ledger, fold_transitions)
from .metrics import render_stats, service_stats
from .spool import JobRequest, Spool, is_terminal, job_id
from .supervisor import (RetryPolicy, ServiceOutcome, Supervisor,
                         backoff_delay)

__all__ = [
    "CANCELLED", "DONE", "FAILED", "QUARANTINED", "RUNNING", "SUBMITTED",
    "JobState", "Ledger", "fold_transitions",
    "render_stats", "service_stats",
    "JobRequest", "Spool", "is_terminal", "job_id",
    "RetryPolicy", "ServiceOutcome", "Supervisor", "backoff_delay",
]
