"""Service observability: fold the WAL into operator-facing counters.

``repro-hlts serve --stats`` and the service benchmark both read the
same numbers, and both compute them the same way — by folding the WAL,
never by trusting in-memory state — so the stats survive any number of
daemon restarts and describe exactly what the ledger can prove.
"""

from __future__ import annotations

from typing import Any

from .ledger import (DONE, FAILED, QUARANTINED, RUNNING, STATES,
                     SUBMITTED)
from .spool import Spool


def service_stats(spool: Spool) -> dict[str, Any]:
    """Fold one spool's WAL into a flat metrics dict.

    Returns counters over the ledger's whole history: jobs by current
    state, transition totals (``attempts`` = ``running`` transitions,
    ``retries`` = ``failed`` transitions), recovery/reap counts, and
    done-job throughput over the WAL's wall-clock span.
    """
    transitions = spool.ledger.transitions()
    states = spool.ledger.replay()
    by_state = {state: 0 for state in sorted(STATES)}
    for job in states.values():
        by_state[job.state] = by_state.get(job.state, 0) + 1
    transition_counts: dict[str, int] = {}
    for record in transitions:
        state = record.get("state")
        if isinstance(state, str):
            transition_counts[state] = transition_counts.get(state, 0) + 1
    # A reap is ledgered as a failed transition, or folded straight
    # into the quarantine reason when it tripped the circuit breaker.
    reaped = sum(1 for r in transitions
                 if r.get("state") in (FAILED, QUARANTINED)
                 and "reaped: " in str(r.get("reason", "")))
    recovered = sum(1 for job in states.values()
                    if job.state == DONE and job.recovered)
    timestamps = [r["ts"] for r in transitions
                  if isinstance(r.get("ts"), (int, float))]
    done_timestamps = [r["ts"] for r in transitions
                       if r.get("state") == DONE
                       and isinstance(r.get("ts"), (int, float))]
    span = (max(done_timestamps) - min(timestamps)
            if done_timestamps and timestamps else 0.0)
    throughput = (len(done_timestamps) / span if span > 0 else None)
    return {
        "spool": str(spool.root),
        "jobs": len(states),
        "by_state": by_state,
        "transitions": len(transitions),
        "attempts": transition_counts.get(RUNNING, 0),
        "retries": transition_counts.get(FAILED, 0),
        "quarantined_transitions": transition_counts.get(QUARANTINED, 0),
        "resubmissions": max(0, transition_counts.get(SUBMITTED, 0)
                             - len(states)),
        "recovered": recovered,
        "reaped": reaped,
        "wal_span_seconds": round(span, 6),
        "throughput_done_per_second": (round(throughput, 6)
                                       if throughput is not None else None),
    }


def render_stats(stats: dict[str, Any]) -> str:
    """A fixed-width operator summary of :func:`service_stats`."""
    lines = [
        f"spool        {stats['spool']}",
        f"jobs         {stats['jobs']}",
    ]
    by_state = stats.get("by_state", {})
    for state in sorted(by_state):
        if by_state[state]:
            lines.append(f"  {state:<12}{by_state[state]}")
    lines += [
        f"transitions  {stats['transitions']}",
        f"attempts     {stats['attempts']}",
        f"retries      {stats['retries']}",
        f"recovered    {stats['recovered']}",
        f"reaped       {stats['reaped']}",
    ]
    throughput = stats.get("throughput_done_per_second")
    if throughput is not None:
        lines.append(f"throughput   {throughput:.3f} done/s "
                     f"over {stats['wal_span_seconds']:.1f}s")
    return "\n".join(lines)
