"""Write-ahead job ledger: every state transition, fsynced, replayable.

The service's single source of truth is an append-only JSONL WAL built
on the checkpoint :class:`~repro.runtime.checkpoint.Journal` (same O(1)
fsynced appends, same torn-tail-drop replay, same atomic-rewrite
repair) under its own format tag and chaos seam
(``service.ledger_write``).  Every job state change — ``submitted →
running → done/failed/quarantined/cancelled`` — is one WAL line
committed *before* the supervisor acts on it, so killing the daemon at
any instant and restarting replays the WAL into the exact job table
the dead process had, minus at most the newest transition (whose loss
recovery repairs: a ``running`` job with a spooled result is adopted
as ``done``, one without is re-queued).

Replay folds transitions in file order into one :class:`JobState` per
job.  The fold is deliberately idempotent for resubmission: a
``submitted`` transition for a job that is already ``done`` or
``quarantined`` is a no-op, so identical requests from many users cost
one line and zero work — job ids are content hashes
(:func:`repro.service.spool.job_id`), which makes the dedupe exact.

Appends go through ``open(..., "a")`` — ``O_APPEND`` — and each
transition is a single short ``write``, so the CLI ``submit`` path may
append while a daemon holds the same WAL: POSIX keeps concurrent
O_APPEND writes of one line each from interleaving.  The whole-file
rewrite fallback only runs on a torn or headerless file, which the
supervisor repairs before dispatching.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

from ..runtime.checkpoint import Journal

#: WAL format tag; bump on incompatible transition-record changes.
WAL_FORMAT = "repro-service-wal-v1"

#: The chaos seam visited immediately before every WAL commit.
LEDGER_SEAM = "service.ledger_write"

# ----------------------------------------------------------------------
# Job states
# ----------------------------------------------------------------------
SUBMITTED = "submitted"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
QUARANTINED = "quarantined"
CANCELLED = "cancelled"

#: Every state a transition may carry.
STATES = frozenset({SUBMITTED, RUNNING, DONE, FAILED, QUARANTINED,
                    CANCELLED})

#: States a job never leaves on its own (``submitted`` revives a
#: cancelled job; ``done`` and ``quarantined`` are sticky).
TERMINAL_STATES = frozenset({DONE, QUARANTINED, CANCELLED})


@dataclass
class JobState:
    """One job's folded WAL state.

    Attributes:
        job_id: the content-hash id (see :func:`~repro.service.spool.
            job_id`).
        state: the latest folded state.
        attempts: how many ``running`` transitions the job has had —
            i.e. how many times a worker actually started it.
        failures: *consecutive* failures since the last success; the
            quarantine circuit breaker trips on this, and ``done``
            resets it.
        reason: the latest failure/quarantine/cancellation reason.
        submit_seq: first-seen order in the WAL — the FIFO dispatch
            order.
        recovered: True when the final ``done`` was adopted from a
            spooled result during crash recovery instead of a fresh
            evaluation.
    """

    job_id: str
    state: str = SUBMITTED
    attempts: int = 0
    failures: int = 0
    reason: str = ""
    submit_seq: int = 0
    recovered: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {"job": self.job_id, "state": self.state,
                "attempts": self.attempts, "failures": self.failures,
                "reason": self.reason, "submit_seq": self.submit_seq,
                "recovered": self.recovered}


class Ledger:
    """The service WAL: transitions in, a replayed job table out."""

    def __init__(self, path: str | Path) -> None:
        self.journal = Journal(path, fmt=WAL_FORMAT, seam=LEDGER_SEAM)

    @property
    def path(self) -> Path:
        return self.journal.path

    # ------------------------------------------------------------------
    def append(self, job_id: str, state: str, *,
               attempt: Optional[int] = None,
               reason: Optional[str] = None,
               recovered: bool = False) -> dict[str, Any]:
        """Commit one state transition (fsynced before returning).

        The wall-clock ``ts`` field feeds throughput metrics only; no
        correctness decision reads it, so WAL replay stays
        deterministic.
        """
        if state not in STATES:
            raise ValueError(f"unknown job state {state!r}; "
                             f"registered: {sorted(STATES)}")
        record: dict[str, Any] = {
            "format": WAL_FORMAT,
            "kind": "transition",
            "job": job_id,
            "state": state,
            "ts": round(time.time(), 6),
        }
        if attempt is not None:
            record["attempt"] = attempt
        if reason is not None:
            record["reason"] = reason
        if recovered:
            record["recovered"] = True
        self.journal.append(record)
        return record

    def transitions(self) -> list[dict]:
        """Every WAL transition in commit order ([] when absent).

        A torn final line — an append cut down by a crash — is dropped,
        matching the journal's loses-at-most-one-record contract.
        """
        return [r for r in self.journal.records()
                if r.get("kind") == "transition"]

    def compact(self) -> None:
        """Atomically repair a torn tail / re-canonicalise the WAL."""
        self.journal.compact()

    # ------------------------------------------------------------------
    def replay(self) -> dict[str, JobState]:
        """Fold the WAL into the current job table (submit order)."""
        return fold_transitions(self.transitions())


def fold_transitions(transitions: list[dict]) -> dict[str, JobState]:
    """Fold transition records into per-job states.

    Fold rules (applied in WAL order):

    * ``submitted`` — creates the job on first sight; afterwards it is
      a no-op unless the job is ``cancelled`` (resubmission revives
      it) or ``running``/``failed`` during crash recovery (the
      supervisor re-queues an interrupted attempt explicitly).
    * ``running`` — counts an attempt.
    * ``failed`` — counts a consecutive failure, keeps the reason.
    * ``done`` — terminal success; resets the consecutive-failure
      counter.
    * ``quarantined`` — terminal; the circuit breaker tripped.
    * ``cancelled`` — terminal until a later ``submitted`` revives it.
    """
    jobs: dict[str, JobState] = {}
    for record in transitions:
        job_id = record.get("job")
        state = record.get("state")
        if not isinstance(job_id, str) or state not in STATES:
            continue
        job = jobs.get(job_id)
        if job is None:
            job = JobState(job_id=job_id, submit_seq=len(jobs))
            jobs[job_id] = job
            if state == SUBMITTED:
                continue
        if state == SUBMITTED:
            if job.state in (CANCELLED, RUNNING, FAILED):
                job.state = SUBMITTED
            continue
        if state == RUNNING:
            job.attempts += 1
            job.state = RUNNING
        elif state == FAILED:
            job.failures += 1
            job.reason = str(record.get("reason", ""))
            job.state = FAILED
        elif state == DONE:
            if job.state in (DONE, QUARANTINED):
                continue
            job.failures = 0
            job.recovered = bool(record.get("recovered", False))
            job.state = DONE
        elif state == QUARANTINED:
            if job.state == DONE:
                continue
            job.reason = str(record.get("reason", ""))
            job.state = QUARANTINED
        elif state == CANCELLED:
            if job.state in (DONE, QUARANTINED):
                continue
            job.reason = str(record.get("reason", "cancelled"))
            job.state = CANCELLED
    return jobs
