"""The supervisor loop: dispatch, retry, reap, quarantine, drain.

One :class:`Supervisor` owns a :class:`~repro.service.spool.Spool` and
drives its queue to completion:

* **Dispatch** — jobs run FIFO in WAL submit order.  ``workers=1``
  (the default on this 1-CPU class of machine) evaluates jobs inline
  in the supervisor process — the path that honours an active chaos
  injector, which is what makes every failure mode below
  deterministically testable.  ``workers>1`` (or ``isolate=True``)
  runs each job in its own forked worker process, which buys real
  crash isolation and hung-worker reaping at fork cost.
* **Ledger protocol** — the supervisor is the sole WAL writer while
  running (``submit``/``cancel`` CLI appends are safe concurrently:
  single-line O_APPEND writes).  Every transition is committed
  *before* the action it records completes, so replay after a kill at
  any point reconstructs the exact queue; a ``running`` job whose
  result file survived the crash is adopted as ``done`` without
  re-evaluation (results are content-addressed, so adoption is exact).
* **Retry with capped exponential backoff** — a failed job re-enters
  the queue *at the tail* (one poison job can never starve the rest)
  after ``base * 2^(failures-1)`` seconds, capped, plus deterministic
  jitter derived from SHA-256 of (job id, attempt) — reproducible runs,
  no thundering herd.
* **Quarantine circuit breaker** — after ``max_attempts`` consecutive
  failures the job is parked ``quarantined`` and the queue moves on.
* **Reaping** — in process mode a worker that outlives its deadline ×
  grace horizon is terminated and the miss is charged as a failure
  (so a persistently hanging job also quarantines).  Inline jobs are
  bounded by their cooperative :class:`~repro.runtime.budget.Budget`
  instead — they degrade, not hang.
* **Graceful drain** — :meth:`Supervisor.request_stop` (wired to
  SIGTERM/SIGINT by ``repro-hlts serve``) stops dequeuing; running
  work finishes (inline: the current job; process mode: live
  workers), every transition is already fsynced, and :meth:`run`
  returns with ``stopped_reason`` set so the CLI exits 0.

Chaos seams: ``service.dequeue`` (job picked), ``service.dispatch``
(just before evaluation — the canonical transient failure point),
``service.worker_reap`` (the completion/reap check) and
``service.ledger_write`` (inside every WAL commit, via
:class:`~repro.service.ledger.Ledger`).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..runtime.budget import Budget
from ..runtime.chaos import ChaosCrash, chaos_point
from ..runtime.checkpoint import cell_record
from .ledger import (CANCELLED, DONE, FAILED, QUARANTINED, RUNNING,
                     SUBMITTED, JobState)
from .spool import JobRequest, Spool


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/quarantine knobs.

    Attributes:
        max_attempts: consecutive failures before quarantine.
        backoff_base: first retry delay in seconds (0 = immediate).
        backoff_cap: ceiling on any single delay.
        jitter: extra delay as a fraction of the base delay, scaled by
            a deterministic per-(job, attempt) hash — spreads retries
            without sacrificing reproducibility.
    """

    max_attempts: int = 3
    backoff_base: float = 0.5
    backoff_cap: float = 30.0
    jitter: float = 0.25


def backoff_delay(job_id: str, failures: int, policy: RetryPolicy) -> float:
    """Capped exponential backoff with deterministic jitter.

    ``failures`` is the consecutive-failure count *including* the one
    just recorded (so the first retry uses ``backoff_base``).
    """
    if policy.backoff_base <= 0:
        return 0.0
    base = min(policy.backoff_base * (2 ** max(0, failures - 1)),
               policy.backoff_cap)
    digest = hashlib.sha256(f"{job_id}:{failures}".encode()).digest()
    fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return min(base * (1.0 + policy.jitter * fraction), policy.backoff_cap)


@dataclass
class ServiceOutcome:
    """Everything one supervisor run did (counters over *this* run)."""

    processed: int = 0          #: dispatch attempts started
    done: int = 0               #: jobs reaching ``done`` (incl. recovered)
    recovered: int = 0          #: adopted from spooled results at startup
    retried: int = 0            #: failures that scheduled a retry
    quarantined: int = 0        #: circuit breakers tripped
    reaped: int = 0             #: hung workers terminated
    skipped_cancelled: int = 0  #: dequeued jobs found cancelled
    stopped_reason: str = ""    #: why the loop stopped early ("" = drained)
    drained: bool = False       #: queue empty at exit
    elapsed_seconds: float = 0.0

    @property
    def stopped(self) -> bool:
        return bool(self.stopped_reason)

    def ok(self) -> bool:
        """True when nothing was lost: no quarantine this run."""
        return self.quarantined == 0


@dataclass
class _Slot:
    """One live worker process (process mode only)."""

    process: Any
    attempt: int
    deadline_seconds: Optional[float]
    reap_at: Optional[float]


# ----------------------------------------------------------------------
# Job evaluation (shared by inline mode and the forked worker)
# ----------------------------------------------------------------------
def _execute_request(request: JobRequest, cache: Any) -> dict:
    """Evaluate one job into a journal-style cell record.

    The per-job :class:`Budget` (deadline + step ceiling) rides the
    whole pipeline, so an over-budget job returns a valid, explicitly
    degraded partial record instead of hanging.
    """
    from ..harness.cache import run_cell_cached

    budget = None
    if request.deadline_seconds is not None or request.max_steps is not None:
        budget = Budget(wall_seconds=request.deadline_seconds,
                        max_steps=request.max_steps)
    cell, provenance = run_cell_cached(request.benchmark, request.flow,
                                       request.config(), cache=cache,
                                       budget=budget)
    if provenance.get("cell_cache") == "hit":
        return cell_record(cell)
    extra = {k: v for k, v in provenance.items() if k == "cache_key"}
    reasons = tuple(getattr(cell, "degradation", ()))
    if reasons:
        extra["degradation"] = list(reasons)
    return cell_record(cell, provenance=extra)


def _process_worker(spool_root: str, job_id: str, request_dict: dict,
                    cache_dir: Optional[str]) -> None:
    """Forked-worker entry: evaluate, spool the result, exit 0.

    The worker never touches the WAL — the parent is the sole ledger
    writer, mirroring the parallel harness's journal ownership
    protocol.  A raise here exits nonzero, which the parent records as
    the failure.
    """
    from pathlib import Path

    from ..harness.cache import ResultCache
    from ..runtime.chaos import clear_injector

    clear_injector()  # a fork must not replay the parent's chaos plan
    spool = Spool(spool_root)
    request = JobRequest.from_dict(request_dict)
    cache = (ResultCache(cache_dir=Path(cache_dir))
             if cache_dir else None)
    record = _execute_request(request, cache)
    spool.write_result(job_id, record)


# ----------------------------------------------------------------------
# The supervisor
# ----------------------------------------------------------------------
class Supervisor:
    """Crash-recoverable dispatch loop over one spool directory."""

    def __init__(self, spool: Spool, *,
                 workers: int = 1,
                 isolate: bool = False,
                 retry: Optional[RetryPolicy] = None,
                 default_deadline: Optional[float] = None,
                 deadline_grace: float = 2.0,
                 reap_floor_seconds: float = 1.0,
                 poll_seconds: float = 0.05,
                 cache: Any = None,
                 progress: Optional[Callable[[str], None]] = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.spool = spool
        self.workers = max(1, workers)
        self.isolate = isolate or self.workers > 1
        self.retry = retry or RetryPolicy()
        self.default_deadline = default_deadline
        self.deadline_grace = deadline_grace
        self.reap_floor_seconds = reap_floor_seconds
        self.poll_seconds = poll_seconds
        self.cache = cache
        self.progress = progress
        self._sleep = sleep
        self._stop_reason = ""
        self._queue: list[str] = []
        self._due: dict[str, float] = {}
        self._seen: set[str] = set()
        self._states: dict[str, JobState] = {}

    # ------------------------------------------------------------------
    def request_stop(self, reason: str = "stop") -> None:
        """Ask the loop to drain gracefully (signal-handler safe)."""
        if not self._stop_reason:
            self._stop_reason = reason

    def _log(self, message: str) -> None:
        if self.progress:
            self.progress(message)

    def _ledger(self, job_id: str, state: str, *,
                attempt: Optional[int] = None,
                reason: Optional[str] = None,
                recovered: bool = False) -> None:
        self.spool.ledger.append(job_id, state, attempt=attempt,
                                 reason=reason, recovered=recovered)
        detail = f" ({reason})" if reason else ""
        self._log(f"{job_id[:12]} -> {state}{detail}")

    # ------------------------------------------------------------------
    # Queue maintenance
    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        """Fold the WAL and pick up newly submitted jobs (FIFO)."""
        self._states = self.spool.states()
        for job_id, state in self._states.items():
            if state.state == SUBMITTED and job_id not in self._seen:
                self._seen.add(job_id)
                self._queue.append(job_id)

    def _pop_due(self, now: float) -> Optional[str]:
        for index, job_id in enumerate(self._queue):
            if self._due.get(job_id, 0.0) <= now:
                del self._queue[index]
                self._due.pop(job_id, None)
                return job_id
        return None

    def _earliest_wait(self, now: float) -> Optional[float]:
        """Seconds until the next queued job is due (None = queue empty)."""
        if not self._queue:
            return None
        return max(0.0, min(self._due.get(j, 0.0) for j in self._queue)
                   - now)

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def _recover(self, outcome: ServiceOutcome) -> None:
        """Replay the WAL and repair interrupted state.

        * ``running`` + spooled result → adopt as ``done`` (recovered);
          content-addressed ids make adoption exact, so a completed job
          is never evaluated twice.
        * ``running`` without a result → the crash interrupted the
          attempt; re-queue (not charged as a job failure).
        * ``failed`` → re-queue behind its backoff, or quarantine if
          the WAL already shows the circuit-breaker threshold.
        """
        self.spool.ledger.compact()  # repair a torn tail from a hard kill
        for job_id, state in self.spool.states().items():
            if state.state == RUNNING:
                if self.spool.read_result(job_id) is not None:
                    self._ledger(job_id, DONE, recovered=True,
                                 reason="adopted spooled result on restart")
                    outcome.done += 1
                    outcome.recovered += 1
                else:
                    self._ledger(job_id, SUBMITTED,
                                 reason="requeued: interrupted mid-run")
            elif state.state == FAILED:
                if state.failures >= self.retry.max_attempts:
                    self._ledger(job_id, QUARANTINED,
                                 reason=f"{state.failures} consecutive "
                                        f"failures; last: {state.reason}")
                    outcome.quarantined += 1
                else:
                    self._ledger(job_id, SUBMITTED,
                                 reason="requeued: retry pending at restart")
                    self._due[job_id] = (time.monotonic() + backoff_delay(
                        job_id, state.failures, self.retry))

    # ------------------------------------------------------------------
    # Failure path (shared)
    # ------------------------------------------------------------------
    def _failure(self, job_id: str, reason: str,
                 outcome: ServiceOutcome) -> None:
        failures = self._states[job_id].failures + 1 \
            if job_id in self._states else 1
        if failures >= self.retry.max_attempts:
            self._ledger(job_id, QUARANTINED,
                         reason=f"{failures} consecutive failures; "
                                f"last: {reason}")
            outcome.quarantined += 1
            return
        self._ledger(job_id, FAILED, reason=reason)
        delay = backoff_delay(job_id, failures, self.retry)
        self._due[job_id] = time.monotonic() + delay
        self._queue.append(job_id)  # tail: poison cannot starve the rest
        outcome.retried += 1

    # ------------------------------------------------------------------
    # Inline mode
    # ------------------------------------------------------------------
    def _execute_one(self, job_id: str, outcome: ServiceOutcome) -> None:
        chaos_point("service.dequeue", job_id)
        state = self._states.get(job_id)
        if state is not None and state.state == CANCELLED:
            outcome.skipped_cancelled += 1
            self._log(f"{job_id[:12]} skipped (cancelled)")
            return
        attempt = (state.attempts if state else 0) + 1
        self._ledger(job_id, RUNNING, attempt=attempt)
        outcome.processed += 1
        try:
            request = self.spool.request(job_id)
            chaos_point("service.dispatch", job_id)
            record = _execute_request(request, self.cache)
        except ChaosCrash:
            raise  # simulated process death must escape, never be absorbed
        except KeyboardInterrupt:
            self.request_stop("interrupt")
            self._ledger(job_id, SUBMITTED,
                         reason="requeued: interrupted by operator")
            self._seen.discard(job_id)
            return
        except Exception as exc:  # noqa: BLE001 - the retry barrier
            self._failure(job_id, f"{type(exc).__name__}: {exc}", outcome)
            return
        self.spool.write_result(job_id, record)
        chaos_point("service.worker_reap", job_id)
        self._ledger(job_id, DONE, attempt=attempt)
        outcome.done += 1

    def _run_inline(self, outcome: ServiceOutcome,
                    max_jobs: Optional[int],
                    idle_seconds: Optional[float]) -> None:
        idle_deadline: Optional[float] = None
        while not self._stop_reason:
            self._refresh()
            now = time.monotonic()
            job_id = self._pop_due(now)
            if job_id is None:
                wait = self._earliest_wait(now)
                if wait is None:  # nothing queued at all
                    if idle_seconds is not None:
                        if idle_deadline is None:
                            idle_deadline = now + idle_seconds
                        if now >= idle_deadline:
                            break
                    self._sleep(self.poll_seconds)
                else:  # jobs exist but are waiting out a backoff
                    self._sleep(min(wait, self.poll_seconds)
                                if wait > 0 else 0.0)
                continue
            idle_deadline = None
            self._execute_one(job_id, outcome)
            if max_jobs is not None and outcome.processed >= max_jobs:
                break

    # ------------------------------------------------------------------
    # Process mode
    # ------------------------------------------------------------------
    def _spawn(self, job_id: str,
               outcome: ServiceOutcome) -> Optional[_Slot]:
        import multiprocessing

        chaos_point("service.dequeue", job_id)
        state = self._states.get(job_id)
        if state is not None and state.state == CANCELLED:
            outcome.skipped_cancelled += 1
            self._log(f"{job_id[:12]} skipped (cancelled)")
            return None
        attempt = (state.attempts if state else 0) + 1
        self._ledger(job_id, RUNNING, attempt=attempt)
        outcome.processed += 1
        try:
            request = self.spool.request(job_id)
            chaos_point("service.dispatch", job_id)
            cache_dir = (str(self.cache.cache_dir)
                         if self.cache is not None
                         and self.cache.cache_dir is not None else None)
            process = multiprocessing.Process(
                target=_process_worker,
                args=(str(self.spool.root), job_id, request.to_dict(),
                      cache_dir))
            process.daemon = True
            process.start()
        except ChaosCrash:
            raise
        except Exception as exc:  # noqa: BLE001 - the retry barrier
            self._failure(job_id, f"{type(exc).__name__}: {exc}", outcome)
            return None
        deadline = (request.deadline_seconds
                    if request.deadline_seconds is not None
                    else self.default_deadline)
        reap_at = None
        if deadline is not None:
            reap_at = time.monotonic() + max(
                deadline * self.deadline_grace, self.reap_floor_seconds)
        return _Slot(process, attempt, deadline, reap_at)

    def _poll_slots(self, slots: dict[str, _Slot],
                    outcome: ServiceOutcome) -> None:
        now = time.monotonic()
        for job_id in list(slots):
            slot = slots[job_id]
            chaos_point("service.worker_reap", job_id)
            process = slot.process
            if not process.is_alive():
                process.join()
                record = self.spool.read_result(job_id)
                if process.exitcode == 0 and record is not None:
                    self._ledger(job_id, DONE, attempt=slot.attempt)
                    outcome.done += 1
                else:
                    self._failure(
                        job_id,
                        f"worker exited with code {process.exitcode}"
                        + ("" if record is None else
                           " before the result was adopted"), outcome)
                del slots[job_id]
            elif slot.reap_at is not None and now >= slot.reap_at:
                process.terminate()
                process.join(timeout=5.0)
                outcome.reaped += 1
                self._failure(job_id,
                              f"reaped: exceeded deadline "
                              f"{slot.deadline_seconds:g}s x grace "
                              f"{self.deadline_grace:g}", outcome)
                del slots[job_id]

    def _run_pool(self, outcome: ServiceOutcome,
                  max_jobs: Optional[int],
                  idle_seconds: Optional[float]) -> None:
        slots: dict[str, _Slot] = {}
        idle_deadline: Optional[float] = None
        while True:
            self._poll_slots(slots, outcome)
            if self._stop_reason:
                if not slots:
                    break  # graceful drain: live workers have finished
                self._sleep(self.poll_seconds)
                continue
            hit_cap = (max_jobs is not None
                       and outcome.processed >= max_jobs)
            if not hit_cap:
                self._refresh()
                now = time.monotonic()
                while len(slots) < self.workers:
                    if (max_jobs is not None
                            and outcome.processed >= max_jobs):
                        break
                    job_id = self._pop_due(now)
                    if job_id is None:
                        break
                    slot = self._spawn(job_id, outcome)
                    if slot is not None:
                        slots[job_id] = slot
            if not slots:
                if hit_cap:
                    break
                if not self._queue:
                    if idle_seconds is not None:
                        if idle_deadline is None:
                            idle_deadline = (time.monotonic()
                                             + idle_seconds)
                        if time.monotonic() >= idle_deadline:
                            break
                else:
                    idle_deadline = None
            else:
                idle_deadline = None
            self._sleep(self.poll_seconds)

    # ------------------------------------------------------------------
    def run(self, *, max_jobs: Optional[int] = None,
            idle_seconds: Optional[float] = 0.0) -> ServiceOutcome:
        """Recover, then supervise the queue.

        Args:
            max_jobs: stop after this many dispatch attempts (None =
                unbounded) — the chaos scenarios' safety net.
            idle_seconds: once the queue drains, keep polling the spool
                for new submissions this long before exiting (0 = exit
                on drain, None = serve forever / until a signal).

        Returns:
            A :class:`ServiceOutcome` with this run's counters;
            ``stopped_reason`` is set when a stop request (signal)
            ended the run before the queue drained.
        """
        outcome = ServiceOutcome()
        started = time.perf_counter()
        self._stop_reason = ""
        self._queue.clear()
        self._due.clear()
        self._seen.clear()
        self._recover(outcome)
        if self.isolate:
            self._run_pool(outcome, max_jobs, idle_seconds)
        else:
            self._run_inline(outcome, max_jobs, idle_seconds)
        self._refresh()
        outcome.drained = not self._queue
        outcome.stopped_reason = self._stop_reason
        outcome.elapsed_seconds = time.perf_counter() - started
        return outcome


# Re-exported for tests that patch the evaluation seam.
__all__ = ["RetryPolicy", "ServiceOutcome", "Supervisor", "backoff_delay",
           "_execute_request", "_process_worker"]
