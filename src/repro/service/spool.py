"""Filesystem job spool: the service's network-free transport.

A spool directory is the whole wire protocol — ``submit``/``status``/
``result``/``cancel`` work by reading and atomically writing files, so
the service needs no sockets, no serialisation framework and no
external dependencies::

    spool/
      wal.jsonl            # the write-ahead job ledger (Ledger)
      jobs/<id>.json       # one job request per file, atomic write
      results/<id>.json    # one result envelope per finished job
      cache/               # default ResultCache disk tier (supervisor)

Job ids are the existing SHA-256 content hash of DFG + flow + params
(:func:`repro.harness.cache.cell_key`), so identical requests from any
number of clients collapse onto one id: resubmission is an O(1) WAL
no-op, and a completed result is served to every submitter.  A request
naming an unknown benchmark still gets a stable content-hash id (over
the canonical request material) — such poison jobs must flow through
the queue to be quarantined, not crash the submit path.

Results are stored as an envelope around the exact journal cell record
the checkpoint/cache layers use, so a spooled result renders
identically to a live run and byte-identity checks reuse
:func:`~repro.runtime.checkpoint.scrubbed_records`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Optional

from ..runtime.atomic import atomic_write_text
from .ledger import (CANCELLED, FAILED, Ledger, JobState, SUBMITTED,
                     TERMINAL_STATES)

#: Job request file format tag.
JOB_FORMAT = "repro-service-job-v1"

#: Result envelope format tag.
RESULT_FORMAT = "repro-service-result-v1"


@dataclass(frozen=True)
class JobRequest:
    """One synthesis job: an experiment cell plus per-job budgets.

    The optional knobs override the :class:`~repro.harness.experiment.
    ExperimentConfig.quick` defaults for the requested bit width —
    tests and demo jobs shrink fault fractions and random-phase budgets
    to stay fast; production jobs leave them None.
    """

    benchmark: str
    flow: str = "ours"
    bits: int = 8
    #: Per-job wall-clock deadline (seconds); also the reap horizon.
    deadline_seconds: Optional[float] = None
    #: Per-job abstract step ceiling (Budget max_steps).
    max_steps: Optional[int] = None
    fault_fraction: Optional[float] = None
    max_sequences: Optional[int] = None
    saturation: Optional[int] = None
    sequence_length: Optional[int] = None
    max_backtracks: Optional[int] = None

    # ------------------------------------------------------------------
    def config(self) -> Any:
        """The :class:`ExperimentConfig` this request evaluates under."""
        from dataclasses import replace

        from ..harness.experiment import ExperimentConfig

        config = ExperimentConfig.quick(self.bits)
        if self.fault_fraction is not None:
            config = replace(config, fault_fraction=self.fault_fraction)
        if self.max_backtracks is not None:
            config = replace(config, max_backtracks=self.max_backtracks)
        random = config.random
        updates: dict[str, Any] = {}
        if self.max_sequences is not None:
            updates["max_sequences"] = self.max_sequences
        if self.saturation is not None:
            updates["saturation"] = self.saturation
        if self.sequence_length is not None:
            updates["sequence_length"] = self.sequence_length
        if updates:
            config = replace(config, random=replace(random, **updates))
        return config

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobRequest":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


def job_id(request: JobRequest) -> str:
    """The content-hash id of a request.

    For a registered benchmark this is exactly the cell cache key —
    SHA-256 over the canonical DFG, flow, bit width and full
    experiment config (:func:`repro.harness.cache.cell_key`) plus the
    per-job budgets — so a job and its cache entry agree on identity.
    An unknown benchmark cannot be loaded; its id hashes the canonical
    request material instead (stable, but never colliding with a real
    cell key).
    """
    from ..bench import load
    from ..harness.cache import cell_key

    material: dict[str, Any] = {
        "kind": "service-job",
        "deadline_seconds": request.deadline_seconds,
        "max_steps": request.max_steps,
    }
    try:
        dfg = load(request.benchmark)
    except KeyError:
        material["request"] = request.to_dict()
    else:
        material["cell"] = cell_key(dfg, request.flow, request.bits,
                                    request.config())
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class Spool:
    """One service instance's job directory (transport + persistence)."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.results_dir = self.root / "results"
        self.ledger = Ledger(self.root / "wal.jsonl")

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request: JobRequest) -> tuple[str, bool]:
        """Spool a job; returns ``(job_id, newly_queued)``.

        Idempotent by construction: resubmitting identical content
        yields the same id, and only a job the ledger does not already
        track as queued/running/finished gets a new ``submitted``
        transition (a ``cancelled`` job is revived).
        """
        jid = job_id(request)
        path = self.jobs_dir / f"{jid}.json"
        if not path.exists():
            self.jobs_dir.mkdir(parents=True, exist_ok=True)
            atomic_write_text(path, json.dumps(
                {"format": JOB_FORMAT, "id": jid,
                 "request": request.to_dict()}, sort_keys=True) + "\n")
        state = self.ledger.replay().get(jid)
        if state is None or state.state == CANCELLED:
            self.ledger.append(jid, SUBMITTED)
            return jid, True
        return jid, False

    def request(self, jid: str) -> JobRequest:
        """The spooled request of a job (raises KeyError when absent)."""
        path = self.jobs_dir / f"{jid}.json"
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            raise KeyError(f"no spooled request for job {jid!r}") from None
        if not (isinstance(data, dict) and data.get("format") == JOB_FORMAT
                and isinstance(data.get("request"), dict)):
            raise KeyError(f"malformed request file for job {jid!r}")
        return JobRequest.from_dict(data["request"])

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result_path(self, jid: str) -> Path:
        return self.results_dir / f"{jid}.json"

    def write_result(self, jid: str, record: dict) -> None:
        """Atomically spool one finished job's cell record."""
        self.results_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(self.result_path(jid), json.dumps(
            {"format": RESULT_FORMAT, "job": jid, "record": record},
            sort_keys=True) + "\n")

    def read_result(self, jid: str) -> Optional[dict]:
        """A job's spooled cell record, or None (corrupt == absent)."""
        try:
            data = json.loads(self.result_path(jid).read_text())
        except (OSError, ValueError):
            return None
        if (isinstance(data, dict) and data.get("format") == RESULT_FORMAT
                and data.get("job") == jid
                and isinstance(data.get("record"), dict)):
            return data["record"]
        return None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def states(self) -> dict[str, JobState]:
        """The replayed job table, in submit order."""
        return self.ledger.replay()

    def job_ids(self) -> list[str]:
        """Every job the spool knows (ledgered or merely spooled)."""
        ids = list(self.states())
        seen = set(ids)
        if self.jobs_dir.is_dir():
            for path in sorted(self.jobs_dir.glob("*.json")):
                if path.stem not in seen:
                    seen.add(path.stem)
                    ids.append(path.stem)
        return ids

    def resolve(self, prefix: str) -> str:
        """Expand a unique job-id prefix (git-style UX).

        Raises:
            KeyError: no job matches, or the prefix is ambiguous.
        """
        matches = [jid for jid in self.job_ids() if jid.startswith(prefix)]
        if not matches:
            raise KeyError(f"no spooled job matches {prefix!r}")
        if len(matches) > 1:
            raise KeyError(f"ambiguous job prefix {prefix!r} "
                           f"({len(matches)} matches)")
        return matches[0]

    def cancel(self, jid: str, reason: str = "cancelled by user") -> bool:
        """Cancel a queued (or retry-pending) job.

        Only ``submitted`` and ``failed`` jobs can be cancelled — a
        running job finishes (its result is cached work, not waste) and
        terminal states stay terminal.  Returns True when a
        ``cancelled`` transition was committed.
        """
        state = self.states().get(jid)
        if state is None or state.state not in (SUBMITTED, FAILED):
            return False
        self.ledger.append(jid, CANCELLED, reason=reason)
        return True


def is_terminal(state: str) -> bool:
    """True for states a drained queue may end on."""
    return state in TERMINAL_STATES
