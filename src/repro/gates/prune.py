"""Dead-logic pruning: keep only gates that can reach an output.

Word-level constructions sometimes leave unobservable gates behind
(e.g. the final carry of a truncating adder).  Faults on such gates are
untestable by definition and would depress every coverage number, so
fault-universe consumers prune first.

The observable set is computed to a fixpoint: primary outputs are
observable; a gate feeding an observable gate is observable; a DFF's D
cone is observable when the DFF's Q is (its state influences later
cycles).
"""

from __future__ import annotations

from .netlist import GateNetlist, GateType


def observable_gates(netlist: GateNetlist) -> set[int]:
    """Gate ids with a structural path to a primary output."""
    observable: set[int] = set(netlist.outputs.values())
    worklist = list(observable)
    fanin_of = {g.gid: g.fanins for g in netlist.gates}
    while worklist:
        gid = worklist.pop()
        for fin in fanin_of[gid]:
            if fin not in observable:
                observable.add(fin)
                worklist.append(fin)
    return observable


def prune_unobservable(netlist: GateNetlist) -> GateNetlist:
    """A new netlist containing only the observable cone.

    Primary inputs are kept even when dead (the interface is part of
    the circuit); everything else outside the observable set is
    dropped and gate ids are renumbered.
    """
    keep = observable_gates(netlist)
    pruned = GateNetlist(netlist.name)
    mapping: dict[int, int] = {}
    pending_dffs: list[tuple[int, int]] = []
    for gate in netlist.gates:
        if gate.gtype == GateType.INPUT:
            mapping[gate.gid] = pruned.add_input(
                next(n for n, g in netlist.inputs.items() if g == gate.gid))
            continue
        if gate.gid not in keep:
            continue
        if gate.gtype == GateType.DFF:
            mapping[gate.gid] = pruned.add_dff(gate.name)
            pending_dffs.append((gate.gid, gate.fanins[0]))
        else:
            mapping[gate.gid] = pruned.add(
                gate.gtype, tuple(mapping[f] for f in gate.fanins),
                name=gate.name)
    for old_gid, old_d in pending_dffs:
        pruned.connect_dff(mapping[old_gid], mapping[old_d])
    for name, gid in netlist.outputs.items():
        pruned.set_output(name, mapping[gid])
    return pruned
