"""Word-level gate constructions: adders, multipliers, comparators...

Every function takes and returns *words*: lists of gate ids, index 0 =
least-significant bit.  All arithmetic is unsigned and truncates to the
word width, matching :mod:`repro.rtl.semantics` exactly (the gate-level
equivalence tests enforce this bit-for-bit).
"""

from __future__ import annotations

from .netlist import GateNetlist, GateType

Word = list[int]


def const_word(net: GateNetlist, value: int, bits: int) -> Word:
    """A constant word built from CONST0/CONST1 gates."""
    word = []
    for i in range(bits):
        gtype = GateType.CONST1 if (value >> i) & 1 else GateType.CONST0
        word.append(net.add(gtype, name=f"const{value}b{i}"))
    return word


def input_word(net: GateNetlist, name: str, bits: int) -> Word:
    """Declare ``bits`` primary-input bits named ``{name}[i]``."""
    return [net.add_input(f"{name}[{i}]") for i in range(bits)]


def full_adder(net: GateNetlist, a: int, b: int, cin: int) -> tuple[int, int]:
    """(sum, carry-out) of one full-adder cell (9 gates via XOR form)."""
    axb = net.add(GateType.XOR, (a, b))
    s = net.add(GateType.XOR, (axb, cin))
    t1 = net.add(GateType.AND, (a, b))
    t2 = net.add(GateType.AND, (axb, cin))
    cout = net.add(GateType.OR, (t1, t2))
    return s, cout


def ripple_adder(net: GateNetlist, a: Word, b: Word,
                 cin: int | None = None) -> tuple[Word, int]:
    """(sum word, carry-out) of a ripple-carry adder."""
    if cin is None:
        cin = net.add(GateType.CONST0)
    out: Word = []
    carry = cin
    for abit, bbit in zip(a, b):
        s, carry = full_adder(net, abit, bbit, carry)
        out.append(s)
    return out, carry


def negate_word(net: GateNetlist, a: Word) -> Word:
    """Bitwise complement of a word."""
    return [net.add(GateType.NOT, (bit,)) for bit in a]


def subtractor(net: GateNetlist, a: Word, b: Word) -> tuple[Word, int]:
    """(a - b, borrow-free flag).

    The returned flag is the adder's carry-out of ``a + ~b + 1``: 1
    exactly when ``a >= b`` (no borrow).
    """
    cin = net.add(GateType.CONST1)
    diff, carry = ripple_adder(net, a, negate_word(net, b), cin)
    return diff, carry


def equality(net: GateNetlist, a: Word, b: Word) -> int:
    """1-bit a == b."""
    bits = [net.add(GateType.XNOR, (x, y)) for x, y in zip(a, b)]
    result = bits[0]
    for bit in bits[1:]:
        result = net.add(GateType.AND, (result, bit))
    return result


def less_than(net: GateNetlist, a: Word, b: Word) -> int:
    """1-bit unsigned a < b (borrow of the subtractor)."""
    _, no_borrow = subtractor(net, a, b)
    return net.add(GateType.NOT, (no_borrow,))


def array_multiplier(net: GateNetlist, a: Word, b: Word) -> Word:
    """Truncated (low ``len(a)`` bits) unsigned array multiplier."""
    bits = len(a)
    # Partial products: pp[j] = a & b[j], shifted left by j, truncated.
    acc: Word | None = None
    for j in range(bits):
        partial: Word = []
        for i in range(bits - j):
            partial.append(net.add(GateType.AND, (a[i], b[j])))
        if acc is None:
            acc = partial[:]
            continue
        # Add partial << j into acc (only bits j.. matter).
        upper_acc = acc[j:]
        summed, _ = ripple_adder(net, upper_acc, partial)
        acc = acc[:j] + summed
    assert acc is not None
    return acc[:bits]


def mux2_word(net: GateNetlist, sel: int, when1: Word, when0: Word) -> Word:
    """Word-level 2:1 mux: sel ? when1 : when0."""
    nsel = net.add(GateType.NOT, (sel,))
    out: Word = []
    for one, zero in zip(when1, when0):
        t1 = net.add(GateType.AND, (sel, one))
        t0 = net.add(GateType.AND, (nsel, zero))
        out.append(net.add(GateType.OR, (t1, t0)))
    return out


def onehot_mux_word(net: GateNetlist, selects: list[int],
                    words: list[Word]) -> Word:
    """One-hot mux: OR over (select_i AND word_i); all-zero selects -> 0."""
    bits = len(words[0])
    out: Word = []
    for i in range(bits):
        terms = [net.add(GateType.AND, (sel, word[i]))
                 for sel, word in zip(selects, words)]
        acc = terms[0]
        for term in terms[1:]:
            acc = net.add(GateType.OR, (acc, term))
        out.append(acc)
    return out


def gated_word(net: GateNetlist, enable: int, word: Word) -> Word:
    """AND every bit with ``enable``."""
    return [net.add(GateType.AND, (enable, bit)) for bit in word]


def or_words(net: GateNetlist, words: list[Word]) -> Word:
    """Bitwise OR of several words."""
    acc = words[0]
    for word in words[1:]:
        acc = [net.add(GateType.OR, (x, y)) for x, y in zip(acc, word)]
    return acc


def bitwise(net: GateNetlist, gtype: GateType, a: Word, b: Word) -> Word:
    """Bitwise binary operation."""
    return [net.add(gtype, (x, y)) for x, y in zip(a, b)]


def restoring_divider(net: GateNetlist, a: Word, b: Word) -> Word:
    """Unsigned restoring array divider: quotient of a / b.

    Division by zero yields the all-ones quotient (each trial subtract
    "succeeds" because no borrow is ever produced against zero... the
    borrow-free flag is 1 when remainder >= 0 - b = always for b = 0).
    """
    bits = len(a)
    remainder: Word = [net.add(GateType.CONST0) for _ in range(bits)]
    quotient: Word = [0] * bits
    for step in range(bits - 1, -1, -1):
        # remainder = (remainder << 1) | a[step]
        remainder = [a[step]] + remainder[:-1]
        diff, no_borrow = subtractor(net, remainder, b)
        quotient[step] = no_borrow
        remainder = mux2_word(net, no_borrow, diff, remainder)
    return quotient


def barrel_shifter(net: GateNetlist, a: Word, amount: Word,
                   left: bool) -> Word:
    """Shift ``a`` by ``amount mod bits`` using log-stage 2:1 muxes.

    Only the low ``ceil(log2 bits)`` amount bits are consumed, which
    realises the shift-mod-width semantics.
    """
    bits = len(a)
    stages = max(1, (bits - 1).bit_length())
    zero = net.add(GateType.CONST0)
    current = a
    for stage in range(stages):
        distance = 1 << stage
        if distance >= bits:
            break
        shifted: Word = []
        for i in range(bits):
            src = i - distance if left else i + distance
            shifted.append(current[src] if 0 <= src < bits else zero)
        current = mux2_word(net, amount[stage], shifted, current)
    return current
