"""Compiled bit-parallel gate-level simulation.

The netlist is translated once into straight-line Python over plain
integers; every signal carries 64 independent one-bit *lanes*.  A lane
is a pattern (pattern-parallel good simulation) or a fault machine
(parallel-fault simulation: the fault simulator packs the good machine
in lane 0 and up to 63 faulty machines in the rest, injecting each
fault only in its own lane through per-site masks).

Gates are created in topological order (DFF feedback is closed through
the state vector), so evaluation in gate-id order is always correct —
no levelisation pass is needed.
"""

from __future__ import annotations

from typing import Callable

from ..errors import NetlistError
from .netlist import GateNetlist, GateType

#: All 64 lanes set.
FULL = (1 << 64) - 1

#: (python expression template, n-ary reduce operator) per gate type.
_BINOPS = {
    GateType.AND: "&",
    GateType.OR: "|",
    GateType.XOR: "^",
}

#: cycle function signature: (pi, state, nmask, fval) -> (outs, next_state)
CycleFn = Callable[[list[int], list[int], list[int], list[int]],
                   tuple[list[int], list[int]]]


class CompiledCircuit:
    """A gate netlist compiled to fast lane-parallel cycle functions."""

    def __init__(self, netlist: GateNetlist) -> None:
        netlist.check_complete()
        self.netlist = netlist
        #: Primary-input bit names in the order cycle functions expect.
        self.input_names: list[str] = sorted(netlist.inputs)
        #: Primary-output bit names in emission order.
        self.output_names: list[str] = sorted(netlist.outputs)
        #: DFF gate ids in state-vector order.
        self.dff_gids: list[int] = [g.gid for g in netlist.dffs()]
        self._input_gid_to_index = {netlist.inputs[n]: i
                                    for i, n in enumerate(self.input_names)}
        self._dff_gid_to_index = {gid: i
                                  for i, gid in enumerate(self.dff_gids)}
        self._cache: dict[tuple[int, ...], CycleFn] = {}

    @property
    def state_size(self) -> int:
        """Number of state bits."""
        return len(self.dff_gids)

    def zero_state(self) -> list[int]:
        """An all-zero state vector."""
        return [0] * self.state_size

    # ------------------------------------------------------------------
    def cycle_fn(self, fault_sites: tuple[int, ...] = ()) -> CycleFn:
        """A compiled one-cycle function with injection at the sites.

        ``fault_sites`` are gate ids; the returned function applies
        ``v = (v & nmask[k]) | fval[k]`` right after computing site k's
        value, so a caller activates a stuck-at fault in lane ``l`` by
        clearing lane ``l`` of ``nmask[k]`` and setting lane ``l`` of
        ``fval[k]`` to the stuck value.
        """
        key = tuple(sorted(fault_sites))
        if key not in self._cache:
            self._cache[key] = self._compile(key)
        return self._cache[key]

    def _compile(self, fault_sites: tuple[int, ...]) -> CycleFn:
        site_index = {gid: k for k, gid in enumerate(fault_sites)}
        lines = ["def _cycle(pi, state, nmask, fval):"]
        for gate in self.netlist.gates:
            gid, gtype, fanins = gate.gid, gate.gtype, gate.fanins
            if gtype == GateType.INPUT:
                expr = f"pi[{self._input_gid_to_index[gid]}]"
            elif gtype == GateType.CONST0:
                expr = "0"
            elif gtype == GateType.CONST1:
                expr = str(FULL)
            elif gtype == GateType.DFF:
                expr = f"state[{self._dff_gid_to_index[gid]}]"
            elif gtype == GateType.BUF:
                expr = f"v{fanins[0]}"
            elif gtype == GateType.NOT:
                expr = f"v{fanins[0]} ^ {FULL}"
            elif gtype in _BINOPS:
                op = _BINOPS[gtype]
                expr = f" {op} ".join(f"v{f}" for f in fanins)
            elif gtype == GateType.NAND:
                expr = ("(" + " & ".join(f"v{f}" for f in fanins)
                        + f") ^ {FULL}")
            elif gtype == GateType.NOR:
                expr = ("(" + " | ".join(f"v{f}" for f in fanins)
                        + f") ^ {FULL}")
            elif gtype == GateType.XNOR:
                expr = ("(" + " ^ ".join(f"v{f}" for f in fanins)
                        + f") ^ {FULL}")
            else:  # pragma: no cover - enum is exhaustive
                raise NetlistError(f"cannot compile {gtype}")
            lines.append(f"    v{gid} = {expr}")
            if gid in site_index:
                k = site_index[gid]
                lines.append(f"    v{gid} = (v{gid} & nmask[{k}])"
                             f" | fval[{k}]")
        outs = ", ".join(f"v{self.netlist.outputs[name]}"
                         for name in self.output_names)
        nstate = ", ".join(f"v{self.netlist.gates[gid].fanins[0]}"
                           for gid in self.dff_gids)
        lines.append(f"    return [{outs}], [{nstate}]")
        namespace: dict = {}
        exec("\n".join(lines), namespace)  # noqa: S102 - trusted codegen
        return namespace["_cycle"]

    # ------------------------------------------------------------------
    def pack_inputs(self, vectors: dict[str, int]) -> list[int]:
        """Order a name->lanes mapping into the pi list (missing = 0)."""
        return [vectors.get(name, 0) & FULL for name in self.input_names]

    def run(self, sequence: list[dict[str, int]],
            state: list[int] | None = None
            ) -> tuple[list[dict[str, int]], list[int]]:
        """Fault-free simulation of an input sequence.

        Args:
            sequence: one dict of input lanes per cycle.
            state: initial state (default all zeros).

        Returns:
            (per-cycle output dicts, final state).
        """
        fn = self.cycle_fn(())
        state = list(state) if state is not None else self.zero_state()
        nothing: list[int] = []
        outputs = []
        for vectors in sequence:
            outs, state = fn(self.pack_inputs(vectors), state, nothing,
                             nothing)
            outputs.append(dict(zip(self.output_names, outs)))
        return outputs, state
