"""Gate-level netlists.

A :class:`GateNetlist` is a flat list of gates with integer ids, chosen
for simulation speed: the compiled simulator turns the netlist into
straight-line Python over 64-bit integer bit vectors (one bit lane per
pattern or per fault machine).

Gate types: the basic combinational set plus DFF (positive-edge
register bit) and the constant/input pseudo-gates.  Per the paper's
methodology, the controller is assumed modifiable for test (§1), so
control signals (mux selects, load enables, ALU op selects) enter the
netlist as primary inputs and the data path's registers are the only
state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import NetlistError


class GateType(enum.Enum):
    """Supported gate types."""

    INPUT = "input"
    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    DFF = "dff"


#: Types with no fanins.
SOURCE_TYPES = frozenset({GateType.INPUT, GateType.CONST0, GateType.CONST1})
#: Types with exactly one fanin.
UNARY_TYPES = frozenset({GateType.BUF, GateType.NOT, GateType.DFF})


# ----------------------------------------------------------------------
# Structural identity (hash-consing)
# ----------------------------------------------------------------------
# Every gate built through the GateNetlist API is hash-consed into a
# process-global *structural node id*: two gates get the same id
# exactly when the combinational logic below them is identical (same
# type, structurally identical children — child ids are sorted, every
# multi-input type here is commutative).  Launch points collapse to
# fixed keys: all primary inputs are interchangeable for structure, and
# a DFF's key deliberately excludes its D fanin, cutting the sequential
# feedback so keys are well-founded (this also keeps ids valid when
# scan insertion rewires a DFF's D input in place).  The static timing
# analyser keys its cone caches on these ids, which is what makes its
# re-analysis incremental under gate-id renumbering; maintaining them
# here, one O(1) step per add(), means no consumer ever pays a second
# full-netlist pass to recover them.
#
# Ids are only meaningful while ``len(netlist.nids) == len(gates)`` —
# growing ``gates`` behind the API's back (as some lint tests do, to
# forge degenerate netlists) desyncs the lists, which consumers detect
# by exactly that length comparison.

#: Child-id ceiling for packed two-input keys (tuples beyond it).
_PACK_LIMIT = 1 << 24
#: Launch-point keys: small even ints (combinational keys are odd).
STRUCT_KEY_INPUT = 0
STRUCT_KEY_CONST0 = 2
STRUCT_KEY_CONST1 = 4
#: DFF keys by ternary seed value (None = free-running state bit).
STRUCT_DFF_KEYS = {None: 6, 0: 8, 1: 10}

#: Gate-type index used in packed keys (stable: enum definition order,
#: so combinational types are 3..10 and fit the 5-bit type field).
#: Keyed by ``id()`` of the (permanent, singleton) enum members because
#: ``Enum.__hash__`` is a Python-level call — one per gate adds up.
_TCODE_ID = {id(t): i for i, t in enumerate(GateType)}
_CODE_INPUT = _TCODE_ID[id(GateType.INPUT)]
_CODE_CONST0 = _TCODE_ID[id(GateType.CONST0)]
_CODE_DFF = _TCODE_ID[id(GateType.DFF)]

#: The process-global hash-cons table: structural key -> dense node id.
_struct_intern: dict[object, int] = {
    STRUCT_KEY_INPUT: 0, STRUCT_KEY_CONST0: 1, STRUCT_KEY_CONST1: 2,
    STRUCT_DFF_KEYS[None]: 3, STRUCT_DFF_KEYS[0]: 4, STRUCT_DFF_KEYS[1]: 5,
}


def intern_structural(key: object) -> int:
    """The dense node id of one structural key (allocating if new)."""
    nid = _struct_intern.get(key)
    if nid is None:
        nid = len(_struct_intern)
        _struct_intern[key] = nid
    return nid


def structural_key(gtype: GateType, child_nids: tuple[int, ...] = (),
                   dff_seed: int | None = None) -> object:
    """The structural key of one gate over its children's node ids.

    One/two-input combinational gates pack (sorted child ids, type
    index) into a single odd int — tuple building and hashing per gate
    would triple the cost of every consumer's hot loop; wider gates
    fall back to tuples.  ``dff_seed`` distinguishes DFFs proved stuck
    at a reset-reachable constant (the timing analyser's optional
    sequential seeding) from free-running ones.
    """
    t = _TCODE_ID[id(gtype)]
    if 3 <= t <= 10:
        children = sorted(child_nids)
        if len(children) == 2 and children[1] < _PACK_LIMIT:
            a, b = children
            return (((a << 24) + b) << 6) + (t << 1) + 1
        if len(children) == 1:
            return (children[0] << 6) + (t << 1) + 1
        return (t, *children)
    if t == _CODE_INPUT:
        return STRUCT_KEY_INPUT
    if t == _CODE_DFF:
        return STRUCT_DFF_KEYS[dff_seed]
    return STRUCT_KEY_CONST0 if t == _CODE_CONST0 else STRUCT_KEY_CONST1


@dataclass(frozen=True)
class Gate:
    """One gate: an output net driven by ``gtype`` over ``fanins``."""

    gid: int
    gtype: GateType
    fanins: tuple[int, ...]
    name: str = ""


class GateNetlist:
    """A flat gate-level netlist with named primary I/O."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.gates: list[Gate] = []
        #: Primary input name -> gate id (GateType.INPUT).
        self.inputs: dict[str, int] = {}
        #: Primary output name -> driving gate id.
        self.outputs: dict[str, int] = {}
        #: Structural node id per gate (see the hash-consing note
        #: above); valid only while as long as ``gates`` — forged
        #: appends desync the lengths and analyses must recompute.
        self.nids: list[int] = []
        #: Gate ids of DFFs, in creation order.
        self.dff_gids: list[int] = []

    # ------------------------------------------------------------------
    def add(self, gtype: GateType, fanins: tuple[int, ...] = (),
            name: str = "") -> int:
        """Append a gate and return its id."""
        if gtype in SOURCE_TYPES and fanins:
            raise NetlistError(f"{gtype} takes no fanins")
        if gtype in UNARY_TYPES and len(fanins) != 1:
            raise NetlistError(f"{gtype} takes exactly one fanin")
        if gtype not in SOURCE_TYPES and not fanins:
            raise NetlistError(f"{gtype} needs fanins")
        for fin in fanins:
            if not (0 <= fin < len(self.gates)):
                raise NetlistError(f"fanin {fin} does not exist yet "
                                   f"(gates are added in topological order)")
        gid = len(self.gates)
        self.gates.append(Gate(gid, gtype, tuple(fanins), name))
        nids = self.nids
        if gtype is GateType.DFF:
            self.dff_gids.append(gid)
            nids.append(intern_structural(STRUCT_DFF_KEYS[None]))
        else:
            key = structural_key(gtype, tuple(nids[f] for f in fanins))
            nids.append(intern_structural(key))
        return gid

    def add_input(self, name: str) -> int:
        """Declare a primary input bit."""
        if name in self.inputs:
            raise NetlistError(f"duplicate input {name!r}")
        gid = self.add(GateType.INPUT, name=name)
        self.inputs[name] = gid
        return gid

    def add_dff(self, name: str = "") -> int:
        """Create a state bit whose D input is connected later.

        DFF Q outputs are usable immediately (reads of last cycle's
        state); :meth:`connect_dff` closes the feedback once the D-side
        logic exists.
        """
        gid = len(self.gates)
        self.gates.append(Gate(gid, GateType.DFF, (), name))
        self.nids.append(intern_structural(STRUCT_DFF_KEYS[None]))
        self.dff_gids.append(gid)
        return gid

    def connect_dff(self, gid: int, d_input: int) -> None:
        """Connect the D input of a DFF created by :meth:`add_dff`."""
        gate = self.gates[gid]
        if gate.gtype != GateType.DFF:
            raise NetlistError(f"gate {gid} is not a DFF")
        if gate.fanins:
            raise NetlistError(f"DFF {gid} already connected")
        if not (0 <= d_input < len(self.gates)):
            raise NetlistError(f"DFF {gid}: unknown D driver {d_input}")
        self.gates[gid] = Gate(gid, GateType.DFF, (d_input,), gate.name)

    def check_complete(self) -> None:
        """Raise NetlistError on floating DFFs or combinational cycles.

        Floating-DFF detection delegates to the shared lint-rule
        implementation (``GAT001``) and reports every floating DFF, not
        just the first; cycle detection shares
        :func:`combinational_cycle` with rule ``GAT002`` and the static
        timing analyser's levelizer, and reports the offending gate ids.
        """
        from ..lint.rules_gates import floating_dffs
        floating = floating_dffs(self)
        if floating:
            detail = "; ".join(f"DFF {g.gid} ({g.name!r}) has no D input"
                               for g in floating)
            raise NetlistError(f"{self.name}: {detail}")
        cycle = combinational_cycle(self)
        if cycle:
            chain = " -> ".join(str(g) for g in cycle)
            raise NetlistError(f"{self.name}: combinational cycle through "
                               f"gates {chain}")

    def set_output(self, name: str, gid: int) -> None:
        """Declare a primary output bit driven by gate ``gid``."""
        if name in self.outputs:
            raise NetlistError(f"duplicate output {name!r}")
        if not (0 <= gid < len(self.gates)):
            raise NetlistError(f"output {name!r} driven by unknown gate")
        self.outputs[name] = gid

    # ------------------------------------------------------------------
    def dffs(self) -> list[Gate]:
        """All state elements, in id order."""
        return [g for g in self.gates if g.gtype == GateType.DFF]

    def combinational_count(self) -> int:
        """Number of combinational (non-source, non-DFF) gates."""
        return sum(1 for g in self.gates
                   if g.gtype not in SOURCE_TYPES
                   and g.gtype != GateType.DFF)

    def fanout_counts(self) -> list[int]:
        """Fanout count per gate id."""
        counts = [0] * len(self.gates)
        for gate in self.gates:
            for fin in gate.fanins:
                counts[fin] += 1
        for gid in self.outputs.values():
            counts[gid] += 1
        return counts

    def stats(self) -> dict[str, int]:
        """Headline sizes used by reports and tests."""
        return {
            "gates": len(self.gates),
            "combinational": self.combinational_count(),
            "dffs": len(self.dffs()),
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
        }

    def __len__(self) -> int:
        return len(self.gates)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        s = self.stats()
        return (f"GateNetlist({self.name!r}, {s['gates']} gates, "
                f"{s['dffs']} dffs, {s['inputs']} PIs, {s['outputs']} POs)")


def combinational_cycle(netlist: GateNetlist) -> list[int]:
    """One combinational cycle as a gate-id list, or [] when none exists.

    Edges run from fanin to gate; DFFs break timing loops, so edges into
    a DFF's D input are excluded.  :meth:`GateNetlist.add` cannot create
    a cycle (fanins must already exist), so this only fires on netlists
    assembled or transformed by other means — which is exactly where
    :meth:`GateNetlist.check_complete`, lint rule ``GAT002`` and the
    static timing levelizer (which all share this function) need it.
    """
    gates = netlist.gates
    n = len(gates)
    # Fast path: gates appended through add() only reference earlier
    # gates, and DFF feedback edges are excluded — when every
    # combinational fanin precedes its gate, gid order is already
    # topological and no cycle can exist.  One scan of int compares
    # settles the common case without the DFS bookkeeping (the static
    # timing analyser runs this check on every analysis).
    for gate in gates:
        if gate.gtype is GateType.DFF:
            continue
        gid = gate.gid
        for fin in gate.fanins:
            if fin >= gid:
                break
        else:
            continue
        break
    else:
        return []
    white, grey, black = 0, 1, 2
    colour = [white] * n
    for root in range(n):
        if colour[root] != white:
            continue
        stack: list[tuple[int, int]] = [(root, 0)]
        colour[root] = grey
        path = [root]
        while stack:
            gid, idx = stack[-1]
            gate = netlist.gates[gid]
            fanins = (() if gate.gtype is GateType.DFF else
                      tuple(f for f in gate.fanins if 0 <= f < n))
            if idx < len(fanins):
                stack[-1] = (gid, idx + 1)
                child = fanins[idx]
                if colour[child] == grey:
                    return path[path.index(child):] + [child]
                if colour[child] == white:
                    colour[child] = grey
                    stack.append((child, 0))
                    path.append(child)
            else:
                colour[gid] = black
                stack.pop()
                path.pop()
    return []
