"""Gate-level netlists.

A :class:`GateNetlist` is a flat list of gates with integer ids, chosen
for simulation speed: the compiled simulator turns the netlist into
straight-line Python over 64-bit integer bit vectors (one bit lane per
pattern or per fault machine).

Gate types: the basic combinational set plus DFF (positive-edge
register bit) and the constant/input pseudo-gates.  Per the paper's
methodology, the controller is assumed modifiable for test (§1), so
control signals (mux selects, load enables, ALU op selects) enter the
netlist as primary inputs and the data path's registers are the only
state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import NetlistError


class GateType(enum.Enum):
    """Supported gate types."""

    INPUT = "input"
    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    DFF = "dff"


#: Types with no fanins.
SOURCE_TYPES = frozenset({GateType.INPUT, GateType.CONST0, GateType.CONST1})
#: Types with exactly one fanin.
UNARY_TYPES = frozenset({GateType.BUF, GateType.NOT, GateType.DFF})


@dataclass(frozen=True)
class Gate:
    """One gate: an output net driven by ``gtype`` over ``fanins``."""

    gid: int
    gtype: GateType
    fanins: tuple[int, ...]
    name: str = ""


class GateNetlist:
    """A flat gate-level netlist with named primary I/O."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.gates: list[Gate] = []
        #: Primary input name -> gate id (GateType.INPUT).
        self.inputs: dict[str, int] = {}
        #: Primary output name -> driving gate id.
        self.outputs: dict[str, int] = {}

    # ------------------------------------------------------------------
    def add(self, gtype: GateType, fanins: tuple[int, ...] = (),
            name: str = "") -> int:
        """Append a gate and return its id."""
        if gtype in SOURCE_TYPES and fanins:
            raise NetlistError(f"{gtype} takes no fanins")
        if gtype in UNARY_TYPES and len(fanins) != 1:
            raise NetlistError(f"{gtype} takes exactly one fanin")
        if gtype not in SOURCE_TYPES and not fanins:
            raise NetlistError(f"{gtype} needs fanins")
        for fin in fanins:
            if not (0 <= fin < len(self.gates)):
                raise NetlistError(f"fanin {fin} does not exist yet "
                                   f"(gates are added in topological order)")
        gid = len(self.gates)
        self.gates.append(Gate(gid, gtype, tuple(fanins), name))
        return gid

    def add_input(self, name: str) -> int:
        """Declare a primary input bit."""
        if name in self.inputs:
            raise NetlistError(f"duplicate input {name!r}")
        gid = self.add(GateType.INPUT, name=name)
        self.inputs[name] = gid
        return gid

    def add_dff(self, name: str = "") -> int:
        """Create a state bit whose D input is connected later.

        DFF Q outputs are usable immediately (reads of last cycle's
        state); :meth:`connect_dff` closes the feedback once the D-side
        logic exists.
        """
        gid = len(self.gates)
        self.gates.append(Gate(gid, GateType.DFF, (), name))
        return gid

    def connect_dff(self, gid: int, d_input: int) -> None:
        """Connect the D input of a DFF created by :meth:`add_dff`."""
        gate = self.gates[gid]
        if gate.gtype != GateType.DFF:
            raise NetlistError(f"gate {gid} is not a DFF")
        if gate.fanins:
            raise NetlistError(f"DFF {gid} already connected")
        if not (0 <= d_input < len(self.gates)):
            raise NetlistError(f"DFF {gid}: unknown D driver {d_input}")
        self.gates[gid] = Gate(gid, GateType.DFF, (d_input,), gate.name)

    def check_complete(self) -> None:
        """Raise NetlistError when any DFF is left unconnected.

        Delegates to the shared lint-rule implementation (``GAT001``)
        and reports every floating DFF, not just the first.
        """
        from ..lint.rules_gates import floating_dffs
        floating = floating_dffs(self)
        if floating:
            detail = "; ".join(f"DFF {g.gid} ({g.name!r}) has no D input"
                               for g in floating)
            raise NetlistError(f"{self.name}: {detail}")

    def set_output(self, name: str, gid: int) -> None:
        """Declare a primary output bit driven by gate ``gid``."""
        if name in self.outputs:
            raise NetlistError(f"duplicate output {name!r}")
        if not (0 <= gid < len(self.gates)):
            raise NetlistError(f"output {name!r} driven by unknown gate")
        self.outputs[name] = gid

    # ------------------------------------------------------------------
    def dffs(self) -> list[Gate]:
        """All state elements, in id order."""
        return [g for g in self.gates if g.gtype == GateType.DFF]

    def combinational_count(self) -> int:
        """Number of combinational (non-source, non-DFF) gates."""
        return sum(1 for g in self.gates
                   if g.gtype not in SOURCE_TYPES
                   and g.gtype != GateType.DFF)

    def fanout_counts(self) -> list[int]:
        """Fanout count per gate id."""
        counts = [0] * len(self.gates)
        for gate in self.gates:
            for fin in gate.fanins:
                counts[fin] += 1
        for gid in self.outputs.values():
            counts[gid] += 1
        return counts

    def stats(self) -> dict[str, int]:
        """Headline sizes used by reports and tests."""
        return {
            "gates": len(self.gates),
            "combinational": self.combinational_count(),
            "dffs": len(self.dffs()),
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
        }

    def __len__(self) -> int:
        return len(self.gates)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        s = self.stats()
        return (f"GateNetlist({self.name!r}, {s['gates']} gates, "
                f"{s['dffs']} dffs, {s['inputs']} PIs, {s['outputs']} POs)")
