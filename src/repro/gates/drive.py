"""Drive a gate-level data path through its functional schedule.

Turns a design's control table into per-cycle primary-input assignments
for the expanded gate netlist, and reads word-level results back from
the output bits — the glue used by the RTL↔gate equivalence tests and
by the ATPG's functional warm-up sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..etpn.design import Design
from ..rtl.components import RTLDesign
from ..rtl.controller import ControlTable
from .simulate import FULL, CompiledCircuit


def broadcast(bit: int) -> int:
    """Replicate one logical bit into all 64 lanes."""
    return FULL if bit else 0


def functional_vectors(rtl: RTLDesign, table: ControlTable,
                       inputs: dict[str, int]) -> list[dict[str, int]]:
    """Per-cycle gate-input lanes for one schedule traversal.

    Data ports hold their word value throughout; control signals follow
    the control table.  All 64 lanes carry the same pattern.
    """
    port_bits: dict[str, int] = {}
    for port in rtl.in_ports:
        var = port.removeprefix("in_")
        value = inputs[var]
        for i in range(rtl.bits):
            port_bits[f"{port}[{i}]"] = broadcast((value >> i) & 1)
    vectors = []
    for phase in range(table.phase_count):
        cycle = dict(port_bits)
        for signal, value in table.phases[phase].items():
            cycle[signal] = broadcast(value)
        vectors.append(cycle)
    return vectors


def read_word(outputs: dict[str, int], port: str, bits: int) -> int:
    """Reassemble a word from output bit lanes (lane 0)."""
    word = 0
    for i in range(bits):
        if outputs[f"{port}[{i}]"] & 1:
            word |= 1 << i
    return word


@dataclass
class GateRunResult:
    """Word-level results of one gate-level schedule traversal."""

    outputs: dict[str, int] = field(default_factory=dict)
    conditions: dict[str, int] = field(default_factory=dict)


def run_functional(design: Design, rtl: RTLDesign, table: ControlTable,
                   circuit: CompiledCircuit,
                   inputs: dict[str, int]) -> GateRunResult:
    """Execute one schedule traversal on the gate netlist.

    Output words are sampled at the cycle after their final definition
    (registers may be reused by later variables); condition bits are
    sampled in the cycle their comparison executes.
    """
    vectors = functional_vectors(rtl, table, inputs)
    # One extra all-idle cycle so post-final-phase state is observable.
    vectors.append({name: broadcast(bit)
                    for name, bit in _port_hold(rtl, inputs).items()})
    per_cycle, _ = circuit.run(vectors)

    result = GateRunResult()
    for cond_port in rtl.cond_ports:
        cond = cond_port.removeprefix("cond_")
        def_op = design.dfg.defs_of(cond)[0]
        cycle = design.steps[def_op] + 1
        result.conditions[cond_port] = per_cycle[cycle][cond_port] & 1
    for out_port in rtl.out_ports:
        var = out_port.removeprefix("out_")
        defs = design.dfg.defs_of(var)
        sample_phase = max(design.steps[d] for d in defs) + 1 if defs else 0
        # State after phase p is visible in the outputs of cycle p+1.
        cycle = sample_phase + 1
        result.outputs[out_port] = read_word(per_cycle[cycle], out_port,
                                             rtl.bits)
    return result


def _port_hold(rtl: RTLDesign, inputs: dict[str, int]) -> dict[str, int]:
    bits: dict[str, int] = {}
    for port in rtl.in_ports:
        var = port.removeprefix("in_")
        for i in range(rtl.bits):
            bits[f"{port}[{i}]"] = (inputs[var] >> i) & 1
    return bits
