"""Shared ternary (0/1/X) gate evaluation.

One three-valued evaluator serves two engines: the ATPG fault pruner's
sequential constant propagation (:mod:`repro.atpg.prune`) and the
static timing analyser's false-path pruning
(:mod:`repro.analysis.timing.engine`).  Both need the identical
controlling-value semantics — a 0 on any AND input or a 1 on any OR
input decides the output regardless of the X inputs — so the timing
engine's "provably constant, carries no transition" judgement agrees
gate-for-gate with the pruner's "provably untestable" one.
"""

from __future__ import annotations

from typing import Optional

from .netlist import GateType

#: Ternary line value: 0, 1 or None (X = unknown).
Ternary = Optional[int]


def eval_gate(gtype: GateType, values: list[Ternary]) -> Ternary:
    """Ternary evaluation of one combinational gate."""
    if gtype is GateType.BUF:
        return values[0]
    if gtype is GateType.NOT:
        v = values[0]
        return None if v is None else 1 - v
    if gtype in (GateType.AND, GateType.NAND):
        if any(v == 0 for v in values):
            out: Ternary = 0
        elif all(v == 1 for v in values):
            out = 1
        else:
            out = None
        if gtype is GateType.NAND and out is not None:
            out = 1 - out
        return out
    if gtype in (GateType.OR, GateType.NOR):
        if any(v == 1 for v in values):
            out = 1
        elif all(v == 0 for v in values):
            out = 0
        else:
            out = None
        if gtype is GateType.NOR and out is not None:
            out = 1 - out
        return out
    if gtype in (GateType.XOR, GateType.XNOR):
        if any(v is None for v in values):
            return None
        acc = 0
        for v in values:
            acc ^= v  # type: ignore[operator]
        return acc if gtype is GateType.XOR else 1 - acc
    raise ValueError(f"not a combinational gate: {gtype}")  # pragma: no cover
