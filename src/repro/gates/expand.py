"""Expand word-level RTL into a gate-level netlist.

The produced circuit is the *data path under test*: data ports and all
control signals (mux selects, load enables, ALU op selects) are primary
inputs — the paper assumes the controller is modified to support the
test plan — and output ports plus condition lines are primary outputs.
Registers become DFF bits with load-enable feedback muxes, so the
circuit is genuinely sequential: justifying a deep register still takes
multiple time frames, which is exactly the effect the paper's
sequential testability measures model.
"""

from __future__ import annotations

from ..dfg.ops import OpKind
from ..errors import NetlistError
from ..rtl.components import RTLDesign, Ref
from .netlist import GateNetlist, GateType
from .words import (Word, array_multiplier, barrel_shifter, bitwise,
                    const_word, equality, gated_word, input_word, less_than,
                    mux2_word, onehot_mux_word, or_words, restoring_divider,
                    ripple_adder, subtractor)


def _op_word(net: GateNetlist, kind: OpKind, a: Word, b: Word) -> Word:
    """The result word of one operation kind (comparisons in bit 0)."""
    bits = len(a)
    zero_pad = lambda bit: [bit] + [net.add(GateType.CONST0)
                                    for _ in range(bits - 1)]
    if kind == OpKind.ADD:
        return ripple_adder(net, a, b)[0]
    if kind == OpKind.SUB:
        return subtractor(net, a, b)[0]
    if kind == OpKind.MUL:
        return array_multiplier(net, a, b)
    if kind == OpKind.DIV:
        return restoring_divider(net, a, b)
    if kind == OpKind.LT:
        return zero_pad(less_than(net, a, b))
    if kind == OpKind.GT:
        return zero_pad(less_than(net, b, a))
    if kind == OpKind.LE:
        return zero_pad(net.add(GateType.NOT, (less_than(net, b, a),)))
    if kind == OpKind.GE:
        return zero_pad(net.add(GateType.NOT, (less_than(net, a, b),)))
    if kind == OpKind.EQ:
        return zero_pad(equality(net, a, b))
    if kind == OpKind.NE:
        return zero_pad(net.add(GateType.NOT, (equality(net, a, b),)))
    if kind == OpKind.AND:
        return bitwise(net, GateType.AND, a, b)
    if kind == OpKind.OR:
        return bitwise(net, GateType.OR, a, b)
    if kind == OpKind.XOR:
        return bitwise(net, GateType.XOR, a, b)
    if kind == OpKind.NOT:
        return [net.add(GateType.NOT, (bit,)) for bit in a]
    if kind == OpKind.SHL:
        return barrel_shifter(net, a, b, left=True)
    if kind == OpKind.SHR:
        return barrel_shifter(net, a, b, left=False)
    if kind == OpKind.MOVE:
        return list(a)
    raise NetlistError(f"no gate expansion for {kind!r}")


class _Expander:
    """Builds the gate netlist for one RTL design.

    With ``table=None`` every control signal becomes a primary input
    (the fully-test-plan-controlled model).  With a control table, an
    FSM phase counter is embedded and control signals are decoded from
    it — the design is then tested *through its schedule*, so register
    sequential depth costs real time frames, which is the setting where
    the paper's testability differences materialise.
    """

    def __init__(self, rtl: RTLDesign, table=None) -> None:
        self.rtl = rtl
        self.table = table
        self.net = GateNetlist(rtl.name)
        self.bits = rtl.bits
        self._ports: dict[str, Word] = {}
        self._controls: dict[str, int] = {}
        self._registers: dict[str, Word] = {}
        self._consts: dict[int, Word] = {}
        self._units: dict[str, Word] = {}
        self._fsm_dffs: list[int] = []
        self._phase_bits: list[int] = []

    def run(self) -> GateNetlist:
        net, bits = self.net, self.bits
        for port in self.rtl.in_ports:
            self._ports[port] = input_word(net, port, bits)
        if self.table is None:
            for signal in self.rtl.control_signals():
                self._controls[signal] = net.add_input(signal)
        else:
            self._build_fsm_controls()
        # DFFs first so unit logic can read register outputs.
        for reg_id in sorted(self.rtl.registers):
            self._registers[reg_id] = [net.add_dff(f"{reg_id}[{i}]")
                                       for i in range(bits)]
        for unit_id in sorted(self.rtl.units):
            self._units[unit_id] = self._expand_unit(unit_id)
        for reg_id in sorted(self.rtl.registers):
            self._close_register(reg_id)
        for out_port, reg_id in sorted(self.rtl.out_ports.items()):
            for i, gid in enumerate(self._registers[reg_id]):
                net.set_output(f"{out_port}[{i}]", gid)
        for cond_port, unit_id in sorted(self.rtl.cond_ports.items()):
            net.set_output(cond_port, self._units[unit_id][0])
        net.check_complete()
        return net

    def _build_fsm_controls(self) -> None:
        """Embed the phase counter and decode every control signal.

        Phase indicators: S_p (a DFF) for phases 1..P-1 plus
        ``phase0 = NOR(S_1..S_{P-1})``, which makes the all-zero reset
        state phase 0 and lets the one-hot ring wrap for free (after
        phase P-1 every S goes 0, so phase0 re-asserts).
        """
        net = self.net
        phases = self.table.phase_count
        s_bits = [net.add_dff(f"fsm_s{p}") for p in range(1, phases)]
        self._fsm_dffs = s_bits
        if s_bits:
            phase0 = (net.add(GateType.NOT, (s_bits[0],))
                      if len(s_bits) == 1
                      else net.add(GateType.NOR, tuple(s_bits)))
        else:
            phase0 = net.add(GateType.CONST1)
        self._phase_bits = [phase0] + s_bits
        # Ring: S_1.D = phase0, S_p.D = S_{p-1}.
        for index, dff in enumerate(s_bits):
            net.connect_dff(dff, self._phase_bits[index])
        zero = net.add(GateType.CONST0)
        for signal in self.rtl.control_signals():
            hot = [self._phase_bits[p] for p in range(phases)
                   if self.table.phases[p].get(signal)]
            if not hot:
                self._controls[signal] = zero
            elif len(hot) == 1:
                self._controls[signal] = hot[0]
            else:
                self._controls[signal] = net.add(GateType.OR, tuple(hot))

    # ------------------------------------------------------------------
    def _resolve(self, ref: Ref) -> Word:
        if ref.kind == "reg":
            return self._registers[ref.ident]
        if ref.kind == "port":
            return self._ports[ref.ident]
        if ref.kind == "const":
            value = int(ref.ident)
            if value not in self._consts:
                self._consts[value] = const_word(self.net, value, self.bits)
            return self._consts[value]
        if ref.kind == "unit":
            # Unit-to-unit chaining never occurs: every operand comes
            # from a register, port or constant (the DFG is registered).
            raise NetlistError(f"unit operand {ref} not supported")
        raise NetlistError(f"unknown ref {ref}")

    def _port_word(self, unit_id: str, port: int) -> Word:
        unit = self.rtl.units[unit_id]
        sources = unit.port_sources[port]
        words = [self._resolve(ref) for ref in sources]
        if len(words) == 1:
            return words[0]
        selects = [self._controls[unit.select_signal(port, i)]
                   for i in range(len(sources))]
        return onehot_mux_word(self.net, selects, words)

    def _expand_unit(self, unit_id: str) -> Word:
        unit = self.rtl.units[unit_id]
        ports = sorted(unit.port_sources)
        a = self._port_word(unit_id, ports[0])
        b = (self._port_word(unit_id, ports[1]) if len(ports) > 1
             else const_word(self.net, 0, self.bits))
        if not unit.needs_op_select():
            return _op_word(self.net, unit.kinds[0], a, b)
        results = []
        for kind in unit.kinds:
            enable = self._controls[unit.op_signal(kind)]
            results.append(gated_word(self.net, enable,
                                      _op_word(self.net, kind, a, b)))
        return or_words(self.net, results)

    def _close_register(self, reg_id: str) -> None:
        spec = self.rtl.registers[reg_id]
        q = self._registers[reg_id]
        words = []
        for ref in spec.sources:
            words.append(self._units[ref.ident] if ref.kind == "unit"
                         else self._resolve(ref))
        if spec.needs_mux():
            selects = [self._controls[spec.select_signal(i)]
                       for i in range(len(spec.sources))]
            data = onehot_mux_word(self.net, selects, words)
        else:
            data = words[0]
        load = self._controls[spec.load_signal()]
        d = mux2_word(self.net, load, data, q)
        for dff, din in zip(q, d):
            self.net.connect_dff(dff, din)


def expand_to_gates(rtl: RTLDesign) -> GateNetlist:
    """Expand RTL to gates with control signals as primary inputs."""
    return _Expander(rtl).run()


def expand_with_controller(rtl: RTLDesign, table) -> GateNetlist:
    """Expand RTL to gates with the FSM controller embedded.

    Only the data ports remain primary inputs; the machine marches
    through its control table (wrapping from the last phase back to
    phase 0), so testing happens through the functional schedule — the
    setting in which the paper's sequential-depth arguments bite.
    """
    return _Expander(rtl, table).run()
