"""Gate-level substrate: netlists, bit-width expansion and simulation."""

from .expand import expand_to_gates, expand_with_controller
from .netlist import Gate, GateNetlist, GateType
from .prune import observable_gates, prune_unobservable
from .vcd import dump_vcd
from .verilog import netlist_to_verilog
from .simulate import FULL, CompiledCircuit

__all__ = [
    "FULL",
    "CompiledCircuit",
    "Gate",
    "GateNetlist",
    "GateType",
    "expand_to_gates",
    "expand_with_controller",
    "dump_vcd",
    "netlist_to_verilog",
    "observable_gates",
    "prune_unobservable",
]
