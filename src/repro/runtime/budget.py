"""Cooperative effort budgets for the long-running kernels.

The paper's headline metric is test-generation effort under *bounded*
search (PODEM backtrack limits, §5) — the same discipline every other
long loop in the pipeline should obey.  A :class:`Budget` carries a
wall-clock deadline, an abstract step ceiling and a cooperative
cancellation flag; the PODEM search, the random test-generation phase,
fault simulation, the reachability BFS and the merger loop all
:meth:`charge` it as they work and stop *cleanly* once it is exhausted,
returning a well-formed partial result tagged with
``budget_exhausted`` provenance instead of hanging or raising.

Budgets are sticky: once exhausted (for any reason) they stay
exhausted, so a budget threaded through several stages shuts the whole
pipeline down the moment any stage drains it.  Wall-clock checks are
amortised — the monotonic clock is read once every
:data:`CLOCK_CHECK_INTERVAL` charged steps — so charging is cheap
enough for per-iteration use inside the PODEM decision loop.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

#: Steps between reads of the monotonic clock while charging.
CLOCK_CHECK_INTERVAL = 256

#: Exhaustion reasons, also used as provenance tags.
REASON_DEADLINE = "deadline"
REASON_STEPS = "steps"
REASON_CANCELLED = "cancelled"


class Budget:
    """A wall-clock / step budget shared by cooperating loops.

    Attributes:
        wall_seconds: wall-clock allowance, or None for unlimited time.
        max_steps: abstract step ceiling, or None for unlimited steps.
            Steps are whatever unit the charging loop finds natural
            (PODEM decisions, simulated cycles, explored markings...).
    """

    __slots__ = ("wall_seconds", "max_steps", "steps", "_clock",
                 "_deadline", "_reason", "_next_clock_check")

    def __init__(self, wall_seconds: float | None = None,
                 max_steps: int | None = None, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.wall_seconds = wall_seconds
        self.max_steps = max_steps
        self.steps = 0
        self._clock = clock
        self._deadline = (None if wall_seconds is None
                          else clock() + wall_seconds)
        self._reason: Optional[str] = None
        self._next_clock_check = 0

    @classmethod
    def unlimited(cls) -> "Budget":
        """A budget that never exhausts (cancellation still works)."""
        return cls()

    # ------------------------------------------------------------------
    def charge(self, steps: int = 1) -> bool:
        """Record ``steps`` units of work; True while within budget."""
        if self._reason is not None:
            return False
        self.steps += steps
        if self.max_steps is not None and self.steps > self.max_steps:
            self._reason = REASON_STEPS
            return False
        if self._deadline is not None and self.steps >= self._next_clock_check:
            self._next_clock_check = self.steps + CLOCK_CHECK_INTERVAL
            if self._clock() > self._deadline:
                self._reason = REASON_DEADLINE
                return False
        return True

    def exhausted(self) -> bool:
        """True once the budget has run out (sticky).

        Unlike :meth:`charge` this always consults the clock, so it is
        the right check at stage boundaries (between faults, between
        markings, between merger iterations) where precision matters
        more than speed.
        """
        if self._reason is not None:
            return True
        if self.max_steps is not None and self.steps > self.max_steps:
            self._reason = REASON_STEPS
        elif self._deadline is not None and self._clock() > self._deadline:
            self._reason = REASON_DEADLINE
        return self._reason is not None

    def cancel(self, reason: str = REASON_CANCELLED) -> None:
        """Cooperatively stop every loop sharing this budget."""
        if self._reason is None:
            self._reason = reason

    # ------------------------------------------------------------------
    @property
    def reason(self) -> Optional[str]:
        """Why the budget exhausted (None while still within budget)."""
        return self._reason

    def remaining_seconds(self) -> float | None:
        """Wall-clock time left, or None when untimed."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - self._clock())

    def provenance(self) -> dict[str, object]:
        """Tags a partial result carries to explain its incompleteness."""
        return {"budget_exhausted": self._reason is not None,
                "budget_reason": self._reason,
                "budget_steps": self.steps}

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = self._reason or "ok"
        return (f"Budget(wall_seconds={self.wall_seconds}, "
                f"max_steps={self.max_steps}, steps={self.steps}, {state})")
