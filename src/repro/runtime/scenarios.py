"""The chaos scenario matrix behind ``repro-hlts chaos``.

Each scenario injects one deterministic failure at a registered seam
(:mod:`repro.runtime.chaos`) into a real pipeline run and asserts the
degradation contract: the run terminates (no hang), the surviving
result is structurally valid (``design.validate()`` passes) and any
incompleteness is *explicitly* tagged (``degraded``,
``budget_exhausted``, ``truncated``, skipped-candidate records) rather
than silent.  ``repro-hlts chaos`` runs the matrix and reports
lint-style exit codes, and CI runs it at 4 bits on every push.

Heavyweight pipeline imports are deliberately local to each scenario:
this module is imported by the CLI, which must stay cheap to load.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from .budget import Budget
from .chaos import (ACTION_CANCEL_BUDGET, ACTION_CORRUPT, ACTION_CRASH,
                    ACTION_RAISE, ChaosCrash, ChaosInjector, Injection)
from .checkpoint import Journal, run_journaled_grid, scrubbed_records


@dataclass(frozen=True)
class ScenarioOutcome:
    """Pass/fail verdict of one chaos scenario."""

    name: str
    ok: bool
    detail: str


def _check(checks: list[tuple[str, bool]]) -> tuple[bool, str]:
    failed = [label for label, passed in checks if not passed]
    if failed:
        return False, "failed: " + "; ".join(failed)
    return True, f"{len(checks)} checks passed"


def _quick_config(bits: int):
    """A deliberately small experiment config so scenarios stay fast."""
    from ..atpg import RandomPhaseConfig
    from ..harness import ExperimentConfig
    return ExperimentConfig(
        bits=bits, fault_fraction=0.25,
        random=RandomPhaseConfig(max_sequences=4, saturation=2,
                                 sequence_length=12),
        max_backtracks=16)


def _validates(design) -> bool:
    from ..errors import ReproError
    try:
        design.validate()
        return True
    except ReproError:
        return False


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def scenario_candidate_raise(benchmark: str, bits: int,
                             workdir: Path) -> tuple[bool, str]:
    """A merger candidate's evaluation raises: the loop must skip it,
    record the skip, and still converge to a valid design."""
    from ..bench import load
    from ..cost import CostModel
    from ..synth import run_ours
    with ChaosInjector(Injection("synth.candidate_eval", ACTION_RAISE,
                                 at_visit=1, count=3)):
        result = run_ours(load(benchmark),
                          cost_model=CostModel(bits=bits))
    return _check([
        ("injected failures recorded as skips", len(result.skipped) >= 3),
        ("skip reasons carry the exception",
         all("ChaosError" in s.reason for s in result.skipped)),
        ("merger loop continued past the failures", result.iterations >= 1),
        ("final design validates", _validates(result.design)),
    ])


def scenario_reschedule_corrupt(benchmark: str, bits: int,
                                workdir: Path) -> tuple[bool, str]:
    """A corrupted execution order reaches the rescheduler: the
    resulting ScheduleError must be survived as a skipped candidate."""
    from ..bench import load
    from ..cost import CostModel
    from ..synth import run_ours
    with ChaosInjector(Injection("synth.pre_reschedule", ACTION_CORRUPT,
                                 at_visit=1, count=2), seed=1):
        result = run_ours(load(benchmark),
                          cost_model=CostModel(bits=bits))
    return _check([
        ("corruption surfaced as skipped candidates",
         len(result.skipped) >= 1),
        ("skips carry the ScheduleError",
         all("ScheduleError" in s.reason for s in result.skipped)),
        ("merger loop continued", result.iterations >= 1),
        ("final design validates", _validates(result.design)),
    ])


def scenario_podem_budget_cancel(benchmark: str, bits: int,
                                 workdir: Path) -> tuple[bool, str]:
    """The shared budget drains mid-PODEM: the ATPG run must stop
    cleanly with every unattempted fault counted as aborted."""
    from ..atpg import ATPGConfig, RandomPhaseConfig, run_atpg
    from ..bench import load
    from ..gates import expand_to_gates
    from ..rtl import generate_rtl
    from ..synth import run_ours
    design = run_ours(load(benchmark)).design
    netlist = expand_to_gates(generate_rtl(design, bits))
    config = ATPGConfig(
        random=RandomPhaseConfig(max_sequences=2, saturation=1,
                                 sequence_length=8),
        max_frames=4, max_backtracks=16, fault_fraction=0.5)
    budget = Budget()
    with ChaosInjector(Injection("atpg.podem_step", ACTION_CANCEL_BUDGET,
                                 at_visit=5)):
        result = run_atpg(netlist, config, budget=budget)
    accounted = (result.detected + result.aborted_faults
                 + result.untestable_faults
                 + result.untestable_by_analysis)
    return _check([
        ("result tagged budget_exhausted", result.budget_exhausted),
        ("budget records the chaos cancellation",
         result.budget_reason == "chaos"),
        ("fault accounting closes (detected + aborted + untestable "
         "+ pruned)", accounted == result.total_faults),
        ("partial run aborted the unattempted faults",
         result.aborted_faults >= 1),
    ])


def scenario_synth_budget_starved(benchmark: str, bits: int,
                                  workdir: Path) -> tuple[bool, str]:
    """A starved synthesis budget: best-so-far design, degraded flag."""
    from ..bench import load
    from ..cost import CostModel
    from ..synth import run_ours
    budget = Budget(max_steps=1)
    result = run_ours(load(benchmark), cost_model=CostModel(bits=bits),
                      budget=budget)
    return _check([
        ("result flagged degraded", result.degraded),
        ("degradation names the budget",
         any("budget_exhausted" in r for r in result.degradation_reasons)),
        ("at most one merger applied under max_steps=1",
         result.iterations <= 1),
        ("best-so-far design validates", _validates(result.design)),
    ])


def scenario_reach_budget_truncate(benchmark: str, bits: int,
                                   workdir: Path) -> tuple[bool, str]:
    """The reachability BFS drains its budget: a well-formed prefix of
    the state space, tagged truncated, instead of a raise or a hang."""
    from ..analysis.reach_graph import ReachabilityGraph
    from ..bench import load
    from ..etpn.from_dfg import default_design
    from ..petri.builders import control_net_for_design
    design = default_design(load(benchmark))
    net = control_net_for_design(design.dfg, design.steps)
    full = ReachabilityGraph(net)
    partial = ReachabilityGraph(net, budget=Budget(max_steps=1))
    return _check([
        ("full graph explores multiple markings", len(full.markings) > 2),
        ("partial graph tagged truncated", partial.truncated),
        ("truncation reason recorded",
         partial.truncation_reason == "budget_exhausted"),
        ("partial markings are a subset of the full state space",
         set(partial.markings) <= set(full.markings)),
        ("initial marking still present",
         net.initial_marking in set(partial.markings)),
    ])


#: ``tg_seconds`` is the one nondeterministic field of a cell row
#: (1998-style CPU seconds are informational; the effort metric is
#: primary), so byte-identity claims exclude it — see
#: :func:`repro.runtime.checkpoint.scrubbed_records`.
_scrubbed = scrubbed_records


def scenario_journal_crash_resume(benchmark: str, bits: int,
                                  workdir: Path) -> tuple[bool, str]:
    """Kill a journaled grid between cell commits, resume it, and
    demand the resumed rows match an uninterrupted run byte-for-byte
    (modulo the wall-clock column)."""
    grid = [("camad", bits), ("ours", bits)]

    def config_for(b: int):
        return _quick_config(b)

    reference = Journal(workdir / "reference.jsonl")
    run_journaled_grid(benchmark, grid, config_for, journal=reference)

    crashed = Journal(workdir / "crashed.jsonl")
    died = False
    try:
        with ChaosInjector(Injection("journal.pre_write", ACTION_CRASH,
                                     at_visit=2)):
            run_journaled_grid(benchmark, grid, config_for, journal=crashed)
    except ChaosCrash:
        died = True
    mid_records = crashed.records()  # must parse: never truncated
    resumed_cells = run_journaled_grid(benchmark, grid, config_for,
                                       journal=crashed, resume=True)
    replayed = sum(1 for c in resumed_cells
                   if type(c).__name__ == "JournaledCell")
    return _check([
        ("injected crash killed the run mid-grid", died),
        ("journal survived the crash as valid JSONL with one cell",
         len(mid_records) == 1),
        ("resume replayed the journaled cell", replayed == 1),
        ("resumed journal rows byte-identical to uninterrupted run "
         "(wall-clock masked)",
         _scrubbed(crashed.records()) == _scrubbed(reference.records())),
    ])


def scenario_worker_crash(benchmark: str, bits: int,
                          workdir: Path) -> tuple[bool, str]:
    """A parallel-harness worker dies mid-grid: the run must lose only
    that worker's cell (an explicit SkippedCell), journal the rest, and
    a resumed run must complete the grid recomputing only the lost
    cell."""
    from ..harness.parallel import run_parallel_grid

    grid = [("camad", bits), ("approach2", bits)]
    crash_key = (benchmark, "approach2", bits)

    def config_for(b: int):
        return _quick_config(b)

    journal = Journal(workdir / "journal.jsonl")
    outcome = run_parallel_grid(
        benchmark, grid, config_for, workers=2, journal=journal,
        worker_chaos={crash_key: (Injection("harness.worker",
                                            ACTION_CRASH),)})
    resumed = run_parallel_grid(benchmark, grid, config_for, workers=2,
                                journal=journal, resume=True)
    return _check([
        ("crashed worker lost exactly its own cell",
         [s.key for s in outcome.skipped] == [crash_key]),
        ("skip reason names the injected crash",
         "ChaosCrash" in outcome.skipped[0].reason
         if outcome.skipped else False),
        ("surviving cell journaled by the parent",
         len(journal.completed_cells()) >= 1),
        ("partial grid rendered the surviving cell",
         len(outcome.cells) == 1),
        ("resume replayed the survivor and recomputed only the loss",
         resumed.replayed == 1 and resumed.computed == 1
         and not resumed.skipped),
        ("resumed grid is complete", len(resumed.cells) == len(grid)),
    ])


def scenario_timing_cone_raise(benchmark: str, bits: int,
                               workdir: Path) -> tuple[bool, str]:
    """A timing cone evaluation raises mid-analysis: the analyser must
    tag and skip exactly the faulty endpoints, keep timing the rest,
    and the explicitly-degraded report must still serialise."""
    import json

    from ..analysis.timing import analyze_timing
    from ..bench import load
    from ..etpn.from_dfg import default_design
    from ..gates import expand_to_gates
    from ..rtl import generate_rtl
    design = default_design(load(benchmark))
    netlist = expand_to_gates(generate_rtl(design, bits))
    with ChaosInjector(Injection("timing.cone_eval", ACTION_RAISE,
                                 at_visit=2, count=2)):
        report = analyze_timing(netlist, bits=bits)
    skipped = report.skipped()
    timed = [e for e in report.endpoints
             if e.analysed and e.slack is not None]
    return _check([
        ("injected failures surfaced as skipped endpoints",
         len(skipped) == 2),
        ("skip reasons carry the ChaosError",
         all("ChaosError" in e.skip_reason for e in skipped)),
        ("report explicitly degraded", report.degraded),
        ("every surviving endpoint still timed",
         len(timed) == len(report.endpoints) - 2 and len(timed) > 0),
        ("degraded report still serialises",
         bool(json.dumps(report.to_dict()))),
    ])


def _service_spool(workdir: Path, bits: int,
                   benchmarks: tuple[str, ...]) -> tuple:
    """A fresh spool with one quick job per benchmark (in order)."""
    from ..service import JobRequest, Spool
    spool = Spool(workdir / "spool")
    job_ids = []
    for bench in benchmarks:
        jid, _ = spool.submit(JobRequest(
            benchmark=bench, flow="ours", bits=bits, fault_fraction=0.25,
            max_sequences=4, saturation=2, sequence_length=6,
            max_backtracks=16))
        job_ids.append(jid)
    return spool, job_ids


def _service_reference(workdir: Path, bits: int,
                       benchmarks: tuple[str, ...]) -> str:
    """Scrubbed results of an uninterrupted drain of the same jobs."""
    from ..service import RetryPolicy, Supervisor
    spool, job_ids = _service_spool(workdir / "reference", bits,
                                    benchmarks)
    Supervisor(spool, retry=RetryPolicy(backoff_base=0.0)).run()
    return scrubbed_records([spool.read_result(j) for j in job_ids])


def scenario_service_transient_retry(benchmark: str, bits: int,
                                     workdir: Path) -> tuple[bool, str]:
    """A job's first dispatch raises (transient worker failure): the
    supervisor must retry it with backoff and the retry must succeed —
    one failure costs one extra attempt, never the job."""
    from ..service import RetryPolicy, Supervisor
    spool, (jid,) = _service_spool(workdir, bits, (benchmark,))
    with ChaosInjector(Injection("service.dispatch", ACTION_RAISE,
                                 at_visit=1)):
        outcome = Supervisor(spool, retry=RetryPolicy(
            max_attempts=3, backoff_base=0.0)).run()
    state = spool.states()[jid]
    return _check([
        ("first attempt failed and was retried", outcome.retried == 1),
        ("retry completed the job",
         outcome.done == 1 and state.state == "done"),
        ("exactly two attempts ledgered", state.attempts == 2),
        ("success reset the consecutive-failure counter",
         state.failures == 0),
        ("result spooled", spool.read_result(jid) is not None),
        ("queue drained", outcome.drained),
    ])


def scenario_service_poison_quarantine(benchmark: str, bits: int,
                                       workdir: Path) -> tuple[bool, str]:
    """A poison job (unknown benchmark) fails every attempt: the
    circuit breaker must quarantine it after max_attempts while the
    healthy job still drains to done."""
    from ..service import JobRequest, RetryPolicy, Supervisor
    spool, (healthy,) = _service_spool(workdir, bits, (benchmark,))
    poison, _ = spool.submit(JobRequest(benchmark="chaos-poison-bench",
                                        bits=bits))
    outcome = Supervisor(spool, retry=RetryPolicy(
        max_attempts=2, backoff_base=0.0)).run()
    states = spool.states()
    return _check([
        ("poison job quarantined",
         states[poison].state == "quarantined"),
        ("circuit breaker tripped at max_attempts",
         states[poison].attempts == 2),
        ("quarantine reason names the failure",
         "unknown benchmark" in states[poison].reason),
        ("healthy job drained to done",
         states[healthy].state == "done"
         and spool.read_result(healthy) is not None),
        ("outcome charged exactly one quarantine",
         outcome.quarantined == 1),
        ("queue drained despite the poison", outcome.drained),
    ])


def scenario_service_ledger_crash_replay(benchmark: str, bits: int,
                                         workdir: Path) -> tuple[bool, str]:
    """The daemon dies inside a WAL commit — after the second job's
    result was spooled but before its ``done`` transition landed.  A
    restarted supervisor must replay the WAL, adopt the spooled result
    without re-evaluating, and end byte-identical to an uninterrupted
    run."""
    from ..service import RetryPolicy, Supervisor
    benchmarks = (benchmark, "paulin")
    reference = _service_reference(workdir, bits, benchmarks)
    spool, job_ids = _service_spool(workdir, bits, benchmarks)
    died = False
    try:
        # ledger_write visits: run(j1)=1, done(j1)=2, run(j2)=3,
        # done(j2)=4 — so visit 4 dies with j2's result spooled but
        # its final transition lost.
        with ChaosInjector(Injection("service.ledger_write", ACTION_CRASH,
                                     at_visit=4)):
            Supervisor(spool, retry=RetryPolicy(backoff_base=0.0)).run()
    except ChaosCrash:
        died = True
    mid_states = spool.states()
    outcome = Supervisor(spool,
                         retry=RetryPolicy(backoff_base=0.0)).run()
    states = spool.states()
    return _check([
        ("injected crash killed the daemon mid-commit", died),
        ("WAL survived with the second job still running",
         mid_states[job_ids[1]].state == "running"),
        ("restart adopted the spooled result without re-evaluating",
         outcome.recovered == 1 and states[job_ids[1]].attempts == 1),
        ("every job done after replay",
         all(states[j].state == "done" for j in job_ids)),
        ("results byte-identical to an uninterrupted run",
         scrubbed_records([spool.read_result(j) for j in job_ids])
         == reference),
    ])


def scenario_service_dequeue_crash(benchmark: str, bits: int,
                                   workdir: Path) -> tuple[bool, str]:
    """The daemon dies at the dequeue seam while picking the second
    job: nothing about that job was ledgered yet, so a restart must
    simply run it — completing the queue with no duplicated or lost
    work."""
    from ..service import RetryPolicy, Supervisor
    benchmarks = (benchmark, "paulin")
    reference = _service_reference(workdir, bits, benchmarks)
    spool, job_ids = _service_spool(workdir, bits, benchmarks)
    died = False
    try:
        with ChaosInjector(Injection("service.dequeue", ACTION_CRASH,
                                     at_visit=2)):
            Supervisor(spool, retry=RetryPolicy(backoff_base=0.0)).run()
    except ChaosCrash:
        died = True
    mid_states = spool.states()
    outcome = Supervisor(spool,
                         retry=RetryPolicy(backoff_base=0.0)).run()
    states = spool.states()
    return _check([
        ("injected crash killed the daemon at dequeue", died),
        ("first job already safe in the WAL",
         mid_states[job_ids[0]].state == "done"),
        ("second job untouched at the crash",
         mid_states[job_ids[1]].state == "submitted"),
        ("restart ran each job exactly once",
         all(states[j].attempts == 1 for j in job_ids)
         and outcome.processed == 1),
        ("every job done after restart",
         all(states[j].state == "done" for j in job_ids)),
        ("results byte-identical to an uninterrupted run",
         scrubbed_records([spool.read_result(j) for j in job_ids])
         == reference),
    ])


#: The registered matrix, in execution order.
SCENARIOS: list[tuple[str, Callable[[str, int, Path],
                                    tuple[bool, str]], str]] = [
    ("candidate-raise", scenario_candidate_raise,
     "merger candidate evaluation raises; loop skips and continues"),
    ("reschedule-corrupt", scenario_reschedule_corrupt,
     "corrupted execution order; ScheduleError survived as a skip"),
    ("podem-budget-cancel", scenario_podem_budget_cancel,
     "budget drained mid-PODEM; partial ATPG result, faults aborted"),
    ("synth-budget-starved", scenario_synth_budget_starved,
     "starved synthesis budget; degraded best-so-far design"),
    ("reach-budget-truncate", scenario_reach_budget_truncate,
     "reachability BFS budget; truncated prefix of the state space"),
    ("journal-crash-resume", scenario_journal_crash_resume,
     "crash between journal commits; resume matches uninterrupted run"),
    ("worker-crash", scenario_worker_crash,
     "parallel worker dies mid-grid; partial grid + resume completes"),
    ("timing-cone-raise", scenario_timing_cone_raise,
     "timing cone evaluation raises; endpoints skipped, report degraded"),
    ("service-transient-retry", scenario_service_transient_retry,
     "job dispatch raises once; supervisor retries and completes it"),
    ("service-poison-quarantine", scenario_service_poison_quarantine,
     "poison job fails every attempt; quarantined while queue drains"),
    ("service-ledger-crash-replay", scenario_service_ledger_crash_replay,
     "daemon dies mid-WAL-commit; restart adopts spooled result"),
    ("service-dequeue-crash", scenario_service_dequeue_crash,
     "daemon dies at dequeue; restart completes queue, no double work"),
]


def scenario_names() -> list[str]:
    """The names of every registered scenario."""
    return [name for name, _, _ in SCENARIOS]


def run_scenarios(names: list[str] | None = None, benchmark: str = "ex",
                  bits: int = 4,
                  workdir: str | Path | None = None) -> list[ScenarioOutcome]:
    """Run (a subset of) the chaos matrix; one outcome per scenario.

    A scenario that raises is itself a failure — the whole point is
    that injected faults must *not* escape the degradation machinery.
    """
    selected = set(names) if names else None
    unknown = (selected or set()) - set(scenario_names())
    if unknown:
        raise KeyError(f"unknown chaos scenario(s): {sorted(unknown)}; "
                       f"registered: {scenario_names()}")
    base = Path(workdir) if workdir else Path(tempfile.mkdtemp(
        prefix="repro-chaos-"))
    outcomes = []
    for name, func, _description in SCENARIOS:
        if selected is not None and name not in selected:
            continue
        scenario_dir = base / name
        scenario_dir.mkdir(parents=True, exist_ok=True)
        try:
            ok, detail = func(benchmark, bits, scenario_dir)
        except Exception as exc:  # noqa: BLE001 - escaping = failing
            ok, detail = False, (f"escaped the degradation barrier: "
                                 f"{type(exc).__name__}: {exc}")
        outcomes.append(ScenarioOutcome(name, ok, detail))
    return outcomes
