"""repro.runtime — budgets, graceful degradation and chaos testing.

The hardening layer of the pipeline: :class:`Budget` bounds every
long-running kernel (PODEM, random TPG, fault simulation, reachability
BFS, the merger loop) with wall-clock deadlines, step ceilings and
cooperative cancellation; :mod:`~repro.runtime.atomic` makes every
result-file write crash-safe; :class:`Journal` checkpoints experiment
grids so crashed runs resume instead of restarting; and
:mod:`~repro.runtime.chaos` injects deterministic failures at
registered seams to prove each layer degrades to a valid partial
result (``repro-hlts chaos``).
"""

from .atomic import atomic_write_text
from .budget import (Budget, REASON_CANCELLED, REASON_DEADLINE,
                     REASON_STEPS)
from .chaos import (ACTION_CANCEL_BUDGET, ACTION_CORRUPT, ACTION_CRASH,
                    ACTION_RAISE, SEAMS, ChaosCrash, ChaosError,
                    ChaosInjector, Injection, active_injector, chaos_point,
                    clear_injector)
from .checkpoint import (Journal, JournaledCell, cell_record, record_key,
                         restore_cell, run_journaled_grid, scrubbed_records)
from .scenarios import ScenarioOutcome, run_scenarios, scenario_names

__all__ = [
    "ACTION_CANCEL_BUDGET", "ACTION_CORRUPT", "ACTION_CRASH",
    "ACTION_RAISE",
    "Budget",
    "ChaosCrash", "ChaosError", "ChaosInjector",
    "Injection",
    "Journal", "JournaledCell",
    "REASON_CANCELLED", "REASON_DEADLINE", "REASON_STEPS",
    "SEAMS",
    "ScenarioOutcome",
    "active_injector",
    "atomic_write_text",
    "cell_record",
    "chaos_point",
    "clear_injector",
    "record_key",
    "restore_cell",
    "run_journaled_grid",
    "run_scenarios",
    "scenario_names",
    "scrubbed_records",
]
