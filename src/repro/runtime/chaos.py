"""Deterministic chaos injection at registered pipeline seams.

The pipeline claims to degrade gracefully: a misbehaving merger
candidate is skipped, an exhausted budget yields a tagged partial
result, a killed run resumes from its journal.  This module makes those
claims testable.  Production code calls :func:`chaos_point` at a small
set of *registered seams*; normally that is a no-op, but under an
active :class:`ChaosInjector` (a context manager, seeded and counted,
so every run is reproducible) a seam visit can raise, corrupt its
payload or drain a budget — and the scenario matrix
(:mod:`repro.runtime.scenarios`, ``repro-hlts chaos``) asserts that
every layer still ends with a structurally valid, explicitly-degraded
result and lint-style exit codes.

Seams (see DESIGN.md §11):

====================== ==================================================
``synth.candidate_eval``  inside Algorithm 1's per-candidate barrier,
                          just before a merger candidate is costed
``synth.pre_reschedule``  the execution/lifetime order handed to
                          :func:`repro.sched.resched.reschedule`
``atpg.podem_step``       top of the PODEM decision loop (payload: the
                          active :class:`~repro.runtime.budget.Budget`)
``journal.pre_write``     immediately before a journal rename commits
``harness.worker``        top of one grid cell's evaluation inside a
                          parallel-harness worker (payload: the cell's
                          (benchmark, flow, bits) key)
``timing.cone_eval``      inside the static timing analyser's
                          per-endpoint barrier, just before one
                          endpoint's cone is resolved (payload: the
                          (endpoint name, driver gid) pair)
``service.dequeue``       the synthesis service supervisor, just after
                          it picks the next job off the queue
                          (payload: the job id)
``service.dispatch``      just before a dequeued job's evaluation
                          starts (payload: the job id) — a raise here
                          is the canonical transient worker failure
``service.ledger_write``  immediately before one WAL transition is
                          committed to the service ledger (payload:
                          the transition record)
``service.worker_reap``   the supervisor's completion/reap check for a
                          job — after its result is spooled but before
                          ``done`` is ledgered inline; once per
                          supervision poll per running worker in
                          process mode (payload: the job id)
====================== ==================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..errors import ReproError
from .budget import Budget

#: Every seam production code may visit; injections must name one.
SEAMS = frozenset({
    "synth.candidate_eval",
    "synth.pre_reschedule",
    "atpg.podem_step",
    "journal.pre_write",
    "harness.worker",
    "timing.cone_eval",
    "service.dequeue",
    "service.dispatch",
    "service.ledger_write",
    "service.worker_reap",
})

#: Injection actions.
ACTION_RAISE = "raise"          # raise ChaosError (a ReproError)
ACTION_CRASH = "crash"          # raise ChaosCrash (simulated process death)
ACTION_CANCEL_BUDGET = "cancel_budget"  # payload Budget -> cancel()
ACTION_CORRUPT = "corrupt"      # payload list -> deterministic corruption

_ACTIONS = frozenset({ACTION_RAISE, ACTION_CRASH, ACTION_CANCEL_BUDGET,
                      ACTION_CORRUPT})


class ChaosError(ReproError):
    """A deterministic injected failure (behaves like any library error)."""


class ChaosCrash(RuntimeError):
    """A simulated process death.

    Deliberately *not* a :class:`ReproError`: recovery barriers that
    catch library errors must not swallow it — only the chaos harness
    (and the journal-resume machinery it exercises) handles it.
    """


@dataclass(frozen=True)
class Injection:
    """One planned failure: fire ``action`` at the ``at_visit``-th visit
    of ``seam`` (1-based), for ``count`` consecutive visits."""

    seam: str
    action: str
    at_visit: int = 1
    count: int = 1

    def __post_init__(self) -> None:
        if self.seam not in SEAMS:
            raise ValueError(f"unknown chaos seam {self.seam!r}; "
                             f"registered: {sorted(SEAMS)}")
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown chaos action {self.action!r}")
        if self.at_visit < 1 or self.count < 1:
            raise ValueError("at_visit and count must be >= 1")

    def fires_at(self, visit: int) -> bool:
        return self.at_visit <= visit < self.at_visit + self.count


class ChaosInjector:
    """Activates a set of :class:`Injection` plans (context manager).

    Visits are counted per seam, so the same plan replays identically;
    ``seed`` parameterises payload corruption, keeping even the
    corrupted values deterministic.
    """

    def __init__(self, *injections: Injection, seed: int = 0) -> None:
        self.injections = injections
        self.seed = seed
        self.visits: dict[str, int] = {}
        self.fired: list[tuple[str, str, int]] = []

    # ------------------------------------------------------------------
    def __enter__(self) -> "ChaosInjector":
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("chaos injectors do not nest")
        _ACTIVE = self
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _ACTIVE
        _ACTIVE = None

    # ------------------------------------------------------------------
    def visit(self, seam: str, payload: Any) -> Any:
        count = self.visits.get(seam, 0) + 1
        self.visits[seam] = count
        for injection in self.injections:
            if injection.seam != seam or not injection.fires_at(count):
                continue
            self.fired.append((seam, injection.action, count))
            payload = self._apply(injection, seam, count, payload)
        return payload

    def _apply(self, injection: Injection, seam: str, count: int,
               payload: Any) -> Any:
        if injection.action == ACTION_RAISE:
            raise ChaosError(f"injected failure at {seam} (visit {count})")
        if injection.action == ACTION_CRASH:
            raise ChaosCrash(f"injected crash at {seam} (visit {count})")
        if injection.action == ACTION_CANCEL_BUDGET:
            if isinstance(payload, Budget):
                payload.cancel("chaos")
            return payload
        # ACTION_CORRUPT: deterministic, seed-driven list corruption —
        # duplicating one element makes an execution/lifetime order stop
        # covering its ops, the canonical "merger candidate misbehaves".
        if isinstance(payload, list) and payload:
            index = self.seed % len(payload)
            return payload + [payload[index]]
        return payload


_ACTIVE: Optional[ChaosInjector] = None


def chaos_point(seam: str, payload: Any = None) -> Any:
    """Mark a registered seam; a no-op unless an injector is active.

    Returns the (possibly corrupted) payload so call sites can write
    ``order = chaos_point("synth.pre_reschedule", order)``.
    """
    if _ACTIVE is None:
        return payload
    if seam not in SEAMS:
        raise ValueError(f"chaos_point called with unregistered seam "
                         f"{seam!r}")
    return _ACTIVE.visit(seam, payload)


def active_injector() -> Optional[ChaosInjector]:
    """The currently-active injector, if any (used by tests)."""
    return _ACTIVE


def clear_injector() -> None:
    """Forcibly deactivate any active injector.

    For forked worker processes only: a ``fork`` start method copies
    the parent's module state, including an injector the parent entered
    — a worker must not replay the parent's chaos plan on its own seam
    counters, so the parallel harness clears the inherited injector in
    its pool initializer and activates per-cell plans explicitly.
    """
    global _ACTIVE
    _ACTIVE = None
