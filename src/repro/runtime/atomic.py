"""Atomic file writes: temp file in the same directory, fsync, rename.

Every result-file write in the library goes through
:func:`atomic_write_text` so an interrupted run (crash, deadline kill,
chaos injection) never leaves a truncated export, report or journal —
readers either see the previous complete contents or the new complete
contents, never a prefix.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (write-temp, fsync, rename).

    The temp file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem rename, which POSIX makes
    atomic.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent or Path("."),
                                    prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        # Leave no droppings behind on failure (incl. chaos crashes).
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
