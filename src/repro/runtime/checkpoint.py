"""Checkpoint/resume for the experiment harness.

A full paper table is a grid of benchmark × flow × bit-width cells,
each minutes of synthesis + ATPG; before this module a crash at cell
eleven of twelve lost everything.  A :class:`Journal` records each
completed cell as one JSON line, committed via atomic
write-temp-rename (:mod:`repro.runtime.atomic`), so the file on disk is
always a complete, valid JSONL document.  ``repro-hlts table*`` and
``bench`` grow ``--journal``/``--resume``: a resumed run replays
finished cells from the journal (restored as :class:`JournaledCell`,
which renders exactly like the live :class:`~repro.harness.experiment.
CellResult` it checkpoints) and computes only the remainder.

Everything a table needs is journaled — the flat ``row()`` dict plus
the pre-rendered allocation lines — so restoring never re-runs
synthesis, and deterministic fields of a resumed table are
byte-identical to an uninterrupted run (wall-clock seconds are the one
nondeterministic column; the chaos harness masks them when comparing).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Optional

from .atomic import atomic_write_text
from .chaos import chaos_point

#: Journal format tag; bump on incompatible record changes.
JOURNAL_FORMAT = "repro-journal-v1"

#: (benchmark, flow, bits) — the identity of one table cell.
CellKey = tuple[str, str, int]


@dataclass
class JournaledCell:
    """A completed cell restored from the journal.

    Quacks like :class:`~repro.harness.experiment.CellResult` for table
    rendering: ``row()`` and the allocation lines are served verbatim
    from the journal record.
    """

    benchmark: str
    flow: str
    bits: int
    alloc_lines: list[str] = field(default_factory=list)
    row_data: dict[str, Any] = field(default_factory=dict)
    provenance: dict[str, Any] = field(default_factory=dict)

    def row(self) -> dict[str, Any]:
        return dict(self.row_data)


def cell_record(cell: Any, provenance: dict[str, Any] | None = None) -> dict:
    """Serialise one completed cell (live or restored) to a journal row."""
    if isinstance(cell, JournaledCell):
        alloc = list(cell.alloc_lines)
        provenance = {**cell.provenance, **(provenance or {})}
    else:
        from ..harness.tables import format_allocation
        alloc = format_allocation(cell)
    record = {
        "format": JOURNAL_FORMAT,
        "kind": "cell",
        "benchmark": cell.benchmark,
        "flow": cell.flow,
        "bits": cell.bits,
        "row": cell.row(),
        "alloc": alloc,
    }
    if provenance:
        record["provenance"] = provenance
    return record


def restore_cell(record: dict) -> JournaledCell:
    """Rebuild a render-ready cell from a journal record."""
    return JournaledCell(
        benchmark=record["benchmark"], flow=record["flow"],
        bits=int(record["bits"]), alloc_lines=list(record.get("alloc", [])),
        row_data=dict(record.get("row", {})),
        provenance=dict(record.get("provenance", {})))


def record_key(record: dict) -> CellKey:
    """The grid key of a journal record."""
    return (record["benchmark"], record["flow"], int(record["bits"]))


class Journal:
    """An append-only JSONL journal with atomic commits.

    Each :meth:`append` rewrites the whole file through a temp-file
    rename, so a reader (or a resumed run) always sees a complete
    document — the ``journal.pre_write`` chaos seam sits right before
    the rename to prove a crash there loses at most the newest record.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------
    def records(self) -> list[dict]:
        """Every journaled record ([] when the file does not exist)."""
        if not self.path.exists():
            return []
        records = []
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return records

    def completed_cells(self) -> dict[CellKey, dict]:
        """Finished cells by grid key (later records win)."""
        return {record_key(r): r for r in self.records()
                if r.get("kind") == "cell"}

    def append(self, record: dict) -> None:
        """Commit one record atomically."""
        lines = [json.dumps(r, sort_keys=True) for r in self.records()]
        lines.append(json.dumps(record, sort_keys=True))
        chaos_point("journal.pre_write")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(self.path, "\n".join(lines) + "\n")


def run_journaled_grid(benchmark: str,
                       grid: Iterable[tuple[str, int]],
                       config_for: Callable[[int], Any],
                       journal: Optional[Journal] = None,
                       resume: bool = False,
                       progress: Callable[[str], None] | None = None,
                       budget: Any = None) -> list[Any]:
    """Run (or resume) a grid of table cells, journaling each completion.

    Args:
        benchmark: the benchmark every cell runs.
        grid: (flow, bits) pairs in table order.
        config_for: bits -> :class:`~repro.harness.experiment.
            ExperimentConfig` for that column.
        journal: where completed cells are committed (None = no
            journaling).
        resume: replay cells already in ``journal`` instead of
            recomputing them.
        progress: optional callable for per-cell status lines.
        budget: optional :class:`~repro.runtime.budget.Budget` threaded
            into each cell's synthesis + ATPG.

    Returns:
        One cell per grid entry — live ``CellResult`` for computed
        cells, :class:`JournaledCell` for replayed ones.
    """
    from ..harness.experiment import run_cell

    done = (journal.completed_cells()
            if journal is not None and resume else {})
    cells: list[Any] = []
    for flow, bits in grid:
        key: CellKey = (benchmark, flow, bits)
        if key in done:
            if progress:
                progress(f"resuming {benchmark}/{flow}/{bits}-bit "
                         f"from journal")
            cells.append(restore_cell(done[key]))
            continue
        if progress:
            progress(f"running {benchmark}/{flow}/{bits}-bit ...")
        cell = run_cell(benchmark, flow, config_for(bits), budget=budget)
        if journal is not None:
            journal.append(cell_record(cell))
        cells.append(cell)
    return cells
