"""Checkpoint/resume for the experiment harness.

A full paper table is a grid of benchmark × flow × bit-width cells,
each minutes of synthesis + ATPG; before this module a crash at cell
eleven of twelve lost everything.  A :class:`Journal` records each
completed cell as one JSON line — an O(1) fsynced append on the hot
path, an atomic write-temp-rename (:mod:`repro.runtime.atomic`) for
first creation and repair — so a crash loses at most the newest
record and the file always parses.  ``repro-hlts table*`` and
``bench`` grow ``--journal``/``--resume``: a resumed run replays
finished cells from the journal (restored as :class:`JournaledCell`,
which renders exactly like the live :class:`~repro.harness.experiment.
CellResult` it checkpoints) and computes only the remainder.

Everything a table needs is journaled — the flat ``row()`` dict plus
the pre-rendered allocation lines — so restoring never re-runs
synthesis, and deterministic fields of a resumed table are
byte-identical to an uninterrupted run (wall-clock seconds are the one
nondeterministic column; the chaos harness masks them when comparing).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Optional

from .atomic import atomic_write_text
from .chaos import chaos_point

#: Journal format tag; bump on incompatible record changes.
JOURNAL_FORMAT = "repro-journal-v1"

#: (benchmark, flow, bits) — the identity of one table cell.
CellKey = tuple[str, str, int]


@dataclass
class JournaledCell:
    """A completed cell restored from the journal.

    Quacks like :class:`~repro.harness.experiment.CellResult` for table
    rendering: ``row()`` and the allocation lines are served verbatim
    from the journal record.
    """

    benchmark: str
    flow: str
    bits: int
    alloc_lines: list[str] = field(default_factory=list)
    row_data: dict[str, Any] = field(default_factory=dict)
    provenance: dict[str, Any] = field(default_factory=dict)

    def row(self) -> dict[str, Any]:
        return dict(self.row_data)

    @property
    def degradation(self) -> tuple[str, ...]:
        """Degradation reasons journaled with the cell (may be empty)."""
        return tuple(self.provenance.get("degradation", ()))


def cell_record(cell: Any, provenance: dict[str, Any] | None = None) -> dict:
    """Serialise one completed cell (live or restored) to a journal row."""
    if isinstance(cell, JournaledCell):
        alloc = list(cell.alloc_lines)
        provenance = {**cell.provenance, **(provenance or {})}
    else:
        from ..harness.tables import format_allocation
        alloc = format_allocation(cell)
    record = {
        "format": JOURNAL_FORMAT,
        "kind": "cell",
        "benchmark": cell.benchmark,
        "flow": cell.flow,
        "bits": cell.bits,
        "row": cell.row(),
        "alloc": alloc,
    }
    if provenance:
        record["provenance"] = provenance
    return record


def restore_cell(record: dict) -> JournaledCell:
    """Rebuild a render-ready cell from a journal record."""
    return JournaledCell(
        benchmark=record["benchmark"], flow=record["flow"],
        bits=int(record["bits"]), alloc_lines=list(record.get("alloc", [])),
        row_data=dict(record.get("row", {})),
        provenance=dict(record.get("provenance", {})))


def record_key(record: dict) -> CellKey:
    """The grid key of a journal record."""
    return (record["benchmark"], record["flow"], int(record["bits"]))


class Journal:
    """An append-only JSONL journal with crash-safe commits.

    :meth:`append` normally commits one record as a single
    ``write``+``fsync`` of one JSONL line — O(1) per commit, so journal
    writes do not serialise a parallel grid whose parent journals every
    completed cell.  The fast path is guarded by a header check (the
    file must start with a record carrying the journal's format tag and
    end on a newline); a missing, headerless or torn file falls back to
    the original atomic whole-file rewrite (write-temp, fsync, rename),
    which also serves first creation and :meth:`compact`.  A crash
    mid-append can tear at most the newest line, which :meth:`records`
    drops — exactly the loses-at-most-one-record contract the
    ``journal.pre_write`` chaos seam (sitting right before either
    write) proves.

    ``fmt`` and ``seam`` parameterise the format tag the header check
    demands and the chaos seam visited before every commit, so other
    append-only ledgers (the service WAL in
    :mod:`repro.service.ledger`) reuse the identical crash contract
    under their own seam.
    """

    def __init__(self, path: str | Path, *,
                 fmt: str = JOURNAL_FORMAT,
                 seam: str = "journal.pre_write") -> None:
        self.path = Path(path)
        self.fmt = fmt
        self.seam = seam

    # ------------------------------------------------------------------
    def records(self) -> list[dict]:
        """Every journaled record ([] when the file does not exist).

        A torn *final* line (an append cut down by a crash) is dropped
        silently — losing at most the newest record is the journal's
        documented crash contract.  Corruption anywhere else still
        raises: that is damage, not an interrupted append.
        """
        if not self.path.exists():
            return []
        records = []
        lines = self.path.read_text().splitlines()
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                if index == len(lines) - 1:
                    break  # torn tail from a crashed append
                raise
        return records

    def completed_cells(self) -> dict[CellKey, dict]:
        """Finished cells by grid key (later records win)."""
        return {record_key(r): r for r in self.records()
                if r.get("kind") == "cell"}

    def _appendable(self) -> bool:
        """Can :meth:`append` take the O(1) fast path?

        True only when the file already starts with a well-formed
        record of our format *and* ends on a newline (no torn tail).
        """
        try:
            with open(self.path, "rb") as handle:
                head = handle.readline()
                if not head.endswith(b"\n"):
                    return False
                first = json.loads(head)
                if not (isinstance(first, dict)
                        and first.get("format") == self.fmt):
                    return False
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) == b"\n"
        except (OSError, ValueError):
            return False

    def append(self, record: dict) -> None:
        """Commit one record (O(1) append, or full rewrite on repair)."""
        line = json.dumps(record, sort_keys=True)
        chaos_point(self.seam)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self._appendable():
            with open(self.path, "a") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            return
        lines = [json.dumps(r, sort_keys=True) for r in self.records()]
        lines.append(line)
        atomic_write_text(self.path, "\n".join(lines) + "\n")

    def compact(self) -> None:
        """Atomically rewrite the file from its parsed records.

        Repairs a torn tail and re-canonicalises every line; a no-op
        for a journal that never crashed mid-append.
        """
        lines = [json.dumps(r, sort_keys=True) for r in self.records()]
        self.path.parent.mkdir(parents=True, exist_ok=True)
        text = "\n".join(lines) + "\n" if lines else ""
        atomic_write_text(self.path, text)


def scrubbed_records(records: list[dict],
                     mask: tuple[str, ...] = ("tg_seconds",)) -> str:
    """Journal records as canonical bytes for equivalence checks.

    Sorts cell records by grid key (a parallel run journals completions
    in finish order, not grid order) and masks the wall-clock columns —
    the one nondeterministic field of a row — so two runs of the same
    grid compare byte-identical exactly when their deterministic
    content matches.
    """
    scrubbed = []
    for record in records:
        record = json.loads(json.dumps(record))  # deep copy
        if isinstance(record.get("row"), dict):
            for column in mask:
                record["row"].pop(column, None)
        record.pop("provenance", None)
        scrubbed.append(record)
    scrubbed.sort(key=lambda r: (str(r.get("kind")), str(r.get("benchmark")),
                                 str(r.get("flow")), int(r.get("bits", 0))))
    return "\n".join(json.dumps(r, sort_keys=True) for r in scrubbed)


def run_journaled_grid(benchmark: str,
                       grid: Iterable[tuple[str, int]],
                       config_for: Callable[[int], Any],
                       journal: Optional[Journal] = None,
                       resume: bool = False,
                       progress: Callable[[str], None] | None = None,
                       budget: Any = None) -> list[Any]:
    """Run (or resume) a grid of table cells, journaling each completion.

    Args:
        benchmark: the benchmark every cell runs.
        grid: (flow, bits) pairs in table order.
        config_for: bits -> :class:`~repro.harness.experiment.
            ExperimentConfig` for that column.
        journal: where completed cells are committed (None = no
            journaling).
        resume: replay cells already in ``journal`` instead of
            recomputing them.
        progress: optional callable for per-cell status lines.
        budget: optional :class:`~repro.runtime.budget.Budget` threaded
            into each cell's synthesis + ATPG.

    Returns:
        One cell per grid entry — live ``CellResult`` for computed
        cells, :class:`JournaledCell` for replayed ones.
    """
    from ..harness.experiment import run_cell

    done = (journal.completed_cells()
            if journal is not None and resume else {})
    cells: list[Any] = []
    for flow, bits in grid:
        key: CellKey = (benchmark, flow, bits)
        if key in done:
            if progress:
                progress(f"resuming {benchmark}/{flow}/{bits}-bit "
                         f"from journal")
            cells.append(restore_cell(done[key]))
            continue
        if progress:
            progress(f"running {benchmark}/{flow}/{bits}-bit ...")
        cell = run_cell(benchmark, flow, config_for(bits), budget=budget)
        if journal is not None:
            journal.append(cell_record(cell))
        cells.append(cell)
    return cells
