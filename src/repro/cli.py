"""Command-line interface: regenerate the paper's tables and figures.

Examples::

    repro-hlts table1                 # Table 1 (Ex), quick budgets
    repro-hlts table2 --bits 4        # Table 2 (Dct), 4-bit column only
    repro-hlts fig2                   # Figure 2 (Ex schedule)
    repro-hlts synth diffeq -k 3 -a 2 -b 1
    repro-hlts bench ex --flow ours --bits 8
    repro-hlts lint                   # design-rule check every benchmark
    repro-hlts lint diffeq my.hdl --strict --format json
    repro-hlts analyze                # MHP races + equivalence certificates
    repro-hlts analyze ewf --flow default --format json
    repro-hlts analyze --structural   # invariant certificates only, no BFS
    repro-hlts analyze --cross-check  # assert both tiers agree
    repro-hlts dataflow diffeq --bits 8 --narrow
    repro-hlts timing                 # STA every benchmark, default period
    repro-hlts timing tseng --flow ours --period 150 -v
    repro-hlts bench-dataflow         # write BENCH_dataflow.json
    repro-hlts bench-timing           # write BENCH_timing.json
    repro-hlts bench-analysis         # time structural vs enumerative
    repro-hlts table1 --workers 4 --cache-dir .repro-cache
    repro-hlts bench-tables           # write BENCH_tables.json
    repro-hlts serve submit ex --bits 8
    repro-hlts serve run              # drain the queue, then exit
    repro-hlts serve status           # the WAL-replayed job table
    repro-hlts serve result <job-id-prefix>
    repro-hlts serve --stats          # WAL-derived service metrics
    repro-hlts bench-service          # write BENCH_service.json
"""

from __future__ import annotations

import argparse
import sys

from .bench import load, names
from .cost import CostModel
from .harness import (ExperimentConfig, FLOW_ORDER, render_schedule,
                      render_sharing, render_summary, render_table,
                      synthesize_flow)
from .synth import SynthesisParams, run_ours


def _add_bits(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--bits", type=int, nargs="+", default=[4, 8, 16],
                        help="data-path bit widths (default: 4 8 16)")


def _add_journal(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--journal", metavar="PATH", default=None,
                        help="checkpoint completed cells to this JSONL "
                             "journal (atomic commits)")
    parser.add_argument("--resume", action="store_true",
                        help="replay cells already in --journal instead "
                             "of recomputing them")


def _add_parallel(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="worker processes for grid cells "
                             "(default: the CPU count; 1 = run inline)")
    parser.add_argument("--cache-dir", metavar="PATH", default=None,
                        help="content-hash result cache directory; "
                             "repeated cells (and bit-width-independent "
                             "baseline synthesis) become lookups")


def _make_cache(args):
    """The ResultCache behind ``--cache-dir`` (None when not asked for)."""
    if not getattr(args, "cache_dir", None):
        return None
    from .harness.cache import ResultCache
    from pathlib import Path
    return ResultCache(cache_dir=Path(args.cache_dir))


def _report_skips(outcome) -> int:
    """Print skipped-cell notes; exit 1 for an explicitly partial grid."""
    for skip in outcome.skipped:
        print(f"note: lost {skip.flow}/{skip.bits}-bit: {skip.reason}",
              file=sys.stderr)
    return 0 if outcome.ok() else 1


def _table_command(args, benchmark: str) -> int:
    from .harness.parallel import run_parallel_grid
    from .runtime import Journal
    grid = [(flow, bits) for flow in FLOW_ORDER for bits in args.bits]
    journal = Journal(args.journal) if args.journal else None
    outcome = run_parallel_grid(
        benchmark, grid, ExperimentConfig.quick,
        workers=args.workers, journal=journal, resume=args.resume,
        cache=_make_cache(args),
        progress=lambda msg: print(msg, file=sys.stderr))
    print(render_table(benchmark, outcome.cells, show_area=True))
    return _report_skips(outcome)


def _bench_command(args) -> int:
    from .harness.parallel import run_parallel_grid
    from .runtime import Budget, Journal
    budget = (Budget(wall_seconds=args.wall_seconds)
              if args.wall_seconds is not None else None)
    journal = Journal(args.journal) if args.journal else None
    outcome = run_parallel_grid(
        args.benchmark, [(args.flow, args.bits)],
        ExperimentConfig.quick, workers=args.workers, journal=journal,
        resume=args.resume, cache=_make_cache(args), budget=budget,
        progress=lambda msg: print(msg, file=sys.stderr))
    print(render_summary(outcome.cells))
    for cell in outcome.cells:
        for reason in getattr(cell, "degradation", ()):
            print(f"note: {cell.flow}/{cell.bits}-bit degraded: {reason}",
                  file=sys.stderr)
    return _report_skips(outcome)


def _chaos_command(args) -> int:
    """The ``chaos`` subcommand: fault-injection scenario matrix."""
    from .runtime.scenarios import SCENARIOS, run_scenarios
    if args.list_scenarios:
        for name, _func, description in SCENARIOS:
            print(f"{name:<24} {description}")
        return 0
    try:
        outcomes = run_scenarios(args.scenarios, benchmark=args.benchmark,
                                 bits=args.bits, workdir=args.workdir)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    width = max(len(outcome.name) for outcome in outcomes)
    for outcome in outcomes:
        status = "ok" if outcome.ok else "FAIL"
        print(f"{outcome.name:<{width}}  {status:<4}  {outcome.detail}")
    survived = sum(outcome.ok for outcome in outcomes)
    print(f"chaos: {survived}/{len(outcomes)} scenarios survived")
    return 0 if survived == len(outcomes) else 1


def _serve_request(args):
    """Build the :class:`~repro.service.JobRequest` of ``serve submit``."""
    from .service import JobRequest
    return JobRequest(
        benchmark=args.benchmark, flow=args.flow, bits=args.bits,
        deadline_seconds=args.deadline_seconds, max_steps=args.max_steps,
        fault_fraction=args.fault_fraction,
        max_sequences=args.max_sequences, saturation=args.saturation,
        sequence_length=args.sequence_length,
        max_backtracks=args.max_backtracks)


def _serve_run(args, spool) -> int:
    """``serve run``: supervise the spool until drained or signalled."""
    import signal
    from pathlib import Path

    from .service import RetryPolicy, Supervisor

    cache = None
    if not args.no_cache:
        from .harness.cache import ResultCache
        cache_dir = (Path(args.cache_dir) if args.cache_dir
                     else spool.root / "cache")
        cache = ResultCache(cache_dir=cache_dir)
    supervisor = Supervisor(
        spool, workers=args.workers, isolate=args.isolate,
        retry=RetryPolicy(max_attempts=args.max_attempts,
                          backoff_base=args.backoff_base,
                          backoff_cap=args.backoff_cap),
        default_deadline=args.default_deadline, cache=cache,
        progress=lambda msg: print(msg, file=sys.stderr))

    def _drain(signum: int, _frame) -> None:
        supervisor.request_stop(signal.Signals(signum).name)

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _drain)
        except ValueError:  # not the main thread (in-process tests)
            pass
    try:
        outcome = supervisor.run(
            max_jobs=args.max_jobs,
            idle_seconds=None if args.daemon else args.idle_seconds)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    stopped = (f", stopped by {outcome.stopped_reason} (drained "
               f"gracefully)" if outcome.stopped else "")
    print(f"serve: {outcome.done} done ({outcome.recovered} recovered), "
          f"{outcome.retried} retried, {outcome.quarantined} quarantined, "
          f"{outcome.reaped} reaped in {outcome.elapsed_seconds:.1f}s"
          f"{stopped}")
    return 0 if outcome.ok() else 1


def _serve_command(args) -> int:
    """The ``serve`` subcommand tree: a durable synthesis job service."""
    import json as _json

    from .service import Spool, render_stats, service_stats

    spool = Spool(args.spool)
    command = getattr(args, "serve_command", None)
    if command is None or command == "stats":
        if args.stats or command == "stats":
            print(render_stats(service_stats(spool)))
            return 0
        print("error: serve needs a subcommand or --stats "
              "(try: serve submit ex)", file=sys.stderr)
        return 2
    if command == "submit":
        jid, queued = spool.submit(_serve_request(args))
        print(f"{jid} {'queued' if queued else 'already spooled'}")
        return 0
    if command == "run":
        return _serve_run(args, spool)
    if command == "status":
        states = spool.states()
        if args.job:
            try:
                jid = spool.resolve(args.job)
            except KeyError as exc:
                print(f"error: {exc.args[0]}", file=sys.stderr)
                return 1
            state = states.get(jid)
            if state is None:
                print(f"{jid} spooled (not yet ledgered)")
            else:
                print(_json.dumps(state.to_dict(), indent=2,
                                  sort_keys=True))
            return 0
        for jid, state in states.items():
            line = (f"{jid[:12]}  {state.state:<11}  "
                    f"attempts={state.attempts} failures={state.failures}")
            if state.reason:
                line += f"  {state.reason}"
            print(line)
        return 0
    if command == "result":
        try:
            jid = spool.resolve(args.job)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 1
        record = spool.read_result(jid)
        if record is None:
            state = spool.states().get(jid)
            print(f"error: no result for {jid[:12]} "
                  f"(state: {state.state if state else 'unledgered'})",
                  file=sys.stderr)
            return 1
        print(_json.dumps(record, sort_keys=True, indent=2))
        return 0
    if command == "cancel":
        try:
            jid = spool.resolve(args.job)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 1
        if spool.cancel(jid, reason=args.reason):
            print(f"{jid} cancelled")
            return 0
        state = spool.states().get(jid)
        print(f"error: cannot cancel {jid[:12]} "
              f"(state: {state.state if state else 'unledgered'})",
              file=sys.stderr)
        return 1
    return 2


def _figure_command(args, benchmarks: list[str]) -> int:
    for benchmark in benchmarks:
        design = synthesize_flow(benchmark, "ours", args.figure_bits)
        print(render_schedule(design))
        print()
        print(render_sharing(design))
        print()
    return 0


def _lint_resolve(target: str, bits: int = 16, optimize: bool = False):
    """Resolve a lint target to a DFG: benchmark name or HDL file path.

    ``bits`` is the width constant folding evaluates at when
    ``optimize`` is requested — the *command's* datapath width, so an
    HDL file is folded at the same width it is later analysed at.
    """
    if target in names():
        return load(target)
    import os
    if os.path.isfile(target):
        from .hdl import compile_source
        with open(target) as handle:
            return compile_source(handle.read(), optimize=optimize,
                                  bits=bits)
    raise KeyError(target)


def _lint_command(args) -> int:
    """The ``lint`` subcommand: collect-all design-rule checking."""
    from .errors import ReproError
    from .lint import (PIPELINE_FAILURE_CODE, Diagnostic, LintReport,
                       Severity, all_rules, lint_pipeline)

    if args.list_rules:
        print(f"{'code':<8} {'layer':<12} {'severity':<8} title")
        for rule_ in all_rules():
            print(f"{rule_.code:<8} {rule_.layer:<12} "
                  f"{rule_.severity.value:<8} {rule_.title}")
        return 0

    targets = args.targets or list(names())
    results = []
    all_ok = True
    for target in targets:
        try:
            dfg = _lint_resolve(target, bits=args.bits,
                                optimize=args.optimize)
        except KeyError:
            print(f"error: {target!r} is neither a registered benchmark "
                  f"({', '.join(names())}) nor an HDL file", file=sys.stderr)
            return 2
        except ReproError as exc:
            # A source file that does not even compile is itself a
            # finding, not a crash: report it and keep linting the rest.
            report = LintReport()
            report.add(Diagnostic(
                code=PIPELINE_FAILURE_CODE, severity=Severity.ERROR,
                layer="pipeline", location=target,
                message=f"{target}: cannot compile: {exc}",
                hint="fix the HDL syntax/semantic errors first"))
            all_ok = False
            results.append((target, report, False))
            continue
        report = lint_pipeline(dfg, bits=args.bits, gates=not args.no_gates,
                               depth_limit=args.depth_limit)
        ok = report.ok(strict=args.strict)
        all_ok = all_ok and ok
        results.append((target, report, ok))

    if args.fmt == "json":
        import json
        print(json.dumps({
            "targets": [{"name": t, "ok": ok, **report.to_dict()}
                        for t, report, ok in results],
            "strict": args.strict,
            "ok": all_ok,
        }, indent=2))
    else:
        for target, report, ok in results:
            status = "ok" if ok else "FAIL"
            print(f"== {target}: {report.summary()} [{status}]")
            for diag in report.sorted():
                print(f"   {diag.format()}")
    return 0 if all_ok else 1


def _analyze_resolve_designs(args):
    """Yield ``(target, design)`` for every analyze target, or an exit
    code when a target cannot be resolved/compiled."""
    from .errors import ReproError
    from .etpn.from_dfg import default_design

    targets = args.targets or list(names())
    resolved = []
    for target in targets:
        try:
            dfg = _lint_resolve(target, bits=args.bits)
        except KeyError:
            print(f"error: {target!r} is neither a registered benchmark "
                  f"({', '.join(names())}) nor an HDL file", file=sys.stderr)
            return 2
        except ReproError as exc:
            print(f"error: {target}: cannot compile: {exc}", file=sys.stderr)
            return 2
        print(f"analyzing {target}/{args.flow}/{args.bits}-bit ...",
              file=sys.stderr)
        if args.flow == "default":
            design = default_design(dfg)
        else:
            design = run_ours(dfg,
                              cost_model=CostModel(bits=args.bits)).design
        resolved.append((target, design))
    return resolved


def _structural_command(args) -> int:
    """``analyze --structural``: certificate-only fast mode, no BFS."""
    from .analysis import Verdict, structural_certificate

    resolved = _analyze_resolve_designs(args)
    if isinstance(resolved, int):
        return resolved
    results = []
    all_ok = True
    for target, design in resolved:
        cert = structural_certificate(design.control_net)
        problems = cert.check(design.control_net)
        refuted = [name for name, verdict in
                   (("safe", cert.safe), ("bounded", cert.bounded),
                    ("deadlock_free", cert.deadlock_free))
                   if verdict is Verdict.REFUTED]
        ok = not problems and not refuted
        all_ok = all_ok and ok
        results.append((target, cert, problems, refuted, ok))

    if args.fmt == "json":
        import json
        print(json.dumps({
            "targets": [
                {"name": t, "ok": ok, "refuted": refuted,
                 "check_problems": problems, **cert.to_dict()}
                for t, cert, problems, refuted, ok in results],
            "flow": args.flow,
            "mode": "structural",
            "ok": all_ok,
        }, indent=2))
    else:
        for target, cert, problems, refuted, ok in results:
            status = "ok" if ok else "FAIL"
            print(f"== {cert.summary()} [{status}]")
            if args.verbose:
                for inv in cert.p_invariants:
                    print(f"   P-invariant: {inv}")
                for inv in cert.t_invariants:
                    print(f"   T-invariant: {inv}")
            for name in refuted:
                print(f"   REFUTED: {name}")
            for problem in problems:
                print(f"   CHECK: {problem}")
    return 0 if all_ok else 1


def _cross_check_command(args) -> int:
    """``analyze --cross-check``: assert the two tiers agree."""
    from .analysis import cross_check
    from .analysis.reach_graph import DEFAULT_MAX_MARKINGS

    max_markings = args.max_markings or DEFAULT_MAX_MARKINGS
    resolved = _analyze_resolve_designs(args)
    if isinstance(resolved, int):
        return resolved
    mismatches = []
    for target, design in resolved:
        found = cross_check(design.control_net, max_markings=max_markings)
        verdict = "agree" if not found else "MISMATCH"
        print(f"== {target}: structural vs enumerative: {verdict}")
        for line in found:
            print(f"   {line}")
        mismatches.extend(found)
    total = "all tiers agree" if not mismatches else \
        f"{len(mismatches)} disagreement(s)"
    print(f"cross-check: {len(resolved)} design(s), {total}")
    return 0 if not mismatches else 1


def _analyze_command(args) -> int:
    """The ``analyze`` subcommand: MHP races + equivalence certificates."""
    from .analysis import analyze_design
    from .analysis.reach_graph import DEFAULT_MAX_MARKINGS

    if args.structural:
        return _structural_command(args)
    if args.cross_check:
        return _cross_check_command(args)

    max_markings = args.max_markings or DEFAULT_MAX_MARKINGS
    resolved = _analyze_resolve_designs(args)
    if isinstance(resolved, int):
        return resolved
    results = []
    all_ok = True
    for target, design in resolved:
        result = analyze_design(design, max_markings=max_markings,
                                tier=args.tier)
        ok = result.report.ok(strict=args.strict) and result.verified
        all_ok = all_ok and ok
        results.append((target, result, ok))

    def _decision(decision):
        if decision is None:
            return None
        return {"value": decision.value, "tier": str(decision.tier),
                "detail": decision.detail}

    if args.fmt == "json":
        import json
        print(json.dumps({
            "targets": [
                {"name": t, "ok": ok, "verified": r.verified,
                 "markings": r.markings,
                 "races": len(r.races),
                 "certificate": (r.certificate.to_dict()
                                 if r.certificate else None),
                 "structural": (r.structural.to_dict()
                                if r.structural else None),
                 "safe": _decision(r.safe),
                 "deadlock_free": _decision(r.deadlock_free),
                 **r.report.to_dict()}
                for t, r, ok in results],
            "flow": args.flow,
            "tier": args.tier,
            "strict": args.strict,
            "ok": all_ok,
        }, indent=2))
    else:
        for target, result, ok in results:
            status = "ok" if ok else "FAIL"
            print(f"== {result.summary()} [{status}]")
            if result.safe is not None:
                print(f"   {result.safe}; {result.deadlock_free}")
            for diag in result.report.sorted():
                print(f"   {diag.format()}")
            if result.certificate is not None and args.verbose:
                for line in result.certificate.summary().splitlines():
                    print(f"   {line}")
    return 0 if all_ok else 1


def _timing_command(args) -> int:
    """The ``timing`` subcommand: static timing analysis of the gates."""
    from .analysis.timing import ConeCache, analyze_timing
    from .errors import ReproError
    from .etpn.from_dfg import default_design
    from .gates import expand_to_gates
    from .rtl import generate_rtl

    targets = args.targets or list(names())
    # One cache across targets: benchmarks share expander idioms, so
    # isomorphic cones (interned to the same structural ids) are
    # evaluated once for the whole run.
    cache = ConeCache()
    results = []
    all_ok = True
    for target in targets:
        try:
            dfg = _lint_resolve(target, bits=args.bits)
        except KeyError:
            print(f"error: {target!r} is neither a registered benchmark "
                  f"({', '.join(names())}) nor an HDL file", file=sys.stderr)
            return 2
        except ReproError as exc:
            print(f"error: {target}: cannot compile: {exc}", file=sys.stderr)
            return 2
        print(f"timing {target}/{args.flow}/{args.bits}-bit ...",
              file=sys.stderr)
        if args.flow == "default":
            design = default_design(dfg)
        else:
            design = run_ours(dfg,
                              cost_model=CostModel(bits=args.bits)).design
        netlist = expand_to_gates(generate_rtl(design, args.bits))
        report = analyze_timing(
            netlist, bits=args.bits, period=args.period, cache=cache,
            k_paths=args.paths,
            sequential_constants=args.sequential_constants)
        ok = report.ok and (not args.strict or not report.unconstrained())
        all_ok = all_ok and ok
        results.append((target, report, ok))

    if args.fmt == "json":
        import json
        print(json.dumps({
            "targets": [{"target": t, "cmd_ok": ok, **report.to_dict()}
                        for t, report, ok in results],
            "flow": args.flow,
            "strict": args.strict,
            "ok": all_ok,
        }, indent=2))
    else:
        for target, report, ok in results:
            status = "ok" if ok else "FAIL"
            print(f"== {report.summary()} [{status}]")
            for e in report.violations():
                print(f"   VIOLATED {e.kind} {e.name}: slack {e.slack:+.2f} "
                      f"(arrival {e.arrival:.2f}, {e.levels} levels)")
            for e in report.unconstrained():
                print(f"   unconstrained {e.kind} {e.name}: "
                      f"cone proved constant")
            for e in report.skipped():
                print(f"   skipped {e.kind} {e.name}: {e.skip_reason}")
            if args.verbose:
                for path in report.paths:
                    print(f"   {path.format()}")
    return 0 if all_ok else 1


def _dataflow_assumptions(dfg, bits: int, input_bits: int | None):
    """Entry intervals when ``--input-bits`` restricts the inputs."""
    if input_bits is None:
        return None
    hi = (1 << min(input_bits, bits)) - 1
    return {v.name: (0, hi) for v in dfg.inputs()}


def _dataflow_command(args) -> int:
    """The ``dataflow`` subcommand: abstract-interpretation facts,
    certificate self-check, DFA findings and optional width narrowing."""
    from .analysis.dataflow import analyze_dataflow
    from .errors import ReproError
    from .lint import lint_dataflow

    targets = args.targets or list(names())
    results = []
    all_ok = True
    for target in targets:
        try:
            dfg = _lint_resolve(target, bits=max(args.bits))
        except KeyError:
            print(f"error: {target!r} is neither a registered benchmark "
                  f"({', '.join(names())}) nor an HDL file", file=sys.stderr)
            return 2
        except ReproError as exc:
            print(f"error: {target}: cannot compile: {exc}", file=sys.stderr)
            return 2
        for bits in args.bits:
            assumptions = _dataflow_assumptions(dfg, bits, args.input_bits)
            cert = analyze_dataflow(dfg, bits, assumptions=assumptions)
            problems = cert.check(dfg, vectors=args.vectors)
            report = lint_dataflow(dfg, bits=bits)
            narrow = None
            if args.narrow:
                from .cost import narrow_design
                from .etpn.from_dfg import default_design
                if args.flow == "default":
                    design = default_design(dfg)
                else:
                    design = run_ours(
                        dfg, cost_model=CostModel(bits=bits)).design
                narrow = narrow_design(design, bits,
                                       assumptions=assumptions, cert=cert)
            ok = not problems and report.ok(strict=args.strict)
            all_ok = all_ok and ok
            results.append((target, bits, cert, problems, report, narrow,
                            ok))

    if args.fmt == "json":
        import json
        print(json.dumps({
            "targets": [
                {"name": t, "bits": bits, "ok": ok,
                 "constant_ops": len(cert.constant_ops()),
                 "known_bits": cert.known_bit_total(),
                 "max_required_width": cert.max_required_width(),
                 "loop_iterations": cert.loop_iterations,
                 "widened": cert.widened,
                 "check_vectors": args.vectors,
                 "check_problems": problems,
                 "narrowing": narrow.to_dict() if narrow else None,
                 **report.to_dict()}
                for t, bits, cert, problems, report, narrow, ok in results],
            "strict": args.strict,
            "ok": all_ok,
        }, indent=2))
    else:
        for target, bits, cert, problems, report, narrow, ok in results:
            status = "ok" if ok else "FAIL"
            print(f"== {cert.summary()} "
                  f"[check {args.vectors} vectors: {status}]")
            for diag in report.sorted():
                print(f"   {diag.format()}")
            for problem in problems:
                print(f"   CHECK: {problem}")
            if narrow is not None:
                print(f"   narrowing: {narrow.summary()}")
            if args.verbose:
                for var, fact in sorted(cert.var_facts.items()):
                    print(f"   {var}: {fact}")
    return 0 if all_ok else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``repro-hlts`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-hlts",
        description="High-level test synthesis (Yang & Peng, DATE 1998): "
                    "regenerate the paper's tables and figures.")
    parser.add_argument("--traceback", action="store_true",
                        help="print the full traceback on pipeline errors "
                             "instead of a one-line message")
    sub = parser.add_subparsers(dest="command", required=True)

    for table, benchmark in (("table1", "ex"), ("table2", "dct"),
                             ("table3", "diffeq")):
        p = sub.add_parser(table, help=f"reproduce {table} ({benchmark})")
        _add_bits(p)
        _add_journal(p)
        _add_parallel(p)

    for figure, benchmarks in (("fig2", ["ex"]), ("fig3", ["dct", "diffeq"])):
        p = sub.add_parser(figure, help=f"reproduce {figure} schedule(s)")
        p.add_argument("--figure-bits", type=int, default=8)

    p = sub.add_parser("synth", help="synthesise one benchmark with ours")
    p.add_argument("benchmark", choices=names())
    p.add_argument("-k", type=int, default=3)
    p.add_argument("-a", "--alpha", type=float, default=2.0)
    p.add_argument("-b", "--beta", type=float, default=1.0)
    p.add_argument("--bits", type=int, default=8)

    p = sub.add_parser("explore", help="Pareto sweep over (k, alpha, beta)")
    p.add_argument("benchmark", choices=names())
    p.add_argument("--bits", type=int, default=8)
    _add_parallel(p)

    p = sub.add_parser("export", help="export a synthesised design")
    p.add_argument("benchmark", choices=names())
    p.add_argument("--what", choices=["verilog", "dot", "json"],
                   default="verilog")
    p.add_argument("--bits", type=int, default=8)

    p = sub.add_parser("report", help="markdown report from recorded rows")
    p.add_argument("--rows", default="benchmarks/out/rows.jsonl")
    p.add_argument("--output", default=None)

    p = sub.add_parser("bench", help="one table cell (flow x width)")
    p.add_argument("benchmark", choices=names())
    p.add_argument("--flow", choices=FLOW_ORDER, default="ours")
    p.add_argument("--bits", type=int, default=8)
    p.add_argument("--wall-seconds", type=float, default=None,
                   help="wall-clock budget for the cell; on exhaustion the "
                        "cell completes with a degraded partial result")
    _add_journal(p)
    _add_parallel(p)

    p = sub.add_parser(
        "chaos",
        help="fault-injection scenario matrix (prove graceful degradation)")
    p.add_argument("--scenario", action="append", dest="scenarios",
                   metavar="NAME", default=None,
                   help="run only this scenario (repeatable; "
                        "default: the whole matrix)")
    p.add_argument("--benchmark", choices=names(), default="ex",
                   help="benchmark the scenarios run on (default: ex)")
    p.add_argument("--bits", type=int, default=4,
                   help="data-path width for the scenarios (default: 4)")
    p.add_argument("--workdir", default=None,
                   help="directory for scenario artifacts such as "
                        "journals (default: a fresh temp dir)")
    p.add_argument("--list", action="store_true", dest="list_scenarios",
                   help="print the scenario table and exit")

    p = sub.add_parser(
        "serve",
        help="durable synthesis job service: filesystem spool + WAL "
             "ledger + supervised queue")
    p.add_argument("--spool", metavar="DIR", default=".repro-spool",
                   help="service spool directory — the whole transport "
                        "(default: .repro-spool)")
    p.add_argument("--stats", action="store_true",
                   help="print WAL-derived service metrics and exit")
    serve_sub = p.add_subparsers(dest="serve_command")

    def _add_spool(sub_parser: argparse.ArgumentParser) -> None:
        # SUPPRESS: only override the parent parser's --spool (parsed
        # before the sub-subcommand) when actually given here.
        sub_parser.add_argument("--spool", metavar="DIR",
                                default=argparse.SUPPRESS,
                                help="service spool directory "
                                     "(default: .repro-spool)")

    q = serve_sub.add_parser(
        "submit", help="spool one synthesis job (idempotent: identical "
                       "content gets the same job id)")
    q.add_argument("benchmark",
                   help="benchmark name; an unknown name is accepted and "
                        "quarantined after retries — poison input must "
                        "not crash the queue")
    q.add_argument("--flow", choices=FLOW_ORDER, default="ours")
    q.add_argument("--bits", type=int, default=8)
    q.add_argument("--deadline-seconds", type=float, default=None,
                   help="per-job wall-clock budget; also the reap "
                        "horizon in process mode")
    q.add_argument("--max-steps", type=int, default=None,
                   help="per-job abstract step ceiling")
    q.add_argument("--fault-fraction", type=float, default=None,
                   help="override the quick config's ATPG fault sample")
    q.add_argument("--max-sequences", type=int, default=None)
    q.add_argument("--saturation", type=int, default=None)
    q.add_argument("--sequence-length", type=int, default=None)
    q.add_argument("--max-backtracks", type=int, default=None)
    _add_spool(q)

    q = serve_sub.add_parser(
        "run", help="supervise the queue: dispatch, retry, quarantine; "
                    "SIGTERM drains gracefully (exit 0)")
    q.add_argument("--workers", type=int, default=1, metavar="N",
                   help="worker processes (default: 1 = evaluate inline)")
    q.add_argument("--isolate", action="store_true",
                   help="one process per job even with --workers 1 "
                        "(enables hung-worker reaping)")
    q.add_argument("--max-attempts", type=int, default=3,
                   help="consecutive failures before quarantine "
                        "(default: 3)")
    q.add_argument("--backoff-base", type=float, default=0.5,
                   help="first retry delay, doubled per failure "
                        "(default: 0.5s)")
    q.add_argument("--backoff-cap", type=float, default=30.0,
                   help="retry delay ceiling (default: 30s)")
    q.add_argument("--default-deadline", type=float, default=None,
                   help="reap horizon for jobs without their own "
                        "--deadline-seconds (process mode)")
    q.add_argument("--max-jobs", type=int, default=None,
                   help="stop after this many dispatch attempts")
    q.add_argument("--idle-seconds", type=float, default=0.0,
                   help="after draining, keep polling for new "
                        "submissions this long (default: exit on drain)")
    q.add_argument("--daemon", action="store_true",
                   help="serve until a signal arrives, never exit on "
                        "drain")
    q.add_argument("--cache-dir", metavar="PATH", default=None,
                   help="result cache directory "
                        "(default: <spool>/cache)")
    q.add_argument("--no-cache", action="store_true",
                   help="evaluate every job from scratch")
    _add_spool(q)

    q = serve_sub.add_parser("status",
                             help="job table, or one job's full state")
    q.add_argument("job", nargs="?", metavar="JOB",
                   help="job id (unique prefix ok); omit for the table")
    _add_spool(q)

    q = serve_sub.add_parser("result",
                             help="print one finished job's cell record")
    q.add_argument("job", metavar="JOB", help="job id (unique prefix ok)")
    _add_spool(q)

    q = serve_sub.add_parser("cancel",
                             help="cancel a queued or retry-pending job")
    q.add_argument("job", metavar="JOB", help="job id (unique prefix ok)")
    q.add_argument("--reason", default="cancelled by user")
    _add_spool(q)

    q = serve_sub.add_parser("stats",
                             help="print WAL-derived service metrics")
    _add_spool(q)

    p = sub.add_parser(
        "bench-service",
        help="benchmark the service: cold vs warm drain plus an "
             "injected-fault round; write BENCH_service.json")
    p.add_argument("--benchmarks", nargs="+", choices=names(),
                   default=["ex", "paulin", "tseng"],
                   help="one job per benchmark (default: ex paulin tseng)")
    p.add_argument("--bits", type=int, default=4,
                   help="data-path width of every job (default: 4)")
    p.add_argument("--output", default="BENCH_service.json",
                   help="output path (default: BENCH_service.json)")
    p.add_argument("--workdir", default=None,
                   help="keep spools/cache here instead of a temp dir")

    p = sub.add_parser(
        "lint",
        help="design-rule check (DFG -> ETPN -> schedule -> binding -> gates)")
    p.add_argument("targets", nargs="*", metavar="TARGET",
                   help="benchmark names or HDL source files "
                        "(default: every registered benchmark)")
    p.add_argument("--strict", action="store_true",
                   help="treat warnings as errors for the exit status")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   dest="fmt", help="output format (default: text)")
    p.add_argument("--bits", type=int, default=8,
                   help="data-path width for the gate-level rules")
    p.add_argument("--optimize", action="store_true",
                   help="fold/CSE/DCE HDL-file targets at --bits before "
                        "linting (benchmarks are linted as registered)")
    p.add_argument("--no-gates", action="store_true",
                   help="skip the gate-level expansion rules (faster)")
    p.add_argument("--depth-limit", type=float, default=8.0,
                   help="sequential C/O depth threshold for TST002")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule table and exit")

    p = sub.add_parser(
        "analyze",
        help="concurrency analysis: MHP races + equivalence certificates")
    p.add_argument("targets", nargs="*", metavar="TARGET",
                   help="benchmark names or HDL source files "
                        "(default: every registered benchmark)")
    p.add_argument("--flow", choices=["ours", "default"], default="ours",
                   help="analyse the synthesised design (ours) or the "
                        "unmerged default allocation (default: ours)")
    p.add_argument("--bits", type=int, default=8,
                   help="data-path width for the synthesis cost model")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   dest="fmt", help="output format (default: text)")
    p.add_argument("--strict", action="store_true",
                   help="treat warnings as failures for the exit status")
    p.add_argument("--max-markings", type=int, default=None,
                   help="bound on the reachability-graph exploration")
    p.add_argument("--structural", action="store_true",
                   help="fast mode: print only the structural "
                        "certificates (invariants, siphons, verdicts); "
                        "never enumerates the state space")
    p.add_argument("--tier", choices=["auto", "structural", "enumerative"],
                   default="auto",
                   help="which analysis tier decides safety/deadlock "
                        "verdicts (default: auto = structure first, "
                        "enumerate only when inconclusive)")
    p.add_argument("--cross-check", action="store_true",
                   help="run both tiers to completion and fail on any "
                        "disagreement between structural and "
                        "enumerative verdicts")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="also print the per-output certificate expressions")

    p = sub.add_parser(
        "dataflow",
        help="abstract-interpretation dataflow facts: value ranges, "
             "known bits, certificate self-check, DFA findings")
    p.add_argument("targets", nargs="*", metavar="TARGET",
                   help="benchmark names or HDL source files "
                        "(default: every registered benchmark)")
    _add_bits(p)
    p.add_argument("--vectors", type=int, default=64,
                   help="random vectors for the certificate self-check "
                        "(default: 64)")
    p.add_argument("--input-bits", type=int, default=None,
                   help="assume primary inputs occupy at most this many "
                        "bits (default: the full datapath width)")
    p.add_argument("--narrow", action="store_true",
                   help="also synthesise the design (--flow) and report "
                        "the equivalence-gated width-narrowing area delta")
    p.add_argument("--flow", choices=["ours", "default"], default="ours",
                   help="design point --narrow re-prices (default: ours)")
    p.add_argument("--strict", action="store_true",
                   help="treat DFA warnings as failures for the exit "
                        "status")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   dest="fmt", help="output format (default: text)")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="also print the per-variable abstract values")

    p = sub.add_parser(
        "timing",
        help="static timing analysis: arrivals, slack, K worst paths "
             "over the expanded gate netlist")
    p.add_argument("targets", nargs="*", metavar="TARGET",
                   help="benchmark names or HDL source files "
                        "(default: every registered benchmark)")
    p.add_argument("--flow", choices=["ours", "default"], default="ours",
                   help="time the synthesised design (ours) or the "
                        "unmerged default allocation (default: ours)")
    p.add_argument("--bits", type=int, default=8,
                   help="data-path width of the expansion (default: 8)")
    p.add_argument("--period", type=float, default=None,
                   help="clock period in gate units (default: the "
                        "library-implied period at --bits)")
    p.add_argument("--paths", type=int, default=4, metavar="K",
                   help="worst paths to extract gate by gate (default: 4)")
    p.add_argument("--sequential-constants", action="store_true",
                   help="seed DFF launches with reset-reachable "
                        "constants for stronger false-path pruning")
    p.add_argument("--strict", action="store_true",
                   help="treat unconstrained endpoints as failures "
                        "for the exit status")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   dest="fmt", help="output format (default: text)")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="also print the K worst paths gate by gate")

    p = sub.add_parser(
        "bench-timing",
        help="time cold vs incremental re-analysis after one merger "
             "and write BENCH_timing.json")
    p.add_argument("--bits", type=int, default=8,
                   help="data-path width of the expansions (default: 8)")
    p.add_argument("--repeats", type=int, default=5,
                   help="timing repeats; the minimum is recorded "
                        "(default: 5)")
    p.add_argument("--output", default="BENCH_timing.json",
                   help="output path (default: BENCH_timing.json)")

    p = sub.add_parser(
        "bench-dataflow",
        help="time the dataflow fixpoint, fault pruning and width "
             "narrowing and write BENCH_dataflow.json")
    _add_bits(p)
    p.add_argument("--repeats", type=int, default=3,
                   help="timing repeats; the minimum is recorded")
    p.add_argument("--vectors", type=int, default=64,
                   help="random vectors per certificate self-check "
                        "(default: 64)")
    p.add_argument("--input-bits", type=int, default=8,
                   help="narrowing cells assume inputs occupy at most "
                        "min(this, bits) bits (default: 8)")
    p.add_argument("--output", default="BENCH_dataflow.json",
                   help="output path (default: BENCH_dataflow.json)")

    p = sub.add_parser(
        "bench-analysis",
        help="time structural certificates vs reachability BFS and "
             "write BENCH_analysis.json")
    p.add_argument("--bits", type=int, nargs="+", default=[4, 8],
                   help="data-path widths to benchmark (default: 4 8)")
    p.add_argument("--repeats", type=int, default=3,
                   help="timing repeats; the minimum is recorded")
    p.add_argument("--output", default="BENCH_analysis.json",
                   help="output path (default: BENCH_analysis.json)")

    p = sub.add_parser(
        "bench-tables",
        help="time sequential vs parallel vs warm-cache table runs and "
             "write BENCH_tables.json")
    p.add_argument("--benchmark", choices=names(), default="ex",
                   help="benchmark whose table grid is timed (default: ex)")
    p.add_argument("--bits", type=int, nargs="+", default=[4, 8, 16],
                   help="data-path widths of the grid (default: 4 8 16)")
    p.add_argument("--workers", type=int, default=4, metavar="N",
                   help="worker processes for the parallel runs "
                        "(default: 4)")
    p.add_argument("--output", default="BENCH_tables.json",
                   help="output path (default: BENCH_tables.json)")
    p.add_argument("--cache-dir", metavar="PATH", default=None,
                   help="keep the warm cache here instead of a "
                        "throwaway temp directory")

    args = parser.parse_args(argv)

    from .errors import ReproError
    try:
        return _dispatch(args, parser)
    except ReproError as exc:
        # Pipeline failures are expected, diagnosable events: one line
        # on stderr and a distinct exit code (3: lint reserves 1 and
        # argparse 2) unless the user asked for the full traceback.
        if args.traceback:
            raise
        print(f"error: {exc}", file=sys.stderr)
        return 3


def _dispatch(args, parser: argparse.ArgumentParser) -> int:
    """Route parsed arguments to their subcommand."""
    if args.command == "table1":
        return _table_command(args, "ex")
    if args.command == "table2":
        return _table_command(args, "dct")
    if args.command == "table3":
        return _table_command(args, "diffeq")
    if args.command == "fig2":
        return _figure_command(args, ["ex"])
    if args.command == "fig3":
        return _figure_command(args, ["dct", "diffeq"])
    if args.command == "synth":
        result = run_ours(load(args.benchmark),
                          SynthesisParams(k=args.k, alpha=args.alpha,
                                          beta=args.beta),
                          CostModel(bits=args.bits))
        print(render_schedule(result.design))
        print()
        print(render_sharing(result.design))
        print()
        print(f"mergers applied: {result.iterations}")
        for record in result.history:
            print(f"  #{record.iteration}: {record.kind} "
                  f"{record.absorbed} -> {record.kept} "
                  f"(dE={record.delta_e:+.0f}, dH={record.delta_h:+.4f})")
        return 0
    if args.command == "explore":
        from .harness.parallel import explore_grid
        from .synth import pareto_front, render_front
        points = explore_grid(
            args.benchmark, args.bits, workers=args.workers,
            cache=_make_cache(args),
            progress=lambda msg: print(msg, file=sys.stderr))
        print("all distinct designs:")
        print(render_front(points))
        print()
        print("Pareto front (E, H, testability):")
        print(render_front(pareto_front(points)))
        return 0
    if args.command == "export":
        design = run_ours(load(args.benchmark),
                          cost_model=CostModel(bits=args.bits)).design
        if args.what == "json":
            import json as _json
            from .io import design_to_dict
            print(_json.dumps(design_to_dict(design), indent=2))
        elif args.what == "dot":
            from .etpn.dot import datapath_to_dot
            print(datapath_to_dot(design.datapath))
        else:
            from .gates import expand_to_gates, netlist_to_verilog
            from .rtl import generate_rtl
            netlist = expand_to_gates(generate_rtl(design, args.bits))
            print(netlist_to_verilog(netlist))
        return 0
    if args.command == "report":
        from .harness.report import load_rows, render_report, write_report
        if args.output:
            print(write_report(args.rows, args.output))
        else:
            print(render_report(load_rows(args.rows)))
        return 0
    if args.command == "bench":
        return _bench_command(args)
    if args.command == "chaos":
        return _chaos_command(args)
    if args.command == "serve":
        return _serve_command(args)
    if args.command == "bench-service":
        from .harness.bench_service import run_bench_service
        report = run_bench_service(
            benchmarks=args.benchmarks, bits=args.bits,
            output=args.output, workdir=args.workdir,
            progress=lambda msg: print(msg, file=sys.stderr))
        print(f"wrote {args.output}: {report['jobs']} jobs, "
              f"warm speedup {report['warm_speedup']}x, "
              f"fault round: {report['fault_round']['retries']} retries, "
              f"{report['fault_round']['quarantined']} quarantined, "
              f"results identical: {report['results_identical']}")
        return 0 if (report["results_identical"]
                     and report["fault_round"]["all_real_jobs_done"]) else 1
    if args.command == "lint":
        return _lint_command(args)
    if args.command == "analyze":
        return _analyze_command(args)
    if args.command == "dataflow":
        return _dataflow_command(args)
    if args.command == "timing":
        return _timing_command(args)
    if args.command == "bench-timing":
        from .harness.bench_timing import run_bench_timing
        report = run_bench_timing(
            bits=args.bits, repeats=args.repeats, output=args.output,
            progress=lambda msg: print(msg, file=sys.stderr))
        print(f"wrote {args.output}: {report['cells_total']} cells, "
              f"incremental speedup {report['speedup_total']}x "
              f"(target {report['target_speedup']}x, "
              f"met: {report['meets_target']}), "
              f"reports identical: {report['reports_match']}")
        return 0 if report["reports_match"] else 1
    if args.command == "bench-dataflow":
        from .harness.bench_dataflow import run_bench_dataflow
        report = run_bench_dataflow(
            bits=args.bits, repeats=args.repeats, vectors=args.vectors,
            input_bits=args.input_bits, output=args.output,
            progress=lambda msg: print(msg, file=sys.stderr))
        print(f"wrote {args.output}: {report['cells_total']} cells, "
              f"certs ok: {report['all_certs_ok']}, "
              f"benchmarks with pruned faults: "
              f"{report['benchmarks_with_pruned']}, "
              f"with narrowing savings: "
              f"{report['benchmarks_with_area_delta']}")
        return 0 if report["all_certs_ok"] else 1
    if args.command == "bench-analysis":
        from .harness.bench_analysis import run_bench_analysis
        report = run_bench_analysis(bits=args.bits, repeats=args.repeats,
                                    output=args.output,
                                    progress=lambda msg: print(
                                        msg, file=sys.stderr))
        print(f"wrote {args.output}: {report['cells_total']} cells, "
              f"structural faster on "
              f"{report['structural_faster']}/{report['cells_total']}")
        return 0 if report["structural_faster"] == report["cells_total"] \
            else 1
    if args.command == "bench-tables":
        from .harness.bench_tables import run_bench_tables
        report = run_bench_tables(
            benchmark=args.benchmark, bits=args.bits, workers=args.workers,
            output=args.output, cache_dir=args.cache_dir,
            progress=lambda msg: print(msg, file=sys.stderr))
        print(f"wrote {args.output}: speedup {report['speedup']}x "
              f"(parallel-cold {report['speedup_cold']}x, "
              f"warm hit rate {report['warm_hit_rate']}), "
              f"rows identical: {report['rows_identical']}")
        return 0 if report["rows_identical"] else 1
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
