"""Command-line interface: regenerate the paper's tables and figures.

Examples::

    repro-hlts table1                 # Table 1 (Ex), quick budgets
    repro-hlts table2 --bits 4        # Table 2 (Dct), 4-bit column only
    repro-hlts fig2                   # Figure 2 (Ex schedule)
    repro-hlts synth diffeq -k 3 -a 2 -b 1
    repro-hlts bench ex --flow ours --bits 8
"""

from __future__ import annotations

import argparse
import sys

from .bench import load, names
from .cost import CostModel
from .harness import (ExperimentConfig, FLOW_ORDER, render_schedule,
                      render_sharing, render_summary, render_table, run_cell,
                      synthesize_flow)
from .synth import SynthesisParams, run_ours


def _add_bits(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--bits", type=int, nargs="+", default=[4, 8, 16],
                        help="data-path bit widths (default: 4 8 16)")


def _table_command(args, benchmark: str) -> int:
    cells = []
    for flow in FLOW_ORDER:
        for bits in args.bits:
            print(f"running {benchmark}/{flow}/{bits}-bit ...",
                  file=sys.stderr)
            cells.append(run_cell(benchmark, flow,
                                  ExperimentConfig.quick(bits)))
    print(render_table(benchmark, cells, show_area=True))
    return 0


def _figure_command(args, benchmarks: list[str]) -> int:
    for benchmark in benchmarks:
        design = synthesize_flow(benchmark, "ours", args.figure_bits)
        print(render_schedule(design))
        print()
        print(render_sharing(design))
        print()
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``repro-hlts`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-hlts",
        description="High-level test synthesis (Yang & Peng, DATE 1998): "
                    "regenerate the paper's tables and figures.")
    sub = parser.add_subparsers(dest="command", required=True)

    for table, benchmark in (("table1", "ex"), ("table2", "dct"),
                             ("table3", "diffeq")):
        p = sub.add_parser(table, help=f"reproduce {table} ({benchmark})")
        _add_bits(p)

    for figure, benchmarks in (("fig2", ["ex"]), ("fig3", ["dct", "diffeq"])):
        p = sub.add_parser(figure, help=f"reproduce {figure} schedule(s)")
        p.add_argument("--figure-bits", type=int, default=8)

    p = sub.add_parser("synth", help="synthesise one benchmark with ours")
    p.add_argument("benchmark", choices=names())
    p.add_argument("-k", type=int, default=3)
    p.add_argument("-a", "--alpha", type=float, default=2.0)
    p.add_argument("-b", "--beta", type=float, default=1.0)
    p.add_argument("--bits", type=int, default=8)

    p = sub.add_parser("explore", help="Pareto sweep over (k, alpha, beta)")
    p.add_argument("benchmark", choices=names())
    p.add_argument("--bits", type=int, default=8)

    p = sub.add_parser("export", help="export a synthesised design")
    p.add_argument("benchmark", choices=names())
    p.add_argument("--what", choices=["verilog", "dot", "json"],
                   default="verilog")
    p.add_argument("--bits", type=int, default=8)

    p = sub.add_parser("report", help="markdown report from recorded rows")
    p.add_argument("--rows", default="benchmarks/out/rows.jsonl")
    p.add_argument("--output", default=None)

    p = sub.add_parser("bench", help="one table cell (flow x width)")
    p.add_argument("benchmark", choices=names())
    p.add_argument("--flow", choices=FLOW_ORDER, default="ours")
    p.add_argument("--bits", type=int, default=8)

    args = parser.parse_args(argv)

    if args.command == "table1":
        return _table_command(args, "ex")
    if args.command == "table2":
        return _table_command(args, "dct")
    if args.command == "table3":
        return _table_command(args, "diffeq")
    if args.command == "fig2":
        return _figure_command(args, ["ex"])
    if args.command == "fig3":
        return _figure_command(args, ["dct", "diffeq"])
    if args.command == "synth":
        result = run_ours(load(args.benchmark),
                          SynthesisParams(k=args.k, alpha=args.alpha,
                                          beta=args.beta),
                          CostModel(bits=args.bits))
        print(render_schedule(result.design))
        print()
        print(render_sharing(result.design))
        print()
        print(f"mergers applied: {result.iterations}")
        for record in result.history:
            print(f"  #{record.iteration}: {record.kind} "
                  f"{record.absorbed} -> {record.kept} "
                  f"(dE={record.delta_e:+.0f}, dH={record.delta_h:+.4f})")
        return 0
    if args.command == "explore":
        from .synth import explore, pareto_front, render_front
        points = explore(load(args.benchmark), CostModel(bits=args.bits))
        print("all distinct designs:")
        print(render_front(points))
        print()
        print("Pareto front (E, H, testability):")
        print(render_front(pareto_front(points)))
        return 0
    if args.command == "export":
        design = run_ours(load(args.benchmark),
                          cost_model=CostModel(bits=args.bits)).design
        if args.what == "json":
            import json as _json
            from .io import design_to_dict
            print(_json.dumps(design_to_dict(design), indent=2))
        elif args.what == "dot":
            from .etpn.dot import datapath_to_dot
            print(datapath_to_dot(design.datapath))
        else:
            from .gates import expand_to_gates, netlist_to_verilog
            from .rtl import generate_rtl
            netlist = expand_to_gates(generate_rtl(design, args.bits))
            print(netlist_to_verilog(netlist))
        return 0
    if args.command == "report":
        from .harness.report import load_rows, render_report, write_report
        if args.output:
            print(write_report(args.rows, args.output))
        else:
            print(render_report(load_rows(args.rows)))
        return 0
    if args.command == "bench":
        cell = run_cell(args.benchmark, args.flow,
                        ExperimentConfig.quick(args.bits))
        print(render_summary([cell]))
        return 0
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
