"""JSON serialisation of DFGs and design points.

Lets users persist a synthesised design (schedule + binding) and reload
it later without re-running the algorithm — e.g. to regenerate RTL at a
different bit width, or to archive the design a bench produced.

The format is deliberately plain: a dict with a ``format`` tag, fully
reconstructable through the public builder APIs, so files survive
internal refactorings.
"""

from __future__ import annotations

import json
from pathlib import Path

from .alloc.binding import Binding
from .dfg import DFG, DFGBuilder
from .dfg.graph import Const
from .errors import ReproError
from .etpn.design import Design
from .runtime.atomic import atomic_write_text

FORMAT_DFG = "repro-dfg-v1"
FORMAT_DESIGN = "repro-design-v1"


def dfg_to_dict(dfg: DFG) -> dict:
    """Serialise a DFG to plain data."""
    return {
        "format": FORMAT_DFG,
        "name": dfg.name,
        "inputs": [v.name for v in dfg.inputs()],
        "outputs": [v.name for v in dfg.outputs()],
        "loop_condition": dfg.loop_condition,
        "operations": [
            {
                "id": op.op_id,
                "kind": op.kind.name,
                "dst": op.dst,
                "srcs": [{"const": s.value} if isinstance(s, Const)
                         else {"var": s} for s in op.srcs],
            }
            for op in dfg
        ],
    }


def dfg_from_dict(data: dict) -> DFG:
    """Rebuild a DFG serialised by :func:`dfg_to_dict`."""
    from .dfg.ops import OpKind

    if data.get("format") != FORMAT_DFG:
        raise ReproError(f"not a {FORMAT_DFG} document: "
                         f"{data.get('format')!r}")
    builder = DFGBuilder(data["name"])
    builder.inputs(*data["inputs"])
    for op in data["operations"]:
        srcs = [s["const"] if "const" in s else s["var"]
                for s in op["srcs"]]
        builder.op(op["id"], OpKind[op["kind"]], op["dst"], *srcs)
    builder.outputs(*data["outputs"])
    if data.get("loop_condition"):
        builder.loop(data["loop_condition"])
    return builder.build()


def design_to_dict(design: Design) -> dict:
    """Serialise a complete design point (DFG + schedule + binding)."""
    return {
        "format": FORMAT_DESIGN,
        "label": design.label,
        "dfg": dfg_to_dict(design.dfg),
        "steps": dict(sorted(design.steps.items())),
        "module_of": dict(sorted(design.binding.module_of.items())),
        "register_of": dict(sorted(design.binding.register_of.items())),
    }


def design_from_dict(data: dict) -> Design:
    """Rebuild (and validate) a design serialised by
    :func:`design_to_dict`."""
    if data.get("format") != FORMAT_DESIGN:
        raise ReproError(f"not a {FORMAT_DESIGN} document: "
                         f"{data.get('format')!r}")
    dfg = dfg_from_dict(data["dfg"])
    binding = Binding(dict(data["module_of"]), dict(data["register_of"]))
    design = Design(dfg, {k: int(v) for k, v in data["steps"].items()},
                    binding, label=data.get("label", ""))
    design.validate()
    return design


def save_design(design: Design, path: str | Path) -> None:
    """Write a design to a JSON file (atomically: temp, fsync, rename)."""
    atomic_write_text(path, json.dumps(design_to_dict(design), indent=2)
                      + "\n")


def load_design(path: str | Path) -> Design:
    """Read and validate a design from a JSON file."""
    return design_from_dict(json.loads(Path(path).read_text()))
