"""The data-flow graph (DFG) produced by the behavioural front end.

A :class:`DFG` is the input to every synthesis flow in this library.  It
models one straight-line block of behaviour (for looping behaviours such
as Diffeq, the loop *body*; the loop structure itself lives in the ETPN
control part).  Nodes are operation instances; variables connect them.

Variables follow the 1998 papers' convention: a *variable* (a source-level
name) is the unit of register allocation.  A variable may be defined by
more than one operation (e.g. ``u1 = u - e; u1 = u1 - f`` in Diffeq); the
builder resolves each use to its *reaching definition* in program order,
which yields flow, anti and output dependence edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Union

from ..errors import DFGError
from .ops import OpKind, arity, is_comparison, unit_class, UnitClass


@dataclass(frozen=True)
class Const:
    """A literal operand, e.g. the ``3`` in ``3 * x``."""

    value: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return str(self.value)


#: An operation operand is either a variable name or a literal constant.
Operand = Union[str, Const]


@dataclass
class Variable:
    """A source-level variable; the unit of register allocation.

    Attributes:
        name: the source name, unique within the DFG.
        is_input: True when the variable carries a primary-input value
            (it has a use with no reaching definition).
        is_output: True when the variable's final value is a primary output.
        is_condition: True when the variable is a 1-bit condition consumed
            by the control part rather than stored in a data register.
    """

    name: str
    is_input: bool = False
    is_output: bool = False
    is_condition: bool = False

    def needs_register(self) -> bool:
        """Conditions feed the controller directly and need no register."""
        return not self.is_condition


@dataclass
class Operation:
    """One operation instance (a data-path node before allocation).

    Attributes:
        op_id: unique identifier, conventionally the paper's node names
            such as ``"N21"``.
        kind: the operation performed.
        srcs: operands in positional order.
        dst: name of the variable defined, or None for a pure sink.
        reaching: for each source operand, the op_id of the reaching
            definition, or None when the operand is a constant or carries
            a primary-input value.  Filled in by the builder.
        order: position in program order (used to resolve reaching defs).
    """

    op_id: str
    kind: OpKind
    srcs: tuple[Operand, ...]
    dst: Optional[str]
    reaching: tuple[Optional[str], ...] = ()
    order: int = 0

    def src_variables(self) -> list[str]:
        """Names of the variable operands, in positional order."""
        return [s for s in self.srcs if isinstance(s, str)]

    def __str__(self) -> str:  # pragma: no cover - debug helper
        rhs = f" {self.kind} ".join(str(s) for s in self.srcs)
        return f"{self.op_id}: {self.dst} = {rhs}"


@dataclass(frozen=True)
class DependenceEdge:
    """A scheduling-precedence edge between two operations.

    ``kind`` is ``"flow"`` (value produced by ``src`` is read by ``dst``,
    latency = delay of ``src``), ``"anti"`` (``dst`` redefines a variable
    that ``src`` reads; zero latency) or ``"output"`` (``dst`` redefines a
    variable that ``src`` defines; latency = delay of ``src``).
    """

    src: str
    dst: str
    kind: str
    variable: str


class DFG:
    """An immutable data-flow graph.

    Construct one through :class:`repro.dfg.builder.DFGBuilder` (or the
    HDL front end); direct construction is for internal use.
    """

    def __init__(
        self,
        name: str,
        variables: dict[str, Variable],
        operations: dict[str, Operation],
        op_order: list[str],
        loop_condition: Optional[str] = None,
    ) -> None:
        self.name = name
        self._variables = dict(variables)
        self._operations = dict(operations)
        self._op_order = list(op_order)
        #: Name of the condition variable guarding the loop back-edge, or
        #: None for straight-line behaviour.
        self.loop_condition = loop_condition
        self._edges: list[DependenceEdge] = self._compute_edges()
        self._succ: dict[str, list[DependenceEdge]] = {o: [] for o in operations}
        self._pred: dict[str, list[DependenceEdge]] = {o: [] for o in operations}
        for edge in self._edges:
            self._succ[edge.src].append(edge)
            self._pred[edge.dst].append(edge)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def variables(self) -> dict[str, Variable]:
        """Mapping of variable name to :class:`Variable` (do not mutate)."""
        return self._variables

    @property
    def operations(self) -> dict[str, Operation]:
        """Mapping of op_id to :class:`Operation` (do not mutate)."""
        return self._operations

    @property
    def op_order(self) -> list[str]:
        """Operation ids in program order."""
        return list(self._op_order)

    def operation(self, op_id: str) -> Operation:
        """Return the operation with ``op_id``; raise DFGError if absent."""
        try:
            return self._operations[op_id]
        except KeyError:
            raise DFGError(f"{self.name}: no operation {op_id!r}") from None

    def variable(self, name: str) -> Variable:
        """Return the variable ``name``; raise DFGError if absent."""
        try:
            return self._variables[name]
        except KeyError:
            raise DFGError(f"{self.name}: no variable {name!r}") from None

    def inputs(self) -> list[Variable]:
        """Primary-input variables in name order."""
        return sorted((v for v in self._variables.values() if v.is_input),
                      key=lambda v: v.name)

    def outputs(self) -> list[Variable]:
        """Primary-output variables in name order."""
        return sorted((v for v in self._variables.values() if v.is_output),
                      key=lambda v: v.name)

    def edges(self) -> list[DependenceEdge]:
        """All dependence edges."""
        return list(self._edges)

    def flow_edges(self) -> list[DependenceEdge]:
        """Only flow (true-dependence) edges."""
        return [e for e in self._edges if e.kind == "flow"]

    def successors(self, op_id: str) -> list[DependenceEdge]:
        """Edges leaving ``op_id``."""
        return list(self._succ[op_id])

    def predecessors(self, op_id: str) -> list[DependenceEdge]:
        """Edges entering ``op_id``."""
        return list(self._pred[op_id])

    def defs_of(self, var: str) -> list[str]:
        """Op ids defining ``var``, in program order."""
        return [o for o in self._op_order if self._operations[o].dst == var]

    def uses_of(self, var: str) -> list[str]:
        """Op ids reading ``var``, in program order."""
        return [o for o in self._op_order
                if var in self._operations[o].src_variables()]

    def unit_classes(self) -> dict[str, UnitClass]:
        """Map each op_id to its functional-unit class."""
        return {o: unit_class(op.kind) for o, op in self._operations.items()}

    def __len__(self) -> int:
        return len(self._operations)

    def __iter__(self) -> Iterator[Operation]:
        for op_id in self._op_order:
            yield self._operations[op_id]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"DFG({self.name!r}, {len(self._operations)} ops, "
                f"{len(self._variables)} vars)")

    # ------------------------------------------------------------------
    # Dependence computation
    # ------------------------------------------------------------------
    def _compute_edges(self) -> list[DependenceEdge]:
        """Derive flow/anti/output dependence edges from reaching defs."""
        edges: set[DependenceEdge] = set()
        last_def: dict[str, str] = {}
        last_uses: dict[str, list[str]] = {}
        for op_id in self._op_order:
            op = self._operations[op_id]
            for src in op.src_variables():
                if src in last_def:
                    edges.add(DependenceEdge(last_def[src], op_id, "flow", src))
                last_uses.setdefault(src, []).append(op_id)
            if op.dst is not None:
                if op.dst in last_def:
                    edges.add(DependenceEdge(last_def[op.dst], op_id,
                                             "output", op.dst))
                for user in last_uses.get(op.dst, []):
                    if user != op_id:
                        edges.add(DependenceEdge(user, op_id, "anti", op.dst))
                last_def[op.dst] = op_id
                last_uses[op.dst] = []
        return sorted(edges, key=lambda e: (e.src, e.dst, e.kind, e.variable))

    # ------------------------------------------------------------------
    # Statistics used throughout the harness
    # ------------------------------------------------------------------
    def op_count_by_class(self) -> dict[UnitClass, int]:
        """Number of operations per functional-unit class."""
        counts: dict[UnitClass, int] = {}
        for op in self._operations.values():
            cls = unit_class(op.kind)
            counts[cls] = counts.get(cls, 0) + 1
        return counts

    def condition_variables(self) -> list[str]:
        """Names of condition variables (1-bit controller inputs)."""
        return sorted(n for n, v in self._variables.items() if v.is_condition)


def validate_operation(op: Operation) -> None:
    """Check one operation's internal consistency.

    Raises:
        DFGError: wrong operand count, or a comparison writing to a
            non-condition destination is *not* checked here (the DFG-level
            validator does that with variable information).
    """
    expected = arity(op.kind)
    if len(op.srcs) != expected:
        raise DFGError(
            f"operation {op.op_id}: {op.kind} expects {expected} operands, "
            f"got {len(op.srcs)}")
    if op.dst is None and not is_comparison(op.kind):
        raise DFGError(f"operation {op.op_id}: only comparisons may omit dst")
