"""Data-flow graph core: the behavioural input to every synthesis flow."""

from .builder import DFGBuilder
from .graph import Const, DFG, DependenceEdge, Operation, Variable
from .lifetime import Lifetime, conflict_graph, disjoint, variable_lifetimes
from .optimize import (OptimizeStats, eliminate_common_subexpressions,
                       eliminate_dead_code, fold_constants, optimize)
from .ops import (OpKind, UnitClass, compatible, is_commutative,
                  is_comparison, unit_class)
from .validate import validate_dfg

__all__ = [
    "Const",
    "DFG",
    "DFGBuilder",
    "DependenceEdge",
    "Lifetime",
    "OpKind",
    "OptimizeStats",
    "Operation",
    "UnitClass",
    "Variable",
    "compatible",
    "conflict_graph",
    "disjoint",
    "is_commutative",
    "is_comparison",
    "unit_class",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "fold_constants",
    "optimize",
    "validate_dfg",
    "variable_lifetimes",
]
