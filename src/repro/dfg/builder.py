"""Fluent construction of data-flow graphs.

Example::

    b = DFGBuilder("ex")
    b.inputs("a", "b", "c")
    b.op("N1", "*", "x", "a", "b")
    b.op("N2", "+", "y", "x", "c")
    b.outputs("y")
    dfg = b.build()

Operands given as strings name variables; integers become constants.
Operations are recorded in call order, which defines program order and
therefore reaching definitions for multiply-defined variables.
"""

from __future__ import annotations

from typing import Optional, Union

from ..errors import DFGError
from .graph import Const, DFG, Operand, Operation, Variable, validate_operation
from .ops import OpKind, is_comparison, parse_op_symbol
from .validate import validate_dfg

RawOperand = Union[str, int, Const]


class DFGBuilder:
    """Incrementally build and validate a :class:`repro.dfg.graph.DFG`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._variables: dict[str, Variable] = {}
        self._operations: dict[str, Operation] = {}
        self._op_order: list[str] = []
        self._loop_condition: Optional[str] = None
        self._outputs_declared = False

    # ------------------------------------------------------------------
    def inputs(self, *names: str) -> "DFGBuilder":
        """Declare primary-input variables."""
        for name in names:
            var = self._variables.setdefault(name, Variable(name))
            var.is_input = True
        return self

    def outputs(self, *names: str) -> "DFGBuilder":
        """Declare primary-output variables."""
        self._outputs_declared = True
        for name in names:
            var = self._variables.setdefault(name, Variable(name))
            var.is_output = True
        return self

    def op(self, op_id: str, kind: Union[OpKind, str], dst: Optional[str],
           *srcs: RawOperand) -> "DFGBuilder":
        """Add an operation.

        Args:
            op_id: unique id (e.g. ``"N21"``).
            kind: an :class:`OpKind` or its symbol (``"+"``, ``"*"`` ...).
            dst: destination variable name, or None for a sink comparison.
            srcs: operands; strings are variables, ints become constants.
        """
        if op_id in self._operations:
            raise DFGError(f"{self.name}: duplicate operation id {op_id!r}")
        if isinstance(kind, str):
            kind = parse_op_symbol(kind)
        operands: list[Operand] = []
        for src in srcs:
            if isinstance(src, int):
                operands.append(Const(src))
            elif isinstance(src, Const):
                operands.append(src)
            else:
                self._variables.setdefault(src, Variable(src))
                operands.append(src)
        if dst is not None:
            dst_var = self._variables.setdefault(dst, Variable(dst))
            if is_comparison(kind):
                dst_var.is_condition = True
        operation = Operation(op_id=op_id, kind=kind, srcs=tuple(operands),
                              dst=dst, order=len(self._op_order))
        validate_operation(operation)
        self._operations[op_id] = operation
        self._op_order.append(op_id)
        return self

    def compare(self, op_id: str, kind: Union[OpKind, str], dst: str,
                lhs: RawOperand, rhs: RawOperand) -> "DFGBuilder":
        """Add a comparison producing condition variable ``dst``."""
        self.op(op_id, kind, dst, lhs, rhs)
        if not is_comparison(self._operations[op_id].kind):
            raise DFGError(f"{self.name}: {op_id} is not a comparison")
        return self

    def loop(self, condition: str) -> "DFGBuilder":
        """Mark the DFG as a loop body repeated while ``condition`` holds."""
        self._loop_condition = condition
        return self

    # ------------------------------------------------------------------
    def build(self, validate: bool = True) -> DFG:
        """Finalise the graph: resolve reaching definitions and validate."""
        self._mark_implicit_inputs()
        self._resolve_reaching_defs()
        dfg = DFG(self.name, self._variables, self._operations,
                  self._op_order, loop_condition=self._loop_condition)
        if validate:
            validate_dfg(dfg)
        return dfg

    def _mark_implicit_inputs(self) -> None:
        """A variable used before any definition carries a primary input."""
        defined: set[str] = set()
        for op_id in self._op_order:
            op = self._operations[op_id]
            for src in op.src_variables():
                if src not in defined:
                    self._variables[src].is_input = True
            if op.dst is not None:
                defined.add(op.dst)
        if self._outputs_declared:
            # Explicit outputs: defined-but-unread variables are dead
            # code for the optimiser to find, not implicit outputs.
            return
        for op_id in self._op_order:
            op = self._operations[op_id]
            if op.dst is not None and not self._variables[op.dst].is_input:
                if op.dst not in {u for o in self._op_order
                                  for u in self._operations[o].src_variables()}:
                    # Defined but never read: a primary output by default.
                    if not self._variables[op.dst].is_condition:
                        self._variables[op.dst].is_output = True

    def _resolve_reaching_defs(self) -> None:
        last_def: dict[str, str] = {}
        for op_id in self._op_order:
            op = self._operations[op_id]
            reaching: list[Optional[str]] = []
            for src in op.srcs:
                if isinstance(src, Const):
                    reaching.append(None)
                else:
                    reaching.append(last_def.get(src))
            op.reaching = tuple(reaching)
            if op.dst is not None:
                last_def[op.dst] = op_id
