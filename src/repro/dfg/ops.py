"""Operation kinds and functional-unit compatibility classes.

The paper's data paths contain arithmetic operations executed on shared
functional modules.  Two operations may share a module only when one
physical unit can implement both; following the paper's tables we group
operations into *unit classes*: multiplier-class operations share
multipliers, and ALU-class operations (add, subtract, compare, logic)
share ALUs.
"""

from __future__ import annotations

import enum


class OpKind(enum.Enum):
    """The behavioural operation executed by a data-path node."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "=="
    NE = "!="
    AND = "&"
    OR = "|"
    XOR = "^"
    NOT = "~"
    SHL = "<<"
    SHR = ">>"
    MOVE = ":="

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class UnitClass(enum.Enum):
    """The class of functional unit able to execute an operation."""

    MULTIPLIER = "mult"
    ALU = "alu"
    SHIFTER = "shift"
    WIRE = "wire"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_COMPARISONS = frozenset({OpKind.LT, OpKind.GT, OpKind.LE, OpKind.GE,
                          OpKind.EQ, OpKind.NE})
_LOGIC = frozenset({OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.NOT})
_UNIT_CLASS = {
    OpKind.MUL: UnitClass.MULTIPLIER,
    OpKind.DIV: UnitClass.MULTIPLIER,
    OpKind.SHL: UnitClass.SHIFTER,
    OpKind.SHR: UnitClass.SHIFTER,
    OpKind.MOVE: UnitClass.WIRE,
}


def unit_class(kind: OpKind) -> UnitClass:
    """Return the class of functional unit that executes ``kind``.

    ADD/SUB, comparisons and bitwise logic all map to :data:`UnitClass.ALU`
    because a single ALU implements them; MUL/DIV map to
    :data:`UnitClass.MULTIPLIER`.
    """
    return _UNIT_CLASS.get(kind, UnitClass.ALU)


def is_comparison(kind: OpKind) -> bool:
    """Return True when ``kind`` produces a 1-bit condition result."""
    return kind in _COMPARISONS


def is_commutative(kind: OpKind) -> bool:
    """Return True when operand order does not affect the result."""
    return kind in {OpKind.ADD, OpKind.MUL, OpKind.AND, OpKind.OR,
                    OpKind.XOR, OpKind.EQ, OpKind.NE}


def compatible(kind_a: OpKind, kind_b: OpKind) -> bool:
    """Return True when two operations may share one functional module."""
    return unit_class(kind_a) == unit_class(kind_b)


def arity(kind: OpKind) -> int:
    """Return the number of data inputs an operation of ``kind`` reads."""
    if kind in (OpKind.NOT, OpKind.MOVE):
        return 1
    return 2


#: Default execution delay, in control steps, of each operation kind.  The
#: benchmarks in the paper use single-cycle operations; a module library may
#: override these (see :mod:`repro.cost.library`).
DEFAULT_DELAY = {kind: 1 for kind in OpKind}

#: Symbols used by the paper's tables for module kinds, e.g. ``(*)`` for a
#: multiplier row and ``(+)`` / ``(-)`` / ``(<)`` for ALU rows.
TABLE_SYMBOL = {
    UnitClass.MULTIPLIER: "*",
    UnitClass.ALU: "+-",
    UnitClass.SHIFTER: "<<",
    UnitClass.WIRE: ":=",
}


def parse_op_symbol(symbol: str) -> OpKind:
    """Map an operator symbol (``"+"``, ``"*"``, ``"<"``...) to an OpKind.

    Raises:
        ValueError: when the symbol names no known operation.
    """
    for kind in OpKind:
        if kind.value == symbol:
            return kind
    raise ValueError(f"unknown operation symbol: {symbol!r}")
