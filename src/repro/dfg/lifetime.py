"""Variable lifetime analysis (step 13 of Algorithm 1 in the paper).

Lifetime semantics
------------------
A register is written at the clock edge that *ends* a control step and
read combinationally *during* a step.  Hence:

* a computed value born in step ``t`` occupies its register during steps
  ``t+1, t+2, ...`` — interval ``(t, death]``;
* a primary-input variable is loaded from its port at the end of the
  step *before* its first use, so its birth is ``first_use - 1``;
* a primary-output value must survive one step past its final
  definition so it can be driven to the port;
* a multiply-defined variable (``u1 = u - e; u1 = u1 - f``) occupies one
  register for the union of its value intervals, i.e. a single merged
  interval.

Two variables may share a register exactly when their intervals are
disjoint; intervals ``(b1, d1]`` and ``(b2, d2]`` overlap iff
``b1 < d2 and b2 < d1``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ScheduleError
from .graph import DFG


@dataclass(frozen=True)
class Lifetime:
    """Half-open occupation interval ``(birth, death]`` of a variable."""

    variable: str
    birth: int
    death: int

    def overlaps(self, other: "Lifetime") -> bool:
        """True when the two variables cannot share a register."""
        return self.birth < other.death and other.birth < self.death

    @property
    def span(self) -> int:
        """Number of steps the variable occupies a register."""
        return max(0, self.death - self.birth)

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return f"{self.variable}:({self.birth},{self.death}]"


def variable_lifetimes(dfg: DFG, steps: dict[str, int]) -> dict[str, Lifetime]:
    """Compute the lifetime of every register-needing variable.

    Args:
        dfg: the data-flow graph.
        steps: a complete schedule mapping op_id to control step.

    Returns:
        Mapping from variable name to its :class:`Lifetime`.

    Raises:
        ScheduleError: when ``steps`` does not cover every operation.
    """
    missing = set(dfg.operations) - set(steps)
    if missing:
        raise ScheduleError(f"{dfg.name}: unscheduled operations "
                            f"{sorted(missing)}")

    lifetimes: dict[str, Lifetime] = {}
    for name, var in dfg.variables.items():
        if not var.needs_register():
            continue
        def_steps = [steps[o] for o in dfg.defs_of(name)]
        use_steps = [steps[o] for o in dfg.uses_of(name)]
        if not def_steps and not use_steps:
            continue
        if var.is_input and use_steps:
            birth = min(use_steps) - 1
        elif def_steps:
            birth = min(def_steps)
        else:
            # Used but never defined and not an input: validator forbids
            # this, but stay defensive.
            birth = min(use_steps) - 1
        death = birth
        if use_steps:
            death = max(death, max(use_steps))
        if def_steps:
            # A later redefinition keeps the register occupied through
            # the defining step (the old value is still live inside it).
            death = max(death, max(def_steps))
        if var.is_output and def_steps:
            death = max(death, max(def_steps) + 1)
        lifetimes[name] = Lifetime(name, birth, death)
    return lifetimes


def conflict_graph(lifetimes: dict[str, Lifetime]) -> dict[str, set[str]]:
    """Adjacency sets of the register-sharing conflict graph."""
    names = sorted(lifetimes)
    graph: dict[str, set[str]] = {n: set() for n in names}
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            if lifetimes[a].overlaps(lifetimes[b]):
                graph[a].add(b)
                graph[b].add(a)
    return graph


def disjoint(lifetimes: dict[str, Lifetime], group: list[str]) -> bool:
    """True when all variables in ``group`` can share one register."""
    present = [lifetimes[v] for v in group if v in lifetimes]
    for i, a in enumerate(present):
        for b in present[i + 1:]:
            if a.overlaps(b):
                return False
    return True


def max_overlap(lifetimes: dict[str, Lifetime]) -> int:
    """Maximum number of simultaneously live variables.

    This is the lower bound on register count for the given schedule.
    """
    events: list[tuple[int, int]] = []
    for lt in lifetimes.values():
        if lt.span == 0:
            continue
        events.append((lt.birth, 1))
        events.append((lt.death, -1))
    events.sort()
    live = best = 0
    for _, delta in events:
        live += delta
        best = max(best, live)
    return best
