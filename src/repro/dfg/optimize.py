"""Behavioural optimisations on data-flow graphs.

Classic front-end passes a VHDL compiler would run before synthesis:

* **constant folding** — operations whose operands are all literals are
  evaluated at compile time (at a chosen bit width, since arithmetic
  wraps);
* **common-subexpression elimination** — two operations computing the
  same kind over the same *values* collapse into one (e.g. Diffeq's two
  ``u * dx`` products);
* **dead-code elimination** — operations whose results reach no output
  and no condition are dropped.

Each pass returns a *new* DFG; the original is never mutated.  Note the
testability interplay: CSE reduces area but also removes the natural
redundancy that made some values doubly observable, so the benches can
measure both directions.
"""

from __future__ import annotations

from dataclasses import dataclass

from .builder import DFGBuilder
from .graph import Const, DFG, Operand
from .ops import OpKind, is_commutative


@dataclass
class OptimizeStats:
    """What the pipeline removed."""

    folded: int = 0
    cse_removed: int = 0
    dead_removed: int = 0

    @property
    def total_removed(self) -> int:
        return self.folded + self.cse_removed + self.dead_removed


def _rebuild(dfg: DFG, keep: dict[str, tuple[OpKind, tuple[Operand, ...],
                                             str | None]]) -> DFG:
    """Build a new DFG from the surviving (possibly rewritten) ops."""
    builder = DFGBuilder(dfg.name)
    builder.inputs(*(v.name for v in dfg.inputs()))
    for op_id in dfg.op_order:
        if op_id not in keep:
            continue
        kind, srcs, dst = keep[op_id]
        builder.op(op_id, kind, dst,
                   *(s.value if isinstance(s, Const) else s for s in srcs))
    builder.outputs(*(v.name for v in dfg.outputs()))
    if dfg.loop_condition is not None:
        builder.loop(dfg.loop_condition)
    return builder.build()


def fold_constants(dfg: DFG, bits: int = 16) -> tuple[DFG, int]:
    """Evaluate all-literal operations at width ``bits``.

    A folded operation becomes a MOVE of the literal so its destination
    variable (and node id) survives for downstream passes and bindings.
    """
    from ..rtl.semantics import apply_op

    keep: dict = {}
    folded = 0
    for op_id in dfg.op_order:
        op = dfg.operation(op_id)
        if (op.dst is not None and op.kind != OpKind.MOVE
                and all(isinstance(s, Const) for s in op.srcs)):
            operands = [s.value for s in op.srcs]
            if len(operands) == 1:
                operands.append(0)
            value = apply_op(op.kind, operands[0], operands[1], bits)
            keep[op_id] = (OpKind.MOVE, (Const(value),), op.dst)
            folded += 1
        else:
            keep[op_id] = (op.kind, op.srcs, op.dst)
    return _rebuild(dfg, keep), folded


def eliminate_common_subexpressions(dfg: DFG) -> tuple[DFG, int]:
    """Merge operations computing the same value.

    Two operations match when they have the same kind and their operand
    *values* match — a variable operand matches only when its reaching
    definition is the same op (so redefined variables don't fuse).
    Commutative kinds match either operand order.  Later matches are
    rewritten into MOVEs from the surviving value so multiply-defined
    destinations stay defined.
    """
    keep: dict = {}
    removed = 0
    available: dict[tuple, str] = {}

    def value_key(op) -> tuple | None:
        parts = []
        for operand, reaching in zip(op.srcs, op.reaching):
            if isinstance(operand, Const):
                parts.append(("const", operand.value))
            else:
                # Input-carried values key on the name; computed values
                # on their defining op.
                parts.append(("def", reaching) if reaching
                             else ("input", operand))
        if is_commutative(op.kind):
            parts.sort()
        return (op.kind, tuple(parts))

    for op_id in dfg.op_order:
        op = dfg.operation(op_id)
        if op.dst is None:
            keep[op_id] = (op.kind, op.srcs, op.dst)
            continue
        key = value_key(op)
        prior = available.get(key)
        if prior is not None:
            prior_dst = dfg.operation(prior).dst
            # Only safe when the prior value is still current (its
            # variable has not been redefined in between).
            still_current = dfg.defs_of(prior_dst)[-1] == prior \
                or _no_redef_between(dfg, prior, op_id, prior_dst)
            if still_current and prior_dst != op.dst:
                keep[op_id] = (OpKind.MOVE, (prior_dst,), op.dst)
                removed += 1
                continue
        available[key] = op_id
        keep[op_id] = (op.kind, op.srcs, op.dst)
    return _rebuild(dfg, keep), removed


def _no_redef_between(dfg: DFG, def_op: str, use_op: str, var: str) -> bool:
    defs = dfg.defs_of(var)
    order = dfg.op_order
    def_pos, use_pos = order.index(def_op), order.index(use_op)
    return not any(def_pos < order.index(d) < use_pos
                   for d in defs if d != def_op)


def eliminate_dead_code(dfg: DFG) -> tuple[DFG, int]:
    """Drop operations whose results reach no output or condition."""
    live_vars = {v.name for v in dfg.outputs()} | set(dfg.condition_variables())
    live_ops: set[str] = set()
    changed = True
    while changed:
        changed = False
        for op_id in reversed(dfg.op_order):
            if op_id in live_ops:
                continue
            op = dfg.operation(op_id)
            if op.dst in live_vars:
                live_ops.add(op_id)
                for src in op.src_variables():
                    if src not in live_vars:
                        live_vars.add(src)
                        changed = True
                changed = True
    keep = {op_id: (dfg.operation(op_id).kind, dfg.operation(op_id).srcs,
                    dfg.operation(op_id).dst)
            for op_id in dfg.op_order if op_id in live_ops}
    removed = len(dfg.operations) - len(keep)
    if not keep:
        # Degenerate: everything dead; keep the graph as-is instead of
        # producing an invalid empty DFG.
        return dfg, 0
    return _rebuild(dfg, keep), removed


def optimize(dfg: DFG, bits: int = 16) -> tuple[DFG, OptimizeStats]:
    """Run fold → CSE → DCE to a fixpoint (at most a few rounds)."""
    stats = OptimizeStats()
    current = dfg
    for _ in range(10):
        current, folded = fold_constants(current, bits)
        current, cse = eliminate_common_subexpressions(current)
        current, dead = eliminate_dead_code(current)
        stats.folded += folded
        stats.cse_removed += cse
        stats.dead_removed += dead
        if folded == cse == dead == 0:
            break
    return current, stats
