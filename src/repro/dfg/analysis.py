"""Structural analyses of a data-flow graph.

These are schedule-independent: topological order, ASAP/ALAP bounds for
an unconstrained schedule, mobility, and the DFG critical path.  They are
used by every scheduler and by the synthesis algorithm's ΔE estimation.
"""

from __future__ import annotations

from ..errors import DFGError
from .graph import DFG, DependenceEdge


def edge_latency(dfg: DFG, edge: DependenceEdge,
                 delays: dict[str, int] | None = None) -> int:
    """Minimum control-step distance implied by a dependence edge.

    Flow and output dependences require the consumer/redefiner to start
    at least ``delay(src)`` steps after the producer; anti dependences
    allow the redefinition in the same step (the old value is read during
    the step, the new one is clocked in at its end).
    """
    if edge.kind == "anti":
        return 0
    delay = 1 if delays is None else delays.get(edge.src, 1)
    return delay


def topological_order(dfg: DFG) -> list[str]:
    """Operations in a dependence-respecting order (Kahn's algorithm)."""
    indegree = {op_id: len(dfg.predecessors(op_id)) for op_id in dfg.operations}
    ready = sorted(op_id for op_id, d in indegree.items() if d == 0)
    order: list[str] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for edge in dfg.successors(node):
            indegree[edge.dst] -= 1
            if indegree[edge.dst] == 0:
                # Insert keeping deterministic (sorted) tie-breaking.
                lo, hi = 0, len(ready)
                while lo < hi:
                    mid = (lo + hi) // 2
                    if ready[mid] < edge.dst:
                        lo = mid + 1
                    else:
                        hi = mid
                ready.insert(lo, edge.dst)
    if len(order) != len(dfg.operations):
        raise DFGError(f"{dfg.name}: dependence cycle")
    return order


def asap_steps(dfg: DFG, delays: dict[str, int] | None = None) -> dict[str, int]:
    """Earliest legal control step of each operation (steps count from 0)."""
    steps: dict[str, int] = {}
    for op_id in topological_order(dfg):
        earliest = 0
        for edge in dfg.predecessors(op_id):
            earliest = max(earliest, steps[edge.src] + edge_latency(dfg, edge, delays))
        steps[op_id] = earliest
    return steps


def alap_steps(dfg: DFG, horizon: int | None = None,
               delays: dict[str, int] | None = None) -> dict[str, int]:
    """Latest legal control step of each operation within ``horizon`` steps.

    ``horizon`` defaults to the unconstrained critical-path length, which
    makes ALAP the mirror of ASAP and mobility = alap - asap ≥ 0.
    """
    asap = asap_steps(dfg, delays)
    if horizon is None:
        horizon = critical_path_length(dfg, delays)
    last_step = horizon - 1
    steps: dict[str, int] = {}
    for op_id in reversed(topological_order(dfg)):
        latest = last_step
        for edge in dfg.successors(op_id):
            latest = min(latest, steps[edge.dst] - edge_latency(dfg, edge, delays))
        if latest < asap[op_id]:
            raise DFGError(
                f"{dfg.name}: horizon {horizon} infeasible for {op_id}")
        steps[op_id] = latest
    return steps


def mobility(dfg: DFG, horizon: int | None = None,
             delays: dict[str, int] | None = None) -> dict[str, int]:
    """Scheduling freedom (ALAP - ASAP) of each operation."""
    asap = asap_steps(dfg, delays)
    alap = alap_steps(dfg, horizon, delays)
    return {op_id: alap[op_id] - asap[op_id] for op_id in dfg.operations}


def critical_path_length(dfg: DFG,
                         delays: dict[str, int] | None = None) -> int:
    """Length, in control steps, of the DFG's unconstrained schedule."""
    asap = asap_steps(dfg, delays)
    if not asap:
        return 0
    end = 0
    for op_id, start in asap.items():
        delay = 1 if delays is None else delays.get(op_id, 1)
        end = max(end, start + delay)
    return end


def critical_path_ops(dfg: DFG,
                      delays: dict[str, int] | None = None) -> list[str]:
    """One longest dependence chain, as a list of op ids in order."""
    asap = asap_steps(dfg, delays)
    length = critical_path_length(dfg, delays)

    def op_delay(op_id: str) -> int:
        return 1 if delays is None else delays.get(op_id, 1)

    tail = max((op for op in dfg.operations
                if asap[op] + op_delay(op) == length),
               key=lambda op: asap[op])
    chain = [tail]
    current = tail
    while True:
        preds = [e for e in dfg.predecessors(current)
                 if asap[e.src] + edge_latency(dfg, e, delays) == asap[current]]
        if not preds:
            break
        current = min(preds, key=lambda e: e.src).src
        chain.append(current)
    chain.reverse()
    return chain
