"""Whole-graph validation for data-flow graphs.

The invariants live in :mod:`repro.lint.rules_dfg` (codes
``DFG001``-``DFG009``); this module keeps the raise-style API existing
callers rely on.  Unlike the original first-error version,
:func:`validate_dfg` now collects *every* violated rule and raises one
:class:`~repro.errors.DFGError` listing all of them.
"""

from __future__ import annotations

from ..errors import DFGError


def validate_dfg(dfg) -> None:
    """Check global consistency of a DFG.

    Rules enforced (the lint layer's error rules):

    * every operand and destination variable exists in the variable
      table;
    * condition variables are defined only by comparisons and never feed
      arithmetic (they are controller inputs, not data);
    * the flow-dependence relation is acyclic (a loop body is
      straight-line; the loop back-edge lives in the control part);
    * a loop condition, when declared, names a condition variable;
    * at least one primary input and one operation exist;
    * operand counts match each operation's arity.

    Raises:
        DFGError: listing every violated rule (not just the first).
    """
    from ..lint import lint_dfg
    errors = lint_dfg(dfg).errors()
    if errors:
        raise DFGError("; ".join(d.message for d in errors))
