"""Whole-graph validation for data-flow graphs."""

from __future__ import annotations

from ..errors import DFGError
from .ops import is_comparison


def validate_dfg(dfg) -> None:
    """Check global consistency of a DFG.

    Rules enforced:

    * every operand variable exists in the variable table;
    * condition variables are defined only by comparisons and never feed
      arithmetic (they are controller inputs, not data);
    * the flow-dependence relation is acyclic (a loop body is
      straight-line; the loop back-edge lives in the control part);
    * a loop condition, when declared, names a condition variable;
    * at least one primary input and one operation exist.

    Raises:
        DFGError: on the first violated rule.
    """
    if not dfg.operations:
        raise DFGError(f"{dfg.name}: empty DFG")
    if not any(v.is_input for v in dfg.variables.values()):
        raise DFGError(f"{dfg.name}: no primary inputs")

    for op in dfg.operations.values():
        for src in op.src_variables():
            if src not in dfg.variables:
                raise DFGError(f"{dfg.name}: {op.op_id} reads unknown "
                               f"variable {src!r}")
            if dfg.variables[src].is_condition:
                raise DFGError(f"{dfg.name}: {op.op_id} reads condition "
                               f"variable {src!r} as data")
        if op.dst is not None:
            if op.dst not in dfg.variables:
                raise DFGError(f"{dfg.name}: {op.op_id} writes unknown "
                               f"variable {op.dst!r}")
            if dfg.variables[op.dst].is_condition and not is_comparison(op.kind):
                raise DFGError(f"{dfg.name}: {op.op_id} writes condition "
                               f"variable {op.dst!r} but is not a comparison")

    if dfg.loop_condition is not None:
        if dfg.loop_condition not in dfg.variables:
            raise DFGError(f"{dfg.name}: unknown loop condition "
                           f"{dfg.loop_condition!r}")
        if not dfg.variables[dfg.loop_condition].is_condition:
            raise DFGError(f"{dfg.name}: loop condition "
                           f"{dfg.loop_condition!r} is not a condition")

    _check_acyclic(dfg)


def _check_acyclic(dfg) -> None:
    """Detect cycles over all dependence edges with a colouring DFS."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {op_id: WHITE for op_id in dfg.operations}
    for root in dfg.operations:
        if colour[root] != WHITE:
            continue
        stack: list[tuple[str, int]] = [(root, 0)]
        colour[root] = GREY
        while stack:
            node, idx = stack[-1]
            succs = dfg.successors(node)
            if idx < len(succs):
                stack[-1] = (node, idx + 1)
                child = succs[idx].dst
                if colour[child] == GREY:
                    raise DFGError(f"{dfg.name}: dependence cycle through "
                                   f"{child}")
                if colour[child] == WHITE:
                    colour[child] = GREY
                    stack.append((child, 0))
            else:
                colour[node] = BLACK
                stack.pop()
