"""Table 1 — the area-optimised Ex benchmark (paper §5).

Regenerates, for each synthesis flow and bit width, the module and
register allocations, #Mux, fault coverage, test-generation time and
test-application cycles, and records paper-vs-measured rows.
"""

from __future__ import annotations

import pytest

from _support import (bench_bits, paper_comparison, record_row, record_text,
                      table_cell)
from repro.harness import FLOW_ORDER, render_table

_CELLS = []


@pytest.mark.parametrize("bits", bench_bits())
@pytest.mark.parametrize("flow", FLOW_ORDER)
def test_table1_cell(benchmark, flow, bits):
    cell = benchmark.pedantic(table_cell, args=("ex", flow, bits),
                              rounds=1, iterations=1)
    row = paper_comparison(cell)
    benchmark.extra_info.update(row)
    record_row("table1", row)
    _CELLS.append(cell)
    assert cell.atpg.fault_coverage > 50.0
    assert cell.area_mm2 > 0.0


def test_table1_render(benchmark):
    """Assemble and persist the full Table 1 rendering."""
    if not _CELLS:
        pytest.skip("cells not collected in this run")
    text = benchmark.pedantic(lambda: render_table("ex", _CELLS, show_area=True), rounds=1, iterations=1)
    record_text("table1_ex.txt", text)
    print("\n" + text)
    assert "Ours" in text
