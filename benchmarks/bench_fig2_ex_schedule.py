"""Figure 2 — the schedule of Ex after the synthesis algorithm.

Regenerates the step-by-step schedule with the module and register
sharing groups the figure's caption describes.
"""

from __future__ import annotations

import pytest

from _support import record_row, record_text
from repro.harness import (render_lifetimes, render_schedule, render_sharing,
                           synthesize_flow)
from repro.sched import ops_by_step


def test_fig2_ex_schedule(benchmark):
    design = benchmark.pedantic(synthesize_flow, args=("ex", "ours", 8),
                                rounds=1, iterations=1)
    text = "\n".join([render_schedule(design), "", render_sharing(design),
                      "", render_lifetimes(design)])
    record_text("fig2_ex_schedule.txt", text)
    print("\n" + text)
    record_row("fig2", {"steps": design.num_steps,
                        "schedule": {op: step for op, step
                                     in sorted(design.steps.items())}})
    # Shape checks mirroring the figure: multiplications lead, the
    # subtraction chain follows, each shared module's ops sit in
    # distinct steps.
    grouped = ops_by_step(design.steps)
    assert "N21" in grouped[0] or "N22" in grouped[0]
    for module, ops in design.binding.modules().items():
        steps = [design.steps[o] for o in ops]
        assert len(set(steps)) == len(steps)
