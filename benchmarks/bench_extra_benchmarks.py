"""X1 — the extra benchmarks §5 mentions: EWF, Paulin, Tseng.

The paper gives no tables for these ("due to the space limitation");
this bench runs all four flows at 4 bits and records the same row
structure so the comparison extends beyond the three published tables.
EWF, much larger than the others, is run at the synthesis level for all
flows plus a single ATPG spot check.
"""

from __future__ import annotations

import pytest

from _support import cell_config, record_row, record_text
from repro.bench import load
from repro.harness import FLOW_ORDER, render_summary, run_cell, synthesize_flow
from repro.testability import analyze, sequential_depth_metric

_CELLS = []


@pytest.mark.parametrize("name", ["paulin", "tseng"])
@pytest.mark.parametrize("flow", FLOW_ORDER)
def test_extra_atpg_cell(benchmark, name, flow):
    cell = benchmark.pedantic(run_cell, args=(name, flow, cell_config(4)),
                              rounds=1, iterations=1)
    row = cell.row()
    benchmark.extra_info.update(row)
    record_row("extra", row)
    _CELLS.append(cell)
    assert cell.atpg.fault_coverage > 50.0


@pytest.mark.parametrize("flow", FLOW_ORDER)
def test_ewf_synthesis(benchmark, flow):
    design = benchmark.pedantic(synthesize_flow, args=("ewf", flow, 8),
                                rounds=1, iterations=1)
    quality = analyze(design.datapath).design_quality()
    row = {"benchmark": "ewf", "flow": flow, **design.summary(),
           "quality": round(quality, 3),
           "seq_depth": sequential_depth_metric(design.datapath)}
    benchmark.extra_info.update(row)
    record_row("extra_ewf", row)
    assert design.binding.module_count() <= len(design.dfg)


def test_extra_render(benchmark):
    if not _CELLS:
        pytest.skip("cells not collected in this run")
    text = benchmark.pedantic(lambda: render_summary(_CELLS), rounds=1, iterations=1)
    record_text("extra_benchmarks.txt", text)
    print("\n" + text)
