"""Figure 3 — the schedules of Dct (a) and Diffeq (b) after synthesis."""

from __future__ import annotations

import pytest

from _support import record_row, record_text
from repro.harness import render_schedule, render_sharing, synthesize_flow


@pytest.mark.parametrize("name", ["dct", "diffeq"])
def test_fig3_schedule(benchmark, name):
    design = benchmark.pedantic(synthesize_flow, args=(name, "ours", 8),
                                rounds=1, iterations=1)
    text = render_schedule(design) + "\n\n" + render_sharing(design)
    record_text(f"fig3_{name}_schedule.txt", text)
    print("\n" + text)
    record_row("fig3", {"benchmark": name, "steps": design.num_steps})
    for module, ops in design.binding.modules().items():
        steps = [design.steps[o] for o in ops]
        assert len(set(steps)) == len(steps)
    if name == "diffeq":
        assert design.dfg.loop_condition == "cond"
