"""X3 — BIST session emulation across the synthesised designs.

Plans BILBO sessions for each flow's Diffeq design (conflicted sessions
= self-loops) and emulates the unit-level sessions with exact MISR
aliasing accounting.
"""

from __future__ import annotations

import pytest

from _support import record_row, record_text
from repro.bench import load
from repro.bist import evaluate_design_bist, plan_bist
from repro.harness import FLOW_ORDER, synthesize_flow

_ROWS = []


@pytest.mark.parametrize("flow", FLOW_ORDER)
def test_bist_plan_and_sessions(benchmark, flow):
    design = synthesize_flow("diffeq", flow, 4)

    def run():
        return evaluate_design_bist(design, bits=4, patterns=15)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    plan_summary = result.plan.summary()
    row = {"flow": flow, **plan_summary,
           "coverage": round(result.coverage, 2),
           "aliased": result.aliased,
           "cycles": result.test_cycles,
           "overhead_mm2": round(result.overhead_mm2, 4)}
    benchmark.extra_info.update(row)
    record_row("bist", row)
    _ROWS.append(row)
    assert result.coverage > 60.0


def test_bist_conflicts_track_self_loops(benchmark):
    if not _ROWS:
        pytest.skip("rows not collected in this run")
    lines = ["flow       sessions confl  cov% aliased cycles overhead"]
    for row in _ROWS:
        lines.append(f"{row['flow']:<10} {row['sessions']:>8} "
                     f"{row['conflicted']:>5} {row['coverage']:>5} "
                     f"{row['aliased']:>7} {row['cycles']:>6} "
                     f"{row['overhead_mm2']:>8}")
    text = benchmark.pedantic(lambda: "\n".join(lines),
                              rounds=1, iterations=1)
    record_text("bist_sessions.txt", text)
    print("\n" + text)
    for row in _ROWS:
        design = synthesize_flow("diffeq", row["flow"], 4)
        self_loop_modules = {m for m, _ in design.datapath.self_loops()}
        assert row["conflicted"] == len(self_loop_modules)
