"""A2 — ablation: SR1/SR2 merge-sort rescheduling vs. naive ordering.

§4.3 decides every ambiguous merge order with the C/O enhancement
strategy.  This bench runs Algorithm 1 with the strategy on and with a
take-the-first-feasible-order policy, and compares the time-domain
sequential depth (total variable lifetime span) of the results.
"""

from __future__ import annotations

import pytest

from _support import record_row, record_text
from repro.bench import load
from repro.cost import CostModel
from repro.synth import SynthesisParams, run_ours
from repro.testability import analyze

_ROWS = []


def _span(design) -> int:
    return sum(lt.span for lt in design.lifetimes.values())


@pytest.mark.parametrize("strategy", ["enhance", "first"])
@pytest.mark.parametrize("name", ["ex", "dct", "diffeq"])
def test_ablation_order_strategy(benchmark, name, strategy):
    dfg = load(name)

    def run():
        return run_ours(dfg, SynthesisParams(order_strategy=strategy),
                        CostModel(bits=8))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    design = result.design
    row = {"benchmark": name, "strategy": strategy, **design.summary(),
           "lifetime_span": _span(design),
           "quality": round(analyze(design.datapath).design_quality(), 3)}
    benchmark.extra_info.update(row)
    record_row("ablation_resched", row)
    _ROWS.append(row)
    design.validate()


def test_ablation_enhance_no_worse(benchmark):
    """The enhancement strategy never increases total lifetime span."""
    if not _ROWS:
        pytest.skip("rows not collected in this run")
    lines = ["bench  strategy steps span quality"]
    for row in _ROWS:
        lines.append(f"{row['benchmark']:<6} {row['strategy']:<8} "
                     f"{row['steps']:>5} {row['lifetime_span']:>4} "
                     f"{row['quality']:>7}")
    text = benchmark.pedantic(lambda: "\n".join(lines), rounds=1, iterations=1)
    record_text("ablation_resched.txt", text)
    print("\n" + text)
    for name in ("ex", "dct", "diffeq"):
        enhance = [r for r in _ROWS
                   if r["benchmark"] == name and r["strategy"] == "enhance"]
        naive = [r for r in _ROWS
                 if r["benchmark"] == name and r["strategy"] == "first"]
        if enhance and naive:
            assert (enhance[0]["lifetime_span"]
                    <= naive[0]["lifetime_span"] + 2)
