"""Benchmark-suite configuration: clear the shared output once per run."""

from __future__ import annotations

import pytest

from _support import OUT_DIR


def pytest_configure(config):
    rows = OUT_DIR / "rows.jsonl"
    if rows.exists():
        rows.unlink()


@pytest.fixture
def one_shot(benchmark):
    """Run a callable exactly once under pytest-benchmark timing.

    ATPG runs are deterministic but expensive; one round is both honest
    and affordable.
    """
    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    return runner
