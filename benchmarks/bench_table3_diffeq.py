"""Table 3 — the area-optimised Diffeq benchmark (paper §5).

The looping HAL design: the control part has a guarded back edge, so
this table also exercises the Petri-net loop handling end to end.
"""

from __future__ import annotations

import pytest

from _support import (bench_bits, paper_comparison, record_row, record_text,
                      table_cell)
from repro.harness import FLOW_ORDER, render_table

_CELLS = []


@pytest.mark.parametrize("bits", bench_bits())
@pytest.mark.parametrize("flow", FLOW_ORDER)
def test_table3_cell(benchmark, flow, bits):
    cell = benchmark.pedantic(table_cell, args=("diffeq", flow, bits),
                              rounds=1, iterations=1)
    row = paper_comparison(cell)
    benchmark.extra_info.update(row)
    record_row("table3", row)
    _CELLS.append(cell)
    assert cell.atpg.fault_coverage > 50.0
    assert cell.design.dfg.loop_condition == "cond"


def test_table3_render(benchmark):
    if not _CELLS:
        pytest.skip("cells not collected in this run")
    text = benchmark.pedantic(lambda: render_table("diffeq", _CELLS, show_area=True), rounds=1, iterations=1)
    record_text("table3_diffeq.txt", text)
    print("\n" + text)
    assert "Approach 2" in text
