"""A3 — scan extension: coverage vs. overhead across scan policies.

Beyond the paper's non-scan setting: compares no scan, loop-breaking
partial scan and full scan on the synthesised Ex design, using the same
ATPG budgets throughout.
"""

from __future__ import annotations

import pytest

from _support import record_row, record_text
from repro.atpg import ATPGConfig, RandomPhaseConfig, run_atpg
from repro.bench import load
from repro.gates import expand_to_gates
from repro.rtl import generate_rtl
from repro.scan import evaluate_scan, select_full, select_loop_breaking
from repro.synth import run_ours

_ROWS = []


def _config():
    return ATPGConfig(
        random=RandomPhaseConfig(max_sequences=12, saturation=4,
                                 sequence_length=20),
        max_frames=8, max_backtracks=24)


@pytest.mark.parametrize("policy", ["none", "loop-breaking", "full"])
def test_scan_policy(benchmark, policy):
    design = run_ours(load("ex")).design
    netlist = expand_to_gates(generate_rtl(design, 4))

    def run():
        if policy == "none":
            atpg = run_atpg(netlist, _config())
            return {"coverage": atpg.fault_coverage,
                    "cycles": atpg.test_cycles, "chain": 0,
                    "overhead_mm2": 0.0}
        registers = (select_loop_breaking(design.datapath)
                     if policy == "loop-breaking"
                     else select_full(design.datapath))
        scan = evaluate_scan(netlist, registers, _config())
        return {"coverage": scan.fault_coverage,
                "cycles": scan.test_cycles, "chain": scan.chain_length,
                "overhead_mm2": scan.overhead_mm2}

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    row = {"policy": policy, **{k: round(v, 3) if isinstance(v, float)
                                else v for k, v in metrics.items()}}
    benchmark.extra_info.update(row)
    record_row("ablation_scan", row)
    _ROWS.append(row)
    assert metrics["coverage"] > 60.0


def test_scan_tradeoff_shape(benchmark):
    if len(_ROWS) < 3:
        pytest.skip("rows not collected in this run")
    lines = ["policy         cov%  cycles chain overhead_mm2"]
    for row in _ROWS:
        lines.append(f"{row['policy']:<14} {row['coverage']:>5} "
                     f"{row['cycles']:>6} {row['chain']:>5} "
                     f"{row['overhead_mm2']:>8}")
    text = benchmark.pedantic(lambda: "\n".join(lines),
                              rounds=1, iterations=1)
    record_text("ablation_scan.txt", text)
    print("\n" + text)
    by_policy = {r["policy"]: r for r in _ROWS}
    # Overhead strictly grows with chain length; partial < full.
    assert (by_policy["loop-breaking"]["overhead_mm2"]
            < by_policy["full"]["overhead_mm2"])
    assert (by_policy["full"]["coverage"]
            >= by_policy["none"]["coverage"] - 2.0)
