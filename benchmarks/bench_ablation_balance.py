"""A1 — ablation: balance selection vs. connectivity selection.

§3 argues that conventional connectivity/closeness-driven merging
produces hard-to-test data paths.  This bench runs Algorithm 1 twice —
once selecting candidates by the C/O balance principle, once by
closeness — and compares testability quality, self-loop counts and
sequential depth across the three table benchmarks.
"""

from __future__ import annotations

import pytest

from _support import record_row, record_text
from repro.bench import load
from repro.cost import CostModel
from repro.synth import SynthesisParams, run_ours
from repro.testability import analyze, sequential_depth_metric

_ROWS = []


@pytest.mark.parametrize("selection", ["balance", "connectivity"])
@pytest.mark.parametrize("name", ["ex", "dct", "diffeq"])
def test_ablation_selection(benchmark, name, selection):
    dfg = load(name)

    def run():
        return run_ours(dfg, SynthesisParams(selection=selection),
                        CostModel(bits=8))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    design = result.design
    row = {"benchmark": name, "selection": selection, **design.summary(),
           "quality": round(analyze(design.datapath).design_quality(), 3),
           "seq_depth": sequential_depth_metric(design.datapath)}
    benchmark.extra_info.update(row)
    record_row("ablation_balance", row)
    _ROWS.append(row)
    design.validate()


def test_ablation_balance_wins_on_average(benchmark):
    """Averaged over the benchmarks, balance selection yields better
    node testability than closeness selection."""
    if not _ROWS:
        pytest.skip("rows not collected in this run")
    text_lines = ["bench  selection     mods regs mux loops quality depth"]
    for row in _ROWS:
        text_lines.append(
            f"{row['benchmark']:<6} {row['selection']:<12} "
            f"{row['modules']:>4} {row['registers']:>4} {row['muxes']:>3} "
            f"{row['self_loops']:>5} {row['quality']:>7} "
            f"{row['seq_depth']:>5}")
    text = benchmark.pedantic(lambda: "\n".join(text_lines), rounds=1, iterations=1)
    record_text("ablation_balance.txt", text)
    print("\n" + text)

    def mean_quality(selection):
        rows = [r for r in _ROWS if r["selection"] == selection]
        return sum(r["quality"] for r in rows) / len(rows)

    assert mean_quality("balance") >= mean_quality("connectivity") - 0.02
