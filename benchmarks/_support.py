"""Shared helpers for the benchmark harness.

Every table bench produces the same row structure as the paper and
appends it to ``benchmarks/out/rows.jsonl`` so EXPERIMENTS.md can be
regenerated from a single ``pytest benchmarks/ --benchmark-only`` run.

Environment knobs:

* ``REPRO_BENCH_BITS`` — comma-separated bit widths (default "4,8,16").
* ``REPRO_BENCH_FULL`` — set to 1 for unsampled fault universes
  (slow; the default budgets are the quick profile from
  :meth:`repro.harness.ExperimentConfig.quick`).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.harness import CellResult, ExperimentConfig, run_cell

OUT_DIR = Path(__file__).parent / "out"

#: The paper's reported numbers, for paper-vs-measured rows in
#: EXPERIMENTS.md.  (coverage %, TG time s, TG cycles, area mm² or None).
PAPER_ROWS = {
    ("ex", "camad", 4): (81.27, 27, 1081, None),
    ("ex", "camad", 8): (89.89, 81, 912, None),
    ("ex", "camad", 16): (93.74, 279, 691, None),
    ("ex", "approach1", 4): (86.41, 24, 707, None),
    ("ex", "approach1", 8): (90.87, 74, 943, None),
    ("ex", "approach1", 16): (92.58, 191, 1070, None),
    ("ex", "approach2", 4): (88.19, 11, 824, None),
    ("ex", "approach2", 8): (92.49, 37, 1654, None),
    ("ex", "approach2", 16): (93.91, 115, 1054, None),
    ("ex", "ours", 4): (90.66, 13, 366, None),
    ("ex", "ours", 8): (94.48, 43, 1383, None),
    ("ex", "ours", 16): (96.11, 112, 1122, None),
    ("dct", "camad", 4): (70.44, 49, 846, 0.607),
    ("dct", "camad", 8): (81.60, 121, 841, 1.488),
    ("dct", "camad", 16): (85.00, 785, 604, 3.320),
    ("dct", "approach1", 4): (88.96, 32, 552, 0.592),
    ("dct", "approach1", 8): (95.15, 52, 2902, 1.388),
    ("dct", "approach1", 16): (94.73, 286, 10283, 2.634),
    ("dct", "approach2", 4): (91.73, 16, 602, 0.575),
    ("dct", "approach2", 8): (93.36, 110, 1088, 1.363),
    ("dct", "approach2", 16): (96.11, 177, 8149, 2.584),
    ("dct", "ours", 4): (93.13, 16, 802, 0.571),
    ("dct", "ours", 8): (96.01, 47, 2278, 1.336),
    ("dct", "ours", 16): (96.99, 118, 6753, 2.531),
    ("diffeq", "camad", 4): (72.40, 143, 304, 0.573),
    ("diffeq", "camad", 8): (87.15, 311, 2321, 1.366),
    ("diffeq", "camad", 16): (88.40, 2091, 1827, 3.064),
    ("diffeq", "approach1", 4): (90.51, 9, 350, 0.559),
    ("diffeq", "approach1", 8): (92.79, 49, 959, 1.161),
    ("diffeq", "approach1", 16): (94.11, 162, 676, 2.124),
    ("diffeq", "approach2", 4): (91.11, 15, 504, 0.521),
    ("diffeq", "approach2", 8): (95.56, 55, 920, 1.112),
    ("diffeq", "approach2", 16): (94.64, 164, 1546, 2.150),
    ("diffeq", "ours", 4): (95.28, 11, 510, 0.470),
    ("diffeq", "ours", 8): (97.31, 46, 982, 1.054),
    ("diffeq", "ours", 16): (99.79, 141, 1663, 2.045),
}


def bench_bits() -> list[int]:
    """Bit widths selected via REPRO_BENCH_BITS (default 4,8,16)."""
    raw = os.environ.get("REPRO_BENCH_BITS", "4,8,16")
    return [int(b) for b in raw.split(",") if b.strip()]


def cell_config(bits: int) -> ExperimentConfig:
    """Quick or full experiment budgets, per REPRO_BENCH_FULL."""
    if os.environ.get("REPRO_BENCH_FULL"):
        return ExperimentConfig(bits=bits)
    return ExperimentConfig.quick(bits)


def record_row(kind: str, payload: dict) -> None:
    """Append one result row to the shared JSONL output."""
    OUT_DIR.mkdir(exist_ok=True)
    with open(OUT_DIR / "rows.jsonl", "a") as handle:
        handle.write(json.dumps({"kind": kind, **payload}) + "\n")


def record_text(name: str, text: str) -> None:
    """Write a rendered artefact (table/figure) to benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / name).write_text(text + "\n")


def table_cell(benchmark: str, flow: str, bits: int) -> CellResult:
    """Run one table cell with the configured budgets."""
    return run_cell(benchmark, flow, cell_config(bits))


def paper_comparison(cell: CellResult) -> dict:
    """Merge measured numbers with the paper's reported row."""
    key = (cell.benchmark, cell.flow, cell.bits)
    paper = PAPER_ROWS.get(key)
    row = cell.row()
    if paper:
        coverage, tg_time, cycles, area = paper
        row["paper_coverage_pct"] = coverage
        row["paper_tg_seconds"] = tg_time
        row["paper_test_cycles"] = cycles
        if area is not None:
            row["paper_area_mm2"] = area
    return row
