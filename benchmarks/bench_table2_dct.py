"""Table 2 — the area-optimised Dct benchmark (paper §5).

Same structure as Table 1 plus the Area column.
"""

from __future__ import annotations

import pytest

from _support import (bench_bits, paper_comparison, record_row, record_text,
                      table_cell)
from repro.harness import FLOW_ORDER, render_table

_CELLS = []


@pytest.mark.parametrize("bits", bench_bits())
@pytest.mark.parametrize("flow", FLOW_ORDER)
def test_table2_cell(benchmark, flow, bits):
    cell = benchmark.pedantic(table_cell, args=("dct", flow, bits),
                              rounds=1, iterations=1)
    row = paper_comparison(cell)
    benchmark.extra_info.update(row)
    record_row("table2", row)
    _CELLS.append(cell)
    assert cell.atpg.fault_coverage > 50.0
    assert cell.area_mm2 > 0.0


def test_table2_render(benchmark):
    if not _CELLS:
        pytest.skip("cells not collected in this run")
    text = benchmark.pedantic(lambda: render_table("dct", _CELLS, show_area=True), rounds=1, iterations=1)
    record_text("table2_dct.txt", text)
    print("\n" + text)
    assert "CAMAD" in text
