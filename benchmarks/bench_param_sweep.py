"""X2 — the (k, α, β) parameter study.

§5: "it seems that the chosen parameters do not influence so much the
final results."  This bench sweeps the paper's three parameter settings
plus extremes over the three table benchmarks and records how much the
synthesised structure actually moves.
"""

from __future__ import annotations

import pytest

from _support import record_row, record_text
from repro.bench import load
from repro.cost import CostModel
from repro.synth import SynthesisParams, run_ours
from repro.testability import analyze

PARAM_GRID = [(3, 2.0, 1.0), (3, 10.0, 1.0), (3, 1.0, 10.0),
              (1, 2.0, 1.0), (6, 2.0, 1.0)]

_ROWS = []


@pytest.mark.parametrize("params", PARAM_GRID,
                         ids=lambda p: f"k{p[0]}a{p[1]}b{p[2]}")
@pytest.mark.parametrize("name", ["ex", "dct", "diffeq"])
def test_param_sweep(benchmark, name, params):
    k, alpha, beta = params
    dfg = load(name)

    def run():
        return run_ours(dfg, SynthesisParams(k=k, alpha=alpha, beta=beta),
                        CostModel(bits=8))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    design = result.design
    quality = analyze(design.datapath).design_quality()
    row = {"benchmark": name, "k": k, "alpha": alpha, "beta": beta,
           **design.summary(), "quality": round(quality, 3),
           "iterations": result.iterations}
    benchmark.extra_info.update(row)
    record_row("param_sweep", row)
    _ROWS.append(row)
    design.validate()


def test_param_sweep_stability(benchmark):
    """The paper's three published settings land on similar structure."""
    if not _ROWS:
        pytest.skip("rows not collected in this run")
    lines = ["bench  k  alpha beta steps mods regs mux quality"]
    for row in _ROWS:
        lines.append(f"{row['benchmark']:<6} {row['k']:>2} "
                     f"{row['alpha']:>5} {row['beta']:>4} "
                     f"{row['steps']:>5} {row['modules']:>4} "
                     f"{row['registers']:>4} {row['muxes']:>3} "
                     f"{row['quality']:>7}")
    text = benchmark.pedantic(lambda: "\n".join(lines), rounds=1, iterations=1)
    record_text("param_sweep.txt", text)
    print("\n" + text)
    for name in ("ex", "dct", "diffeq"):
        published = [r for r in _ROWS if r["benchmark"] == name
                     and (r["k"], r["alpha"], r["beta"]) in
                     {(3, 2.0, 1.0), (3, 10.0, 1.0), (3, 1.0, 10.0)}]
        if len(published) >= 2:
            spread = (max(r["registers"] for r in published)
                      - min(r["registers"] for r in published))
            assert spread <= 4
