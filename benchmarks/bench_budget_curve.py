"""X4 — coverage vs. test-budget curve (figure-style extension).

Sweeps the random-phase budget on the synthesised Ex design and records
the coverage curve for CAMAD vs. ours: the testability gap between the
flows is exactly the horizontal distance between the two curves (a
better design reaches any coverage level with fewer patterns).
"""

from __future__ import annotations

import pytest

from _support import record_row, record_text
from repro.atpg import ATPGConfig, RandomPhaseConfig, run_atpg
from repro.bench import load
from repro.gates import expand_with_controller
from repro.harness import synthesize_flow
from repro.rtl import build_control_table, generate_rtl

BUDGETS = (2, 6, 18)

_ROWS = []


def _netlist(flow):
    design = synthesize_flow("ex", flow, 4)
    rtl = generate_rtl(design, 4)
    table = build_control_table(design, rtl)
    return expand_with_controller(rtl, table)


@pytest.mark.parametrize("sequences", BUDGETS)
@pytest.mark.parametrize("flow", ["camad", "ours"])
def test_budget_point(benchmark, flow, sequences):
    netlist = _netlist(flow)
    config = ATPGConfig(
        random=RandomPhaseConfig(max_sequences=sequences,
                                 saturation=sequences,
                                 sequence_length=24),
        deterministic=False)
    result = benchmark.pedantic(run_atpg, args=(netlist, config),
                                rounds=1, iterations=1)
    row = {"flow": flow, "sequences": sequences,
           "coverage": round(result.fault_coverage, 2),
           "cycles": result.test_cycles}
    benchmark.extra_info.update(row)
    record_row("budget_curve", row)
    _ROWS.append(row)
    assert result.fault_coverage > 30.0


def test_budget_curve_shape(benchmark):
    if len(_ROWS) < 2 * len(BUDGETS):
        pytest.skip("rows not collected in this run")
    lines = ["flow    sequences  cov%"]
    for row in sorted(_ROWS, key=lambda r: (r["flow"], r["sequences"])):
        lines.append(f"{row['flow']:<7} {row['sequences']:>9} "
                     f"{row['coverage']:>6}")
    text = benchmark.pedantic(lambda: "\n".join(lines),
                              rounds=1, iterations=1)
    record_text("budget_curve.txt", text)
    print("\n" + text)
    # Coverage is monotone in budget for each flow.
    for flow in ("camad", "ours"):
        curve = [r["coverage"] for r in
                 sorted((r for r in _ROWS if r["flow"] == flow),
                        key=lambda r: r["sequences"])]
        assert curve == sorted(curve)
