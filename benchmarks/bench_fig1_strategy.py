"""Figure 1 — the C/O enhancement strategy example.

The paper's figure merges two same-step operation nodes N1 and N2 and
shows that choosing the right execution order reduces the sequential
depth from register R1 to R2 from 2 to 1.  This bench rebuilds an
equivalent scenario, applies the merger with the enhancement strategy,
and checks the depth reduction the figure claims.
"""

from __future__ import annotations

import pytest

from _support import record_row, record_text
from repro.cost import CostModel
from repro.dfg import DFGBuilder
from repro.etpn import default_design
from repro.harness import render_lifetimes, render_schedule
from repro.synth import try_merge_modules
from repro.testability import sequential_depth_metric


def _figure1_design():
    """An adder chain whose head (input side, good C) and tail (output
    side, good O) can fold onto one ALU — the Figure 1 situation: after
    sharing N1 and N2, values reach an observable register through the
    shared module in fewer register stages."""
    b = DFGBuilder("fig1")
    b.inputs("w", "v", "s")
    b.op("N1", "+", "x", "w", "v")      # controllable end of the chain
    b.op("N3", "+", "z", "x", "s")
    b.op("N5", "+", "q", "z", "v")
    b.op("N2", "+", "u", "q", "s")      # observable end of the chain
    return default_design(b.build())


def test_fig1_merger_reduces_depth(benchmark):
    design = _figure1_design()

    def run():
        return try_merge_modules(design, "M_N1", "M_N2", CostModel(bits=8))

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome is not None
    before = sequential_depth_metric(design.datapath)
    after = sequential_depth_metric(outcome.design.datapath)
    # Sharing N1 and N2 shortens the controllable→observable depth, the
    # effect Figure 1 illustrates.
    assert after < before
    record_row("fig1", {"depth_before": before, "depth_after": after,
                        "order": list(outcome.order),
                        "delta_e": outcome.delta_e})
    text = "\n".join([
        "Figure 1 — enhancement strategy example",
        f"sequential depth before merger: {before}",
        f"sequential depth after merger:  {after}",
        f"chosen execution order: {' -> '.join(outcome.order)}",
        "",
        render_schedule(outcome.design),
        "",
        render_lifetimes(outcome.design),
    ])
    record_text("fig1_strategy.txt", text)
    print("\n" + text)


def test_fig1_order_choice_is_strategic(benchmark):
    """The strategy picks the order with the smaller time-domain depth;
    the naive 'first' strategy may pick either."""
    design = _figure1_design()
    model = CostModel(bits=8)
    enhanced = benchmark.pedantic(
        lambda: try_merge_modules(design, "M_N1", "M_N2", model,
                                  strategy="enhance"),
        rounds=1, iterations=1)
    naive = try_merge_modules(design, "M_N1", "M_N2", model,
                              strategy="first")
    assert enhanced is not None and naive is not None
    span = lambda d: sum(lt.span for lt in d.lifetimes.values())
    assert span(enhanced.design) <= span(naive.design)
