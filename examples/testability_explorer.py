"""Explore the (k, α, β) design space of the synthesis algorithm.

§5 reports that the chosen parameters "do not influence so much the
final results"; this example sweeps a grid over a chosen benchmark and
prints how the synthesised structure, execution time and testability
quality respond — a practical guide for picking parameters on new
designs.

Run:  python examples/testability_explorer.py [benchmark]
"""

from __future__ import annotations

import sys

from repro import SynthesisParams, analyze, load_benchmark, synthesize
from repro.cost import CostModel


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "dct"
    dfg = load_benchmark(name)
    print(f"benchmark {name}: {len(dfg)} operations, "
          f"{len(dfg.variables)} variables\n")
    header = (f"{'k':>2} {'alpha':>6} {'beta':>5} | {'steps':>5} "
              f"{'mods':>4} {'regs':>4} {'mux':>3} {'loops':>5} "
              f"{'quality':>7} {'mergers':>7}")
    print(header)
    print("-" * len(header))
    for k in (1, 3, 6):
        for alpha, beta in ((2.0, 1.0), (10.0, 1.0), (1.0, 10.0)):
            result = synthesize(dfg, SynthesisParams(k=k, alpha=alpha,
                                                     beta=beta),
                                CostModel(bits=8))
            design = result.design
            summary = design.summary()
            quality = analyze(design.datapath).design_quality()
            print(f"{k:>2} {alpha:>6.1f} {beta:>5.1f} | "
                  f"{summary['steps']:>5} {summary['modules']:>4} "
                  f"{summary['registers']:>4} {summary['muxes']:>3} "
                  f"{summary['self_loops']:>5} {quality:>7.3f} "
                  f"{result.iterations:>7}")


if __name__ == "__main__":
    main()
