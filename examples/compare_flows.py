"""Compare the paper's four synthesis flows on the Diffeq benchmark.

Reproduces the experimental setup of §5 in miniature: every flow's
design goes through the identical RTL → gates → ATPG pipeline at 4
bits, and the resulting structure, testability and fault-coverage
numbers are printed side by side.

Run:  python examples/compare_flows.py
"""

from __future__ import annotations

from repro.harness import ExperimentConfig, FLOW_ORDER, render_summary, run_cell
from repro.testability import analyze


def main() -> None:
    cells = []
    for flow in FLOW_ORDER:
        print(f"running flow {flow!r} ...")
        cells.append(run_cell("diffeq", flow, ExperimentConfig.quick(4)))

    print()
    print(render_summary(cells))
    print()
    print("Testability quality (mean worst-dimension node score):")
    for cell in cells:
        quality = analyze(cell.design.datapath).design_quality()
        loops = len(cell.design.datapath.self_loops())
        print(f"  {cell.flow:<10} quality={quality:.3f} "
              f"self_loops={loops} seq_depth={cell.seq_depth:.0f}")

    camad = next(c for c in cells if c.flow == "camad")
    ours = next(c for c in cells if c.flow == "ours")
    print()
    print(f"CAMAD -> ours: coverage "
          f"{camad.atpg.fault_coverage:.2f}% -> "
          f"{ours.atpg.fault_coverage:.2f}%, "
          f"area {camad.area_mm2:.3f} -> {ours.area_mm2:.3f} mm²")


if __name__ == "__main__":
    main()
