"""Quickstart: synthesise a small behaviour and inspect the result.

Builds a behavioural data-flow graph with the public builder API, runs
the paper's integrated test-synthesis algorithm, prints the schedule,
the sharing it found and the testability profile, and finally verifies
the generated RTL against the behavioural reference.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import DFGBuilder, SynthesisParams, analyze, synthesize
from repro.cost import CostModel
from repro.harness import render_schedule, render_sharing
from repro.rtl import (build_control_table, evaluate_dfg, generate_rtl,
                       simulate_rtl)


def build_behaviour():
    """A little polynomial evaluator: out = (a*x + b)*x + c."""
    b = DFGBuilder("poly2")
    b.inputs("a", "b", "c", "x")
    b.op("N1", "*", "t1", "a", "x")
    b.op("N2", "+", "t2", "t1", "b")
    b.op("N3", "*", "t3", "t2", "x")
    b.op("N4", "+", "out", "t3", "c")
    b.outputs("out")
    return b.build()


def main() -> None:
    dfg = build_behaviour()
    print(f"behaviour: {dfg!r}")

    result = synthesize(dfg, SynthesisParams(k=3, alpha=2.0, beta=1.0),
                        CostModel(bits=8))
    design = result.design
    print(f"\n{len(result.history)} mergers applied")
    print(render_schedule(design))
    print()
    print(render_sharing(design))

    print("\nTestability profile (registers):")
    analysis = analyze(design.datapath)
    for register in design.datapath.registers():
        print(f"  {analysis.node(register.node_id)}")
    print(f"  design quality: {analysis.design_quality():.3f}")

    # Verify the generated RTL behaves like the behaviour itself.
    bits = 8
    rtl = generate_rtl(design, bits)
    table = build_control_table(design, rtl)
    rng = random.Random(0)
    for trial in range(5):
        inputs = {v.name: rng.randrange(1 << bits) for v in dfg.inputs()}
        expected = evaluate_dfg(dfg, inputs, bits)["out"]
        got = simulate_rtl(design, rtl, table, inputs).outputs["out_out"]
        status = "ok" if got == expected else "MISMATCH"
        print(f"  RTL check {trial}: out={got:3d} expected={expected:3d} "
              f"[{status}]")
        assert got == expected


if __name__ == "__main__":
    main()
