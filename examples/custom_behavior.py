"""From HDL source to a tested data path — the complete flow.

Writes a small behavioural description in the library's HDL, compiles
it to a DFG (one data-path node per operation instance, as the paper's
VHDL compiler does), synthesises it with the integrated algorithm,
expands the result to gates with the FSM controller embedded, and runs
the full ATPG to measure its testability.

Run:  python examples/custom_behavior.py
"""

from __future__ import annotations

from repro import SynthesisParams, synthesize
from repro.atpg import ATPGConfig, RandomPhaseConfig, run_atpg
from repro.cost import CostModel
from repro.gates import expand_with_controller
from repro.harness import render_schedule, render_sharing
from repro.hdl import compile_source
from repro.rtl import build_control_table, generate_rtl

SOURCE = """
design fir3;  -- a 3-tap FIR slice with an output comparator
input x0, x1, x2, k0, k1, k2, threshold;
output acc;
begin
  T1: p0  := x0 * k0;
  T2: p1  := x1 * k1;
  T3: p2  := x2 * k2;
  T4: acc := p0 + p1;
  T5: acc := acc + p2;
  loop while acc < threshold;
end
"""


def main() -> None:
    dfg = compile_source(SOURCE)
    print(f"compiled: {dfg!r}")
    print(f"operations: {[op.op_id for op in dfg]}")

    result = synthesize(dfg, SynthesisParams(k=3, alpha=2.0, beta=1.0),
                        CostModel(bits=4))
    design = result.design
    print()
    print(render_schedule(design))
    print()
    print(render_sharing(design))

    rtl = generate_rtl(design, bits=4)
    table = build_control_table(design, rtl)
    netlist = expand_with_controller(rtl, table)
    print(f"\ngate netlist: {netlist!r}")

    atpg = run_atpg(netlist, ATPGConfig(
        random=RandomPhaseConfig(max_sequences=16, saturation=4,
                                 sequence_length=4 * table.phase_count),
        max_frames=2 * table.phase_count + 1))
    print(f"fault coverage:  {atpg.fault_coverage:.2f}% "
          f"({atpg.detected}/{atpg.total_faults})")
    print(f"TG effort:       {atpg.tg_effort} units "
          f"({atpg.tg_seconds:.2f}s wall)")
    print(f"test length:     {atpg.test_cycles} cycles")


if __name__ == "__main__":
    main()
