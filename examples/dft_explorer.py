"""Design-for-test exploration: non-scan vs. scan vs. BIST.

Takes a synthesised benchmark design and walks the three DFT options
this library models, printing coverage, test length and hardware
overhead for each — the trade-off a 1998 test engineer would actually
weigh after high-level test synthesis.

Run:  python examples/dft_explorer.py [benchmark]
"""

from __future__ import annotations

import sys

from repro import load_benchmark, run_ours
from repro.atpg import ATPGConfig, RandomPhaseConfig, run_atpg
from repro.bist import evaluate_design_bist
from repro.gates import expand_to_gates
from repro.rtl import generate_rtl
from repro.scan import evaluate_scan, select_full, select_loop_breaking


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "ex"
    bits = 4
    design = run_ours(load_benchmark(name)).design
    print(f"design: {design!r}")
    netlist = expand_to_gates(generate_rtl(design, bits))
    config = ATPGConfig(
        random=RandomPhaseConfig(max_sequences=12, saturation=4,
                                 sequence_length=20),
        max_frames=8, max_backtracks=24)

    print("\n1. Non-scan sequential ATPG (the paper's setting):")
    base = run_atpg(netlist, config)
    print(f"   coverage {base.fault_coverage:6.2f}%   "
          f"test {base.test_cycles} cycles   overhead 0 mm²")

    print("\n2. Partial scan (loop-breaking selection):")
    partial = evaluate_scan(netlist, select_loop_breaking(design.datapath),
                            config)
    print(f"   coverage {partial.fault_coverage:6.2f}%   "
          f"test {partial.test_cycles} cycles   "
          f"chain {partial.chain_length} bits   "
          f"overhead {partial.overhead_mm2:.4f} mm²")

    print("\n3. Full scan:")
    full = evaluate_scan(netlist, select_full(design.datapath), config)
    print(f"   coverage {full.fault_coverage:6.2f}%   "
          f"test {full.test_cycles} cycles   "
          f"chain {full.chain_length} bits   "
          f"overhead {full.overhead_mm2:.4f} mm²")

    print("\n4. BIST (BILBO sessions, unit-level emulation):")
    bist = evaluate_design_bist(design, bits=bits, patterns=15)
    summary = bist.plan.summary()
    print(f"   coverage {bist.coverage:6.2f}% of unit faults   "
          f"{summary['sessions']} sessions "
          f"({summary['conflicted']} conflicted = self-loops)   "
          f"{bist.test_cycles} cycles   "
          f"overhead {bist.overhead_mm2:.4f} mm²   "
          f"aliased {bist.aliased}")


if __name__ == "__main__":
    main()
