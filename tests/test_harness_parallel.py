"""Parallel grid executor: determinism, crash degradation, resume."""

import pytest

from repro.atpg import RandomPhaseConfig
from repro.bench import load
from repro.cost import CostModel
from repro.harness import ExperimentConfig
from repro.harness.parallel import explore_grid, run_parallel_grid
from repro.runtime import ACTION_CRASH, Injection, Journal, scrubbed_records
from repro.runtime.checkpoint import cell_record


def _tiny_config(bits: int) -> ExperimentConfig:
    return ExperimentConfig(
        bits=bits, fault_fraction=0.25,
        random=RandomPhaseConfig(max_sequences=4, saturation=2,
                                 sequence_length=12),
        max_backtracks=16)


GRID = [("camad", 4), ("approach2", 4)]


def _records(outcome) -> list[dict]:
    return [cell_record(cell) for cell in outcome.cells]


class TestDeterminism:
    @pytest.fixture(scope="class")
    def sequential(self):
        return run_parallel_grid("ex", GRID, _tiny_config, workers=1)

    def test_workers4_rows_identical_to_workers1(self, sequential):
        parallel = run_parallel_grid("ex", GRID, _tiny_config, workers=4)
        assert parallel.ok()
        assert parallel.workers == 4
        assert scrubbed_records(_records(parallel)) == \
            scrubbed_records(_records(sequential))

    def test_cells_come_back_in_grid_order(self, sequential):
        keys = [(c.benchmark, c.flow, c.bits) for c in sequential.cells]
        assert keys == [("ex", flow, bits) for flow, bits in GRID]
        assert sequential.computed == len(GRID)
        assert sequential.replayed == 0


class TestWorkerCrash:
    def test_crash_degrades_and_resume_completes(self, tmp_path):
        journal = Journal(tmp_path / "grid.jsonl")
        crash = {("ex", "approach2", 4):
                 (Injection("harness.worker", ACTION_CRASH),)}
        outcome = run_parallel_grid("ex", GRID, _tiny_config, workers=2,
                                    journal=journal, worker_chaos=crash)
        assert not outcome.ok()
        assert [s.key for s in outcome.skipped] == [("ex", "approach2", 4)]
        assert "ChaosCrash" in outcome.skipped[0].reason
        assert len(outcome.cells) == 1          # explicitly partial grid
        assert len(journal.completed_cells()) == 1

        resumed = run_parallel_grid("ex", GRID, _tiny_config, workers=2,
                                    journal=journal, resume=True)
        assert resumed.ok()
        assert resumed.replayed == 1            # survivor from the journal
        assert resumed.computed == 1            # only the lost cell re-ran
        assert len(resumed.cells) == len(GRID)
        assert len(journal.completed_cells()) == len(GRID)


class TestDegradation:
    def test_cell_wall_ceiling_degrades_instead_of_hanging(self):
        outcome = run_parallel_grid("ex", [("ours", 4)], _tiny_config,
                                    workers=2, cell_wall_seconds=0.001)
        assert outcome.ok()                     # a row, not a lost cell
        assert outcome.cells[0].row()["degraded"] is True
        # The *why* survives the worker's record round-trip too.
        assert any("budget_exhausted" in reason
                   for reason in outcome.cells[0].degradation)


class TestExploreGrid:
    def test_parallel_sweep_matches_sequential(self):
        from repro.synth import explore
        small = [(1, 2.0, 1.0), (3, 2.0, 1.0)]
        seq = explore(load("ex"), CostModel(bits=4), small)
        par = explore_grid("ex", 4, small, workers=2)

        def flatten(points):
            return [(p.params, p.execution_time,
                     round(p.hardware_mm2, 9), round(p.quality, 9))
                    for p in points]

        assert flatten(par) == flatten(seq)


class TestInterrupt:
    def test_inline_interrupt_returns_partial_grid(self, tmp_path,
                                                   monkeypatch):
        import repro.harness.parallel as parallel_module

        journal = Journal(tmp_path / "grid.jsonl")
        real_inline = parallel_module._run_cell_inline

        def interrupting(benchmark, flow, bits, config, cache, budget,
                         injections):
            if flow == "approach2":
                raise KeyboardInterrupt
            return real_inline(benchmark, flow, bits, config, cache,
                               budget, injections)

        monkeypatch.setattr(parallel_module, "_run_cell_inline",
                            interrupting)
        outcome = run_parallel_grid("ex", GRID, _tiny_config, workers=1,
                                    journal=journal)
        assert outcome.interrupted
        assert len(outcome.cells) == 1          # camad finished first
        assert [s.key for s in outcome.skipped] == [("ex", "approach2", 4)]
        assert outcome.skipped[0].reason == "interrupted"
        # the finished cell was journaled before the interrupt, so a
        # resume completes the grid without an interrupt in sight
        monkeypatch.setattr(parallel_module, "_run_cell_inline",
                            real_inline)
        resumed = run_parallel_grid("ex", GRID, _tiny_config, workers=1,
                                    journal=journal, resume=True)
        assert resumed.ok() and not resumed.interrupted
        assert resumed.replayed == 1 and resumed.computed == 1

    def test_pool_interrupt_cancels_and_marks_pending(self, monkeypatch):
        import repro.harness.parallel as parallel_module

        def interrupting_wait(not_done, return_when=None):
            raise KeyboardInterrupt

        monkeypatch.setattr(parallel_module, "wait", interrupting_wait)
        outcome = run_parallel_grid("ex", GRID, _tiny_config, workers=2)
        assert outcome.interrupted and not outcome.ok()
        assert len(outcome.cells) == 0
        assert sorted(s.key for s in outcome.skipped) == \
            sorted(("ex", flow, bits) for flow, bits in GRID)
        assert all(s.reason == "interrupted" for s in outcome.skipped)
