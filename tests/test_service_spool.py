"""The filesystem spool: content-hash ids, idempotent submission,
results, prefix resolution and cancellation rules."""

from __future__ import annotations

import json

import pytest

from repro.service.spool import JobRequest, Spool, job_id


def _request(**overrides):
    defaults = dict(benchmark="ex", flow="ours", bits=4,
                    fault_fraction=0.25, max_sequences=4, saturation=2,
                    sequence_length=6, max_backtracks=16)
    defaults.update(overrides)
    return JobRequest(**defaults)


class TestJobIdentity:
    def test_identical_requests_share_one_id(self):
        assert job_id(_request()) == job_id(_request())

    def test_id_covers_the_experiment_content(self):
        base = job_id(_request())
        assert job_id(_request(bits=8)) != base
        assert job_id(_request(flow="camad")) != base
        assert job_id(_request(benchmark="paulin")) != base
        assert job_id(_request(fault_fraction=0.5)) != base

    def test_id_covers_the_per_job_budgets(self):
        base = job_id(_request())
        assert job_id(_request(deadline_seconds=1.0)) != base
        assert job_id(_request(max_steps=100)) != base

    def test_unknown_benchmark_still_gets_a_stable_id(self):
        poison = JobRequest(benchmark="not-a-benchmark", bits=4)
        assert job_id(poison) == job_id(
            JobRequest(benchmark="not-a-benchmark", bits=4))
        assert job_id(poison) != job_id(_request())

    def test_request_dict_round_trip(self):
        request = _request(deadline_seconds=2.5)
        assert JobRequest.from_dict(request.to_dict()) == request

    def test_from_dict_ignores_unknown_fields(self):
        data = dict(_request().to_dict(), extra_field="ignored")
        assert JobRequest.from_dict(data) == _request()


class TestSubmission:
    def test_submit_spools_request_and_ledgers_it(self, tmp_path):
        spool = Spool(tmp_path)
        jid, queued = spool.submit(_request())
        assert queued
        assert spool.request(jid) == _request()
        assert spool.states()[jid].state == "submitted"

    def test_resubmission_is_an_idempotent_noop(self, tmp_path):
        spool = Spool(tmp_path)
        jid, _ = spool.submit(_request())
        jid2, queued = spool.submit(_request())
        assert jid2 == jid and not queued
        assert len(spool.ledger.transitions()) == 1

    def test_resubmission_revives_a_cancelled_job(self, tmp_path):
        spool = Spool(tmp_path)
        jid, _ = spool.submit(_request())
        assert spool.cancel(jid)
        _, queued = spool.submit(_request())
        assert queued and spool.states()[jid].state == "submitted"

    def test_missing_request_raises_key_error(self, tmp_path):
        with pytest.raises(KeyError, match="no spooled request"):
            Spool(tmp_path).request("deadbeef")


class TestResults:
    def test_result_round_trip(self, tmp_path):
        spool = Spool(tmp_path)
        record = {"kind": "cell", "benchmark": "ex", "row": {"e": 7}}
        spool.write_result("j1", record)
        assert spool.read_result("j1") == record

    def test_corrupt_result_reads_as_absent(self, tmp_path):
        spool = Spool(tmp_path)
        spool.write_result("j1", {"kind": "cell"})
        spool.result_path("j1").write_text("{not json")
        assert spool.read_result("j1") is None

    def test_result_for_a_different_job_reads_as_absent(self, tmp_path):
        spool = Spool(tmp_path)
        spool.write_result("j1", {"kind": "cell"})
        envelope = json.loads(spool.result_path("j1").read_text())
        envelope["job"] = "j2"
        spool.result_path("j1").write_text(json.dumps(envelope))
        assert spool.read_result("j1") is None


class TestQueries:
    def test_resolve_expands_a_unique_prefix(self, tmp_path):
        spool = Spool(tmp_path)
        jid, _ = spool.submit(_request())
        assert spool.resolve(jid[:8]) == jid

    def test_resolve_rejects_missing_and_ambiguous(self, tmp_path):
        spool = Spool(tmp_path)
        spool.submit(_request())
        spool.submit(_request(bits=8))
        with pytest.raises(KeyError, match="no spooled job"):
            spool.resolve("zzzz")
        with pytest.raises(KeyError, match="ambiguous"):
            spool.resolve("")

    def test_job_ids_lists_ledger_order(self, tmp_path):
        spool = Spool(tmp_path)
        first, _ = spool.submit(_request())
        second, _ = spool.submit(_request(bits=8))
        assert spool.job_ids() == [first, second]


class TestCancel:
    def test_only_queued_or_failed_jobs_cancel(self, tmp_path):
        spool = Spool(tmp_path)
        jid, _ = spool.submit(_request())
        spool.ledger.append(jid, "running")
        assert not spool.cancel(jid)  # running work is never wasted
        spool.ledger.append(jid, "failed", reason="x")
        assert spool.cancel(jid)  # a retry-pending job is cancellable

    def test_terminal_states_stay_terminal(self, tmp_path):
        spool = Spool(tmp_path)
        jid, _ = spool.submit(_request())
        spool.ledger.append(jid, "running")
        spool.ledger.append(jid, "done")
        assert not spool.cancel(jid)
        assert not spool.cancel("never-seen")
