"""Tests for the dataflow fixpoint engine and its certificate."""

from __future__ import annotations

import pytest

from repro.analysis.dataflow import (DataflowCertificate, analyze_dataflow,
                                     infer_feedback)
from repro.bench import load, names
from repro.dfg import DFGBuilder


def straight_line():
    b = DFGBuilder("straight")
    b.inputs("a", "b")
    b.op("N1", "+", "t", "a", "b")
    b.op("N2", "*", "out", "t", 2)
    b.outputs("out")
    return b.build()


def looped():
    """Diffeq-style loop: x1 feeds x back across the ETPN back-edge."""
    b = DFGBuilder("looped")
    b.inputs("x", "dx", "a")
    b.op("N1", "+", "x1", "x", "dx")
    b.op("N2", "<", "c", "x1", "a")
    b.loop("c")
    b.outputs("x1")
    return b.build()


class TestInferFeedback:
    def test_straight_line_has_no_feedback(self):
        assert infer_feedback(straight_line()) == {}

    def test_loop_maps_next_state_to_input(self):
        assert infer_feedback(looped()) == {"x1": "x"}

    def test_diffeq_benchmark_feedback(self):
        fb = infer_feedback(load("diffeq"))
        # x1/y1/u1 are loop-carried; a1 exists but 'a' stays invariant
        # only when it is an input too — the map must be input-rooted.
        for out_var, in_var in fb.items():
            assert out_var == in_var + "1"


class TestAnalyzeDataflow:
    def test_straight_line_single_pass(self):
        cert = analyze_dataflow(straight_line(), 8)
        assert cert.loop_iterations == 1
        assert not cert.widened and not cert.feedback
        assert set(cert.op_facts) == {"N1", "N2"}

    def test_assumptions_are_clamped_and_recorded(self):
        cert = analyze_dataflow(straight_line(), 8,
                                assumptions={"a": (-5, 9999), "b": (1, 2)})
        assert cert.assumptions["a"] == (0, 255)
        assert cert.assumptions["b"] == (1, 2)

    def test_assumptions_tighten_facts(self):
        wide = analyze_dataflow(straight_line(), 16)
        tight = analyze_dataflow(straight_line(), 16,
                                 assumptions={"a": (0, 3), "b": (0, 3)})
        assert tight.op_facts["N1"].hi <= 6
        assert tight.max_required_width() < wide.max_required_width()

    def test_loop_fixpoint_converges(self):
        cert = analyze_dataflow(looped(), 8)
        assert cert.feedback == {"x1": "x"}
        assert 1 <= cert.loop_iterations <= 48
        # The fed-back value can reach the full range, so the entry
        # fact for x must cover whatever N1 produces.
        assert cert.check(looped(), vectors=64) == []

    def test_forced_straight_line_analysis(self):
        cert = analyze_dataflow(looped(), 8, feedback={})
        assert cert.feedback == {}
        assert cert.loop_iterations == 1

    def test_bogus_feedback_names_are_dropped(self):
        cert = analyze_dataflow(looped(), 8,
                                feedback={"ghost": "x", "x1": "phantom"})
        assert cert.feedback == {}

    @pytest.mark.parametrize("bench_name", sorted(names()))
    @pytest.mark.parametrize("bits", [4, 8, 16])
    def test_every_benchmark_certificate_checks(self, bench_name, bits):
        dfg = load(bench_name)
        cert = analyze_dataflow(dfg, bits)
        assert cert.check(dfg, vectors=64) == []

    def test_certificate_round_trip(self):
        cert = analyze_dataflow(load("diffeq"), 8)
        clone = DataflowCertificate.from_dict(cert.to_dict())
        assert clone == cert
        assert clone.check(load("diffeq"), vectors=16) == []


class TestCertificateCheck:
    def test_tampered_fact_is_caught(self):
        dfg = straight_line()
        cert = analyze_dataflow(dfg, 8)
        from repro.analysis.dataflow import AbstractValue
        cert.op_facts["N1"] = AbstractValue.const(0, 8)
        problems = cert.check(dfg, vectors=32)
        assert problems and any("N1" in p for p in problems)

    def test_tampered_var_fact_is_caught(self):
        dfg = straight_line()
        cert = analyze_dataflow(dfg, 8)
        from repro.analysis.dataflow import AbstractValue
        cert.var_facts["out"] = AbstractValue.range(0, 1, 8)
        assert cert.check(dfg, vectors=32)

    def test_check_respects_assumptions(self):
        dfg = straight_line()
        cert = analyze_dataflow(dfg, 8, assumptions={"a": (0, 1),
                                                     "b": (0, 1)})
        # Facts are tight under the assumptions; the checker must draw
        # vectors inside them, so no false escapes.
        assert cert.check(dfg, vectors=128) == []

    def test_check_caps_problem_list(self):
        dfg = straight_line()
        cert = analyze_dataflow(dfg, 8)
        from repro.analysis.dataflow import AbstractValue
        for op_id in cert.op_facts:
            cert.op_facts[op_id] = AbstractValue.const(0, 8)
        for var in cert.var_facts:
            cert.var_facts[var] = AbstractValue.const(0, 8)
        assert len(cert.check(dfg, vectors=256)) <= 25

    def test_summary_mentions_loop(self):
        cert = analyze_dataflow(looped(), 8)
        assert "loop fixpoint" in cert.summary()
        assert "looped@8b" in cert.summary()

    def test_widths_queries(self):
        cert = analyze_dataflow(straight_line(), 8,
                                assumptions={"a": (0, 3), "b": (0, 3)})
        assert cert.op_width("N1") <= 3
        assert cert.var_width("t") <= 3
        assert cert.var_width("unknown") == 8
        assert cert.max_required_width() <= 5
